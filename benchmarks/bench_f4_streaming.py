"""Benchmark F4 — fungus vs streaming-window baseline.

Regenerates experiment F4 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.f4_streaming import run


def test_f4_streaming(benchmark):
    """Time one full F4 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
