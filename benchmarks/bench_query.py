"""Micro-benchmarks of the query engine.

Covers the paths the experiments lean on: parse, full scan with
residual predicate, index-served scan, aggregation, and consuming
queries. The table is built the way FungusDB builds decaying tables —
numpy-backed ``t``/``f`` vector columns with ``f`` as the freshness
column — so these numbers exercise the vectorized executor, not the
row-at-a-time fallback.
"""

from __future__ import annotations

from repro.query import QueryEngine, parse
from repro.storage import Catalog, Schema

N = 5_000


def _engine() -> QueryEngine:
    catalog = Catalog()
    table = catalog.create_table(
        "r",
        Schema.of(t="timestamp", f="float", v="int", key="str"),
        vector_columns=("t", "f"),
        freshness_column="f",
    )
    catalog.create_hash_index("r", "key")
    catalog.create_sorted_index("r", "t")
    for i in range(N):
        table.append((float(i), 1.0, i * 3 % 997, f"k{i % 50}"))
    return QueryEngine(catalog)


def test_parse(benchmark):
    """Parser throughput on a representative statement."""
    sql = (
        "CONSUME SELECT key, count(*) AS n, avg(v) FROM r "
        "WHERE t BETWEEN 10 AND 500 AND v > 100 "
        "GROUP BY key HAVING count(*) > 2 ORDER BY n DESC LIMIT 10"
    )

    def parse_many() -> int:
        for _ in range(200):
            parse(sql)
        return 200

    benchmark.extra_info["rows"] = 200
    assert benchmark.pedantic(parse_many, iterations=1, rounds=3) == 200


def test_full_scan_filter(benchmark):
    """Unindexed predicate over the whole table (mask-compiled)."""
    engine = _engine()

    def scan():
        return engine.execute("SELECT count(*) FROM r WHERE v % 7 = 0").scalar()

    benchmark.extra_info["rows"] = N
    count = benchmark.pedantic(scan, iterations=1, rounds=3)
    assert count > 0


def test_index_scan(benchmark):
    """Hash-index-served point predicate."""
    engine = _engine()

    def lookup():
        return engine.execute("SELECT count(*) FROM r WHERE key = 'k7'").scalar()

    benchmark.extra_info["rows"] = N // 50
    count = benchmark.pedantic(lookup, iterations=1, rounds=3)
    assert count == N // 50


def test_group_by(benchmark):
    """Aggregation over every row.

    One warmup round absorbs the first-touch costs (mask caches,
    planner stats) that made this benchmark's p95 flaky; five measured
    rounds give the percentile something to stand on.
    """
    engine = _engine()

    def aggregate():
        return len(engine.execute("SELECT key, count(*), avg(v) FROM r GROUP BY key"))

    benchmark.extra_info["rows"] = N
    groups = benchmark.pedantic(aggregate, iterations=1, rounds=5, warmup_rounds=1)
    assert groups == 50


def test_consume(benchmark):
    """Consuming query: answer + delete.

    The per-round table rebuild runs in pedantic's ``setup`` so only
    the consume itself is timed.
    """

    def fresh():
        return (_engine(),), {}

    def consume(engine: QueryEngine) -> int:
        res = engine.execute("CONSUME SELECT v FROM r WHERE t BETWEEN 0 AND 999")
        return len(res.consumed)

    benchmark.extra_info["rows"] = 1_000
    consumed = benchmark.pedantic(consume, setup=fresh, rounds=5)
    assert consumed == 1_000
