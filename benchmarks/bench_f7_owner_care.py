"""Benchmark F7 — owner care: access-refresh vs bare EGI.

Regenerates experiment F7 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.f7_owner_care import run


def test_f7_owner_care(benchmark):
    """Time one full F7 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
