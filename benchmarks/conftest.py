"""Shared benchmark configuration.

Every ``bench_*.py`` file regenerates one derived table/figure (see
DESIGN.md's experiment index) by running the corresponding
:mod:`repro.experiments` module at smoke scale under pytest-benchmark,
then asserting the experiment's shape checks. ``--benchmark-only``
runs just these.

Run the full paper-scale series (the numbers EXPERIMENTS.md records)
with ``python -m repro.experiments paper``.

Passing ``--json [DIR]`` additionally writes one ``BENCH_<suite>.json``
snapshot per benchmark module (p50/p95/min/mean seconds, and rows/s
for benchmarks that set ``benchmark.extra_info["rows"]``) — the
machine-readable record CI uploads as an artifact.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_result
from repro.bench.runner import ExperimentResult


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--json",
        dest="bench_json",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="write BENCH_<suite>.json benchmark snapshots to DIR "
        "(default: current directory)",
    )


def pytest_sessionfinish(session, exitstatus) -> None:
    target = session.config.getoption("bench_json")
    if target is None:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    from repro.bench.snapshots import write_snapshots

    paths = write_snapshots(benchmarks, target)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        for path in paths:
            reporter.write_line(f"benchmark snapshot written: {path}")


def assert_checks(result: ExperimentResult) -> None:
    """Fail the benchmark if any shape check regressed."""
    failed = [name for name, ok in result.checks.items() if not ok]
    if failed:
        pytest.fail(
            f"{result.experiment_id} shape checks failed: {failed}\n"
            + render_result(result)
        )
