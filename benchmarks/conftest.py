"""Shared benchmark configuration.

Every ``bench_*.py`` file regenerates one derived table/figure (see
DESIGN.md's experiment index) by running the corresponding
:mod:`repro.experiments` module at smoke scale under pytest-benchmark,
then asserting the experiment's shape checks. ``--benchmark-only``
runs just these.

Run the full paper-scale series (the numbers EXPERIMENTS.md records)
with ``python -m repro.experiments paper``.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_result
from repro.bench.runner import ExperimentResult


def assert_checks(result: ExperimentResult) -> None:
    """Fail the benchmark if any shape check regressed."""
    failed = [name for name, ok in result.checks.items() if not ok]
    if failed:
        pytest.fail(
            f"{result.experiment_id} shape checks failed: {failed}\n"
            + render_result(result)
        )
