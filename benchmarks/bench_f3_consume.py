"""Benchmark F3 — Law-2 extent-vs-queries series.

Regenerates experiment F3 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.f3_consume import run


def test_f3_consume(benchmark):
    """Time one full F3 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
