"""Benchmark T2 — summary fidelity vs space.

Regenerates experiment T2 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.t2_cooking import run


def test_t2_cooking(benchmark):
    """Time one full T2 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
