"""Benchmark T3 — decay-clock overhead.

Regenerates experiment T3 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.t3_overhead import run


def test_t3_overhead(benchmark):
    """Time one full T3 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
