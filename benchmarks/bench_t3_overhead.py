"""Benchmark T3 — decay-clock and telemetry overhead.

Regenerates experiment T3 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
T3 also gates the observability layer: ingest with telemetry disabled
must repeat within 5% (the zero-overhead-when-disabled contract), and
enabled metrics collection must count every ingested row exactly.
"""

from conftest import assert_checks

from repro.experiments.t3_overhead import run


def test_t3_overhead(benchmark):
    """Time one full T3 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
