"""Micro-benchmarks of the storage engine hot paths.

These are the operations the decay clock and Law 2 hammer: append,
tombstone delete, neighbour navigation, index maintenance, compaction.
"""

from __future__ import annotations

import pytest

from repro.storage import HashIndex, Schema, SortedIndex, Table

N = 4_000


def _filled_table(with_indexes: bool = False) -> Table:
    table = Table(Schema.of(t="timestamp", f="float", v="int", key="str"), "bench")
    if with_indexes:
        HashIndex(table, "key")
        SortedIndex(table, "t")
    for i in range(N):
        table.append((float(i), 1.0, i, f"k{i % 100}"))
    return table


def test_append_plain(benchmark):
    """Raw appends without indexes."""
    def build() -> Table:
        table = Table(Schema.of(t="timestamp", f="float", v="int", key="str"), "b")
        for i in range(N):
            table.append((float(i), 1.0, i, f"k{i % 100}"))
        return table

    benchmark.extra_info["rows"] = N
    table = benchmark.pedantic(build, iterations=1, rounds=3)
    assert len(table) == N


def test_append_indexed(benchmark):
    """Appends while maintaining hash + sorted indexes."""
    def build() -> Table:
        table = Table(Schema.of(t="timestamp", f="float", v="int", key="str"), "b")
        HashIndex(table, "key")
        SortedIndex(table, "t")
        for i in range(N):
            table.append((float(i), 1.0, i, f"k{i % 100}"))
        return table

    benchmark.extra_info["rows"] = N
    table = benchmark.pedantic(build, iterations=1, rounds=3)
    assert len(table) == N


def test_delete_and_compact(benchmark):
    """Tombstone half the table and compact it."""
    def run() -> int:
        table = _filled_table()
        for rid in range(0, N, 2):
            table.delete(rid)
        table.compact()
        return len(table)

    benchmark.extra_info["rows"] = N
    remaining = benchmark.pedantic(run, iterations=1, rounds=3)
    assert remaining == N // 2


def test_neighbour_walk(benchmark):
    """prev/next navigation across a table with scattered tombstones."""
    table = _filled_table()
    for rid in range(0, N, 7):
        table.delete(rid)

    def walk() -> int:
        count = 0
        rid = table.next_live(0)
        while rid is not None and count < 2_000:
            rid = table.next_live(rid)
            count += 1
        return count

    count = benchmark.pedantic(walk, iterations=1, rounds=3)
    assert count == 2_000


def test_hash_lookup(benchmark):
    """Equality lookups through the hash index."""
    table = _filled_table(with_indexes=True)
    index = HashIndex(table, "key")

    def lookups() -> int:
        total = 0
        for i in range(100):
            total += len(index.lookup(f"k{i}"))
        return total

    total = benchmark.pedantic(lookups, iterations=1, rounds=3)
    assert total == N


def test_sorted_range(benchmark):
    """Range scans through the sorted index."""
    table = _filled_table()
    index = SortedIndex(table, "t")

    def ranges() -> int:
        total = 0
        for start in range(0, N, 1_000):
            total += len(index.range(float(start), float(start + 500)))
        return total

    expected = sum(
        min(start + 500, N - 1) - start + 1 for start in range(0, N, 1_000)
    )
    total = benchmark.pedantic(ranges, iterations=1, rounds=3)
    assert total == expected
