"""Benchmark F2 — EGI rot-spot dynamics.

Regenerates experiment F2 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.f2_rot_spots import run


def test_f2_rot_spots(benchmark):
    """Time one full F2 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
