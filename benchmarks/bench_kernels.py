"""Benchmark the vectorized decay kernels against the scalar fallback.

Times one EGI decay cycle over a fully infected table (every row in
one rot spot, seeding and spread disabled) at 10k and 100k rows, on
both backends. ``extra_info["rows"]`` feeds the rows/s figure in
``BENCH_kernels.json``; the vectorized/scalar rows/s ratio at 100k is
the headline number the kernels exist for (must stay >= 5x).
"""

import random

import pytest

from repro.core.clock import DecayClock
from repro.core.table import DecayingTable
from repro.fungi import EGIFungus
from repro.storage import Schema
from repro.storage.vector import HAVE_NUMPY


def _infected_table(n_rows: int, kernels: bool) -> tuple[DecayingTable, EGIFungus]:
    clock = DecayClock()
    table = DecayingTable("r", Schema.of(v="int"), clock, kernels=kernels)
    for i in range(n_rows):
        table.insert({"v": i})
    # one table-wide rot spot; no seeding or spread, so a cycle is
    # exactly one batch decay pass over n_rows members
    fungus = EGIFungus(seeds_per_cycle=0, decay_rate=1e-6, spread=False)
    fungus._spots.add_span(0, n_rows - 1)
    return table, fungus


@pytest.mark.parametrize("n_rows", [10_000, 100_000], ids=["10k", "100k"])
@pytest.mark.parametrize("backend", ["scalar", "vectorized"])
def test_egi_decay_cycle(benchmark, n_rows, backend):
    """rows/s of one full-spot EGI decay cycle per backend."""
    if backend == "vectorized" and not HAVE_NUMPY:
        pytest.skip("vectorized backend needs numpy")
    table, fungus = _infected_table(n_rows, kernels=backend == "vectorized")
    rng = random.Random(0)
    benchmark.extra_info["rows"] = n_rows
    benchmark.extra_info["backend"] = backend
    benchmark.pedantic(
        lambda: fungus.cycle(table, rng), iterations=1, rounds=7, warmup_rounds=1
    )
