"""Micro-benchmarks of the summary sketches (the distiller's hot loop)."""

from __future__ import annotations

from repro.sketch import (
    BloomFilter,
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    StreamingHistogram,
    TableSummary,
)
from repro.storage import Schema

N = 10_000


def test_countmin_add(benchmark):
    """Count-min ingestion rate."""
    def run() -> CountMinSketch:
        cm = CountMinSketch(width=256, depth=4)
        for i in range(N):
            cm.add(f"k{i % 500}")
        return cm

    cm = benchmark.pedantic(run, iterations=1, rounds=3)
    assert cm.total == N


def test_hll_add(benchmark):
    """HyperLogLog ingestion rate."""
    def run() -> HyperLogLog:
        hll = HyperLogLog(12)
        for i in range(N):
            hll.add(f"k{i}")
        return hll

    hll = benchmark.pedantic(run, iterations=1, rounds=3)
    assert abs(hll.estimate() - N) / N < 0.1


def test_bloom_add_and_query(benchmark):
    """Bloom filter insert + membership mix."""
    def run() -> int:
        bloom = BloomFilter.from_capacity(N, 0.01)
        for i in range(N):
            bloom.add(i)
        return sum(1 for i in range(N) if i in bloom)

    hits = benchmark.pedantic(run, iterations=1, rounds=3)
    assert hits == N


def test_histogram_add(benchmark):
    """Streaming histogram with centroid merging."""
    def run() -> StreamingHistogram:
        hist = StreamingHistogram(64)
        for i in range(N):
            hist.add((i * 37 % 1_000) / 10.0)
        return hist

    hist = benchmark.pedantic(run, iterations=1, rounds=3)
    assert hist.total == N


def test_reservoir_add(benchmark):
    """Reservoir sampling over a long stream."""
    def run() -> ReservoirSample:
        rs = ReservoirSample(100, seed=1)
        for i in range(N):
            rs.add(i)
        return rs

    rs = benchmark.pedantic(run, iterations=1, rounds=3)
    assert rs.seen == N


def test_table_summary_row_rate(benchmark):
    """Full per-row distillation cost (all sketches on every column)."""
    schema = Schema.of(t="timestamp", f="float", v="float", key="str")
    rows = [
        {"t": float(i), "f": 1.0, "v": (i * 31 % 100) / 7.0, "key": f"k{i % 50}"}
        for i in range(N // 4)
    ]

    def run() -> TableSummary:
        summary = TableSummary("bench", schema, time_column="t")
        for row in rows:
            summary.add_row(row)
        return summary

    summary = benchmark.pedantic(run, iterations=1, rounds=3)
    assert summary.row_count == N // 4
