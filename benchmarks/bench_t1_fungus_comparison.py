"""Benchmark T1 — fungus steady-state comparison.

Regenerates experiment T1 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.t1_fungus_comparison import run


def test_t1_fungus_comparison(benchmark):
    """Time one full T1 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
