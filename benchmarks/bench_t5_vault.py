"""Benchmark T5 — summary-container ablation (unbounded vs vault).

Regenerates experiment T5 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.t5_vault import run


def test_t5_vault(benchmark):
    """Time one full T5 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
