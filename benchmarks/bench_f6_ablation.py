"""Benchmark F6 — design-choice ablations.

Regenerates experiment F6 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.f6_ablation import run


def test_f6_ablation(benchmark):
    """Time one full F6 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
