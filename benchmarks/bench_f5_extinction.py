"""Benchmark F5 — extinction sweep.

Regenerates experiment F5 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.f5_extinction import run


def test_f5_extinction(benchmark):
    """Time one full F5 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
