"""Micro-benchmarks of single fungus cycles at a fixed extent.

Complements experiment T3 (which sweeps extents): here each fungus
gets one tick over the same 10k-row quiesced table, so relative cycle
costs are directly comparable in the pytest-benchmark table.
"""

from __future__ import annotations

import random

import pytest

from repro.core.clock import DecayClock
from repro.core.table import DecayingTable
from repro.fungi import (
    BlueCheeseFungus,
    EGIFungus,
    ExponentialDecayFungus,
    LinearDecayFungus,
    RetentionFungus,
)
from repro.storage import Schema

N = 10_000


def _table() -> DecayingTable:
    clock = DecayClock()
    table = DecayingTable("bench", Schema.of(v="int"), clock)
    for i in range(N):
        table.insert({"v": i})
    clock.advance(1)
    return table


@pytest.mark.parametrize(
    "name,make",
    [
        ("retention", lambda: RetentionFungus(max_age=1_000_000)),
        ("linear", lambda: LinearDecayFungus(rate=1e-9)),
        ("exponential", lambda: ExponentialDecayFungus(half_life=1e9)),
        ("egi", lambda: EGIFungus(seeds_per_cycle=2, decay_rate=1e-9)),
        ("blue-cheese", lambda: BlueCheeseFungus(max_spots=3, base_rate=1e-9)),
    ],
)
def test_fungus_cycle(benchmark, name, make):
    """One decay cycle over a 10k-row table (rates ~0: no evictions)."""
    table = _table()
    fungus = make()
    rng = random.Random(0)

    def cycle():
        return fungus.cycle(table, rng)

    benchmark.extra_info["rows"] = N
    report = benchmark.pedantic(cycle, iterations=1, rounds=5)
    assert report.fungus == fungus.name
    assert len(table) == N  # decay rates are ~0, nothing exhausted
