"""Benchmark T4 — health dividend.

Regenerates experiment T4 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.t4_health import run


def test_t4_health(benchmark):
    """Time one full T4 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
