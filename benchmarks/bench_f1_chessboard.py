"""Benchmark F1 — Chessboard ingest-vs-decay series.

Regenerates experiment F1 (see DESIGN.md) at smoke scale and
asserts its shape checks; the timed quantity is the full experiment.
"""

from conftest import assert_checks

from repro.experiments.f1_chessboard import run


def test_f1_chessboard(benchmark):
    """Time one full F1 run and verify every shape check."""
    result = benchmark.pedantic(run, args=("smoke",), iterations=1, rounds=1)
    assert_checks(result)
