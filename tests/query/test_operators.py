"""Direct tests of the physical operators (NULL ordering, limits, distinct)."""

import pytest

from repro.errors import ExecutionError
from repro.query import QueryEngine, parse
from repro.query.operators import _NullsLast, distinct, limit, sort_rows
from repro.storage import Catalog, Schema
from repro.storage.schema import ColumnDef, DataType


class TestNullsLast:
    def test_none_sorts_after_values(self):
        keys = sorted([_NullsLast(3), _NullsLast(None), _NullsLast(1)])
        assert [k.value for k in keys] == [1, 3, None]

    def test_two_nones_equalish(self):
        assert not _NullsLast(None) < _NullsLast(None)

    def test_incomparable_raises_execution_error(self):
        with pytest.raises(ExecutionError, match="cannot order"):
            _ = _NullsLast(1) < _NullsLast("a")


class TestSortRows:
    def order_items(self, sql_tail):
        return parse(f"SELECT x FROM r ORDER BY {sql_tail}").order_by

    def test_multi_key_stability(self):
        rows = [{"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 0, "b": 9}]
        ordered = sort_rows(rows, self.order_items("a, b"))
        assert ordered == [{"a": 0, "b": 9}, {"a": 1, "b": 1}, {"a": 1, "b": 2}]

    def test_descending_keeps_nulls_last(self):
        rows = [{"a": None}, {"a": 5}, {"a": 7}]
        ordered = sort_rows(rows, self.order_items("a DESC"))
        assert [r["a"] for r in ordered] == [7, 5, None]

    def test_ascending_nulls_last(self):
        rows = [{"a": None}, {"a": 5}]
        ordered = sort_rows(rows, self.order_items("a ASC"))
        assert [r["a"] for r in ordered] == [5, None]


class TestLimitAndDistinct:
    def test_limit_negative_rejected(self):
        with pytest.raises(ExecutionError):
            list(limit(iter([(1,)]), -1))

    def test_limit_stops_consuming(self):
        def gen():
            yield (1,)
            yield (2,)
            raise AssertionError("must not be pulled")

        assert list(limit(gen(), 2)) == [(1,), (2,)]

    def test_distinct_preserves_first_seen_order(self):
        rows = [(2,), (1,), (2,), (3,), (1,)]
        assert list(distinct(iter(rows))) == [(2,), (1,), (3,)]


class TestNullableColumnsEndToEnd:
    @pytest.fixture
    def engine(self):
        catalog = Catalog()
        schema = Schema(
            [
                ColumnDef("v", DataType.INT, nullable=True),
                ColumnDef("k", DataType.STR),
            ]
        )
        table = catalog.create_table("r", schema)
        table.append((3, "a"))
        table.append((None, "b"))
        table.append((1, "c"))
        return QueryEngine(catalog)

    def test_order_by_puts_nulls_last(self, engine):
        res = engine.execute("SELECT k FROM r ORDER BY v")
        assert res.column("k") == ["c", "a", "b"]

    def test_where_skips_nulls(self, engine):
        res = engine.execute("SELECT k FROM r WHERE v > 0")
        assert sorted(res.column("k")) == ["a", "c"]

    def test_is_null_finds_them(self, engine):
        assert engine.execute("SELECT k FROM r WHERE v IS NULL").column("k") == ["b"]

    def test_aggregates_skip_nulls(self, engine):
        res = engine.execute("SELECT count(*), count(v), sum(v) FROM r")
        assert res.rows == [(3, 2, 4)]

    def test_coalesce_fills(self, engine):
        res = engine.execute("SELECT coalesce(v, 0) c FROM r ORDER BY c")
        assert res.column("c") == [0, 1, 3]
