"""End-to-end tests for repro.query.executor (QueryEngine)."""

import pytest

from repro.errors import ExecutionError
from repro.query import QueryEngine
from repro.storage import RowSet, Schema


@pytest.fixture
def engine(catalog):
    return QueryEngine(catalog)


class TestBasicSelect:
    def test_star(self, engine):
        res = engine.execute("SELECT * FROM r")
        assert res.columns == ("t", "f", "v", "key")
        assert len(res) == 10

    def test_projection_order(self, engine):
        res = engine.execute("SELECT v, t FROM r LIMIT 1")
        assert res.columns == ("v", "t")
        assert res.rows[0] == (0, 0.0)

    def test_where(self, engine):
        res = engine.execute("SELECT v FROM r WHERE v > 50")
        assert res.column("v") == [64, 81]

    def test_expression_projection(self, engine):
        res = engine.execute("SELECT v * 2 AS d FROM r WHERE t = 3")
        assert res.scalar() == 18

    def test_scalar_function(self, engine):
        res = engine.execute("SELECT upper(key) u FROM r WHERE t = 0")
        assert res.scalar() == "B"

    def test_limit(self, engine):
        assert len(engine.execute("SELECT v FROM r LIMIT 3")) == 3

    def test_limit_zero(self, engine):
        assert len(engine.execute("SELECT v FROM r LIMIT 0")) == 0

    def test_distinct(self, engine):
        res = engine.execute("SELECT DISTINCT key FROM r ORDER BY key")
        assert res.rows == [("a",), ("b",)]

    def test_empty_table(self, engine, catalog):
        catalog.create_table("empty", Schema.of(x="int"))
        assert len(engine.execute("SELECT x FROM empty")) == 0


class TestOrderBy:
    def test_desc(self, engine):
        res = engine.execute("SELECT v FROM r ORDER BY v DESC LIMIT 2")
        assert res.column("v") == [81, 64]

    def test_multi_key(self, engine):
        res = engine.execute("SELECT key, v FROM r ORDER BY key, v DESC LIMIT 3")
        assert res.rows[0] == ("a", 81)

    def test_order_by_alias(self, engine):
        res = engine.execute("SELECT v * -1 AS neg FROM r ORDER BY neg LIMIT 1")
        assert res.scalar() == -81

    def test_order_by_expression(self, engine):
        res = engine.execute("SELECT v FROM r ORDER BY v % 3, v LIMIT 2")
        assert res.column("v") == [0, 9]


class TestAggregation:
    def test_count_star_empty(self, engine, catalog):
        catalog.create_table("empty", Schema.of(x="int"))
        assert engine.execute("SELECT count(*) FROM empty").scalar() == 0

    def test_global_aggregates(self, engine):
        res = engine.execute("SELECT count(*), sum(v), min(v), max(v), avg(v) FROM r")
        assert res.rows == [(10, 285, 0, 81, 28.5)]

    def test_group_by(self, engine):
        res = engine.execute(
            "SELECT key, count(*) AS n, sum(v) s FROM r GROUP BY key ORDER BY key"
        )
        assert res.rows == [("a", 5, 165), ("b", 5, 120)]

    def test_having(self, engine):
        res = engine.execute(
            "SELECT key, sum(v) s FROM r GROUP BY key HAVING sum(v) > 150"
        )
        assert res.rows == [("a", 165)]

    def test_having_without_group_by_filters_global(self, engine):
        res = engine.execute("SELECT count(*) FROM r HAVING count(*) > 100")
        assert len(res) == 0

    def test_aggregate_inside_expression(self, engine):
        res = engine.execute("SELECT max(v) - min(v) AS span FROM r")
        assert res.scalar() == 81

    def test_count_distinct(self, engine):
        assert engine.execute("SELECT count(DISTINCT key) FROM r").scalar() == 2

    def test_order_by_aggregate(self, engine):
        res = engine.execute(
            "SELECT key, sum(v) FROM r GROUP BY key ORDER BY sum(v) DESC"
        )
        assert res.rows[0][0] == "a"


class TestIndexedExecution:
    def test_hash_index_used(self, engine, catalog):
        catalog.create_hash_index("r", "key")
        res = engine.execute("SELECT count(*) FROM r WHERE key = 'a'")
        assert res.scalar() == 5
        assert res.stats.used_index.startswith("hash")
        assert res.stats.rows_scanned == 5

    def test_sorted_index_used(self, engine, catalog):
        catalog.create_sorted_index("r", "t")
        res = engine.execute("SELECT v FROM r WHERE t BETWEEN 2 AND 4 ORDER BY t")
        assert res.column("v") == [4, 9, 16]
        assert res.stats.used_index.startswith("range")

    def test_index_with_residual(self, engine, catalog):
        catalog.create_hash_index("r", "key")
        res = engine.execute("SELECT v FROM r WHERE key = 'a' AND v > 50")
        assert res.column("v") == [81]

    def test_index_and_full_scan_agree(self, engine, catalog):
        full = engine.execute("SELECT v FROM r WHERE t >= 5 ORDER BY v").rows
        catalog.create_sorted_index("r", "t")
        indexed = engine.execute("SELECT v FROM r WHERE t >= 5 ORDER BY v").rows
        assert full == indexed


class TestJoin:
    @pytest.fixture
    def with_dims(self, catalog):
        dims = catalog.create_table("dims", Schema.of(key="str", weight="int"))
        dims.append({"key": "a", "weight": 10})
        dims.append({"key": "b", "weight": 20})
        return catalog

    def test_join_matches(self, engine, with_dims):
        res = engine.execute(
            "SELECT r.v, dims.weight FROM r JOIN dims ON r.key = dims.key "
            "WHERE r.v > 60 ORDER BY r.v"
        )
        assert res.rows == [(64, 20), (81, 10)]

    def test_join_aliases(self, engine, with_dims):
        res = engine.execute(
            "SELECT x.v FROM r x JOIN dims d ON x.key = d.key WHERE d.weight = 10"
        )
        assert sorted(res.column("v")) == [1, 9, 25, 49, 81]

    def test_join_with_aggregation(self, engine, with_dims):
        res = engine.execute(
            "SELECT dims.weight, count(*) n FROM r JOIN dims ON r.key = dims.key "
            "GROUP BY dims.weight ORDER BY dims.weight"
        )
        assert res.rows == [(10, 5), (20, 5)]

    def test_join_no_matches(self, engine, catalog):
        other = catalog.create_table("other", Schema.of(key="str"))
        other.append({"key": "zzz"})
        res = engine.execute("SELECT r.v FROM r JOIN other ON r.key = other.key")
        assert len(res) == 0


class TestConsume:
    def test_consume_deletes_matches(self, engine, catalog):
        res = engine.execute("CONSUME SELECT v FROM r WHERE v > 50")
        assert res.consumed == RowSet([8, 9])
        assert res.stats.rows_consumed == 2
        assert len(catalog.table("r")) == 8

    def test_consume_all(self, engine, catalog):
        engine.execute("CONSUME SELECT * FROM r")
        assert len(catalog.table("r")) == 0

    def test_consume_nothing(self, engine, catalog):
        res = engine.execute("CONSUME SELECT v FROM r WHERE v > 1000")
        assert len(res.consumed) == 0
        assert len(catalog.table("r")) == 10

    def test_consume_with_limit_still_deletes_all_matches(self, engine, catalog):
        res = engine.execute("CONSUME SELECT v FROM r WHERE v > 10 LIMIT 1")
        assert len(res.rows) == 1
        assert len(res.consumed) == 6  # 16, 25, 36, 49, 64, 81
        assert len(catalog.table("r")) == 4

    def test_consume_hook_runs_before_delete(self, engine, catalog):
        seen = {}

        def hook(table_name, consumed):
            table = catalog.table(table_name)
            seen["values"] = [table.value(rid, "v") for rid in consumed]

        engine.add_consume_hook(hook)
        engine.execute("CONSUME SELECT v FROM r WHERE v >= 64")
        assert seen["values"] == [64, 81]

    def test_remove_consume_hook(self, engine):
        calls = []
        hook = lambda name, rows: calls.append(name)
        engine.add_consume_hook(hook)
        engine.remove_consume_hook(hook)
        engine.execute("CONSUME SELECT v FROM r WHERE v > 50")
        assert calls == []

    def test_plain_select_does_not_consume(self, engine, catalog):
        res = engine.execute("SELECT v FROM r WHERE v > 50")
        assert len(res.consumed) == 0
        assert len(catalog.table("r")) == 10

    def test_consecutive_consumes_drain(self, engine, catalog):
        first = engine.execute("CONSUME SELECT v FROM r WHERE key = 'a'")
        second = engine.execute("CONSUME SELECT v FROM r WHERE key = 'a'")
        assert len(first.consumed) == 5
        assert len(second.consumed) == 0


class TestAccessHooks:
    def test_access_hook_sees_matches(self, engine):
        seen = []
        engine.add_access_hook(lambda name, rows: seen.append((name, rows)))
        engine.execute("SELECT v FROM r WHERE v > 50")
        assert seen == [("r", RowSet([8, 9]))]

    def test_access_hook_not_called_on_empty(self, engine):
        seen = []
        engine.add_access_hook(lambda name, rows: seen.append(rows))
        engine.execute("SELECT v FROM r WHERE v > 1000")
        assert seen == []


class TestExplain:
    def test_explain_does_not_execute(self, engine, catalog):
        plan = engine.explain("CONSUME SELECT v FROM r WHERE v > 50")
        assert plan.consume
        assert len(catalog.table("r")) == 10


class TestErrors:
    def test_type_error_at_runtime(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT v FROM r WHERE key > 5")

    def test_unorderable_sort(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT v FROM r ORDER BY key + v")
