"""Tier-B consumption analysis: normalization, classification, footprint.

Covers the predicate-normalization algebra (NOT pushdown, BETWEEN,
AND/OR precedence, literal folding), the verdict lattice
(none/partial/total/invalid), histogram-backed footprint estimation,
``EXPLAIN CONSUME`` end to end through the database and the shell,
and the ``strict_consume`` refusal gate.
"""

import pytest

from repro.core.db import FungusDB
from repro.errors import ConsumeError
from repro.lint.analyze import ConsumeAnalyzer
from repro.query.ast_nodes import BinaryOp, Literal, UnaryOp
from repro.query.normalize import (
    Truth,
    classify,
    conjuncts,
    disjuncts,
    normalize,
)
from repro.query.parser import parse
from repro.storage.schema import Schema


def pred(sql_predicate: str):
    """Parse a bare predicate via a throwaway SELECT."""
    stmt = parse(f"SELECT x FROM r WHERE {sql_predicate}")
    return stmt.where


def norm_sql(sql_predicate: str) -> str:
    return normalize(pred(sql_predicate)).to_sql()


class TestNotPushdown:
    def test_not_comparison_flips_operator(self):
        assert norm_sql("NOT x > 3") == "(x <= 3)"
        assert norm_sql("NOT x = 3") == "(x != 3)"
        assert norm_sql("NOT x != 3") == "(x = 3)"
        assert norm_sql("NOT x <= 3") == "(x > 3)"

    def test_de_morgan_over_and(self):
        assert norm_sql("NOT (x > 3 AND y < 2)") == "((x <= 3) OR (y >= 2))"

    def test_de_morgan_over_or(self):
        assert norm_sql("NOT (x > 3 OR y < 2)") == "((x <= 3) AND (y >= 2))"

    def test_double_negation_cancels(self):
        assert norm_sql("NOT (NOT x > 3)") == "(x > 3)"

    def test_not_between_becomes_negated_between(self):
        normalized = normalize(pred("NOT x BETWEEN 1 AND 5"))
        assert normalized.negated
        assert normalized.to_sql() == "(x NOT BETWEEN 1 AND 5)"

    def test_not_is_null_flips(self):
        assert "IS NOT NULL" in norm_sql("NOT x IS NULL")

    def test_not_in_list_flips(self):
        assert "NOT IN" in norm_sql("NOT x IN (1, 2)")


class TestBetween:
    def test_between_classifies_like_its_expansion(self):
        schema = Schema.of(x="int")
        a = classify(pred("x BETWEEN 1 AND 5"), schema=schema)
        b = classify(pred("x >= 1 AND x <= 5"), schema=schema)
        assert a == b == Truth.CONTINGENT

    def test_between_contradiction_with_range(self):
        assert (
            classify(pred("x BETWEEN 1 AND 5 AND x > 9"), schema=Schema.of(x="int"))
            is Truth.ALWAYS_FALSE
        )

    def test_empty_between_is_always_false(self):
        assert (
            classify(pred("x BETWEEN 5 AND 1"), schema=Schema.of(x="int"))
            is Truth.ALWAYS_FALSE
        )

    def test_not_between_tautology_on_empty_range(self):
        # NOT (5 <= x <= 1) covers everything, but only a non-nullable
        # column may promise it; the schema-less call stays contingent
        assert classify(pred("NOT x BETWEEN 5 AND 1")) is Truth.CONTINGENT


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        # a OR b AND c parses as a OR (b AND c)
        expr = pred("x = 1 OR x = 2 AND y = 3")
        top = disjuncts(normalize(expr))
        assert len(top) == 2

    def test_conjunct_flattening(self):
        expr = normalize(pred("x > 1 AND (y > 2 AND z > 3)"))
        assert len(conjuncts(expr)) == 3

    def test_mixed_and_or_contradiction_detected_per_branch(self):
        # each OR branch is separately contradictory
        verdict = classify(
            pred("(x > 5 AND x < 2) OR (x > 9 AND x < 7)"),
            schema=Schema.of(x="int"),
        )
        assert verdict is Truth.ALWAYS_FALSE

    def test_one_live_branch_keeps_it_contingent(self):
        verdict = classify(
            pred("(x > 5 AND x < 2) OR x = 3"), schema=Schema.of(x="int")
        )
        assert verdict is Truth.CONTINGENT


class TestLiteralFolding:
    def test_always_true_literal(self):
        assert classify(pred("1 = 1")) is Truth.ALWAYS_TRUE
        assert classify(pred("TRUE")) is Truth.ALWAYS_TRUE

    def test_always_false_literal(self):
        assert classify(pred("1 = 2")) is Truth.ALWAYS_FALSE
        assert classify(pred("FALSE")) is Truth.ALWAYS_FALSE

    def test_constant_arithmetic_folds(self):
        folded = normalize(pred("2 + 2 = 4"))
        assert isinstance(folded, Literal)
        assert folded.value is True

    def test_true_branch_absorbs_and(self):
        assert norm_sql("1 = 1 AND x > 3") == "(x > 3)"

    def test_false_branch_absorbs_or(self):
        assert norm_sql("1 = 2 OR x > 3") == "(x > 3)"

    def test_non_constant_side_survives(self):
        normalized = normalize(pred("x + 1 > 3"))
        assert isinstance(normalized, BinaryOp)
        assert not isinstance(normalized, (Literal, UnaryOp))


class TestVerdicts:
    @pytest.fixture
    def db(self):
        db = FungusDB(seed=7)
        db.create_table("r", Schema.of(k="int", v="int"))
        for i in range(50):
            db.insert("r", {"k": i, "v": i * 2})
        return db

    def test_partial(self, db):
        report = db.explain_consume("CONSUME SELECT k FROM r WHERE v > 50")
        assert report.verdict == "partial"
        assert 0 < report.estimated_rows < 50

    def test_none_via_contradiction(self, db):
        report = db.explain_consume(
            "CONSUME SELECT k FROM r WHERE v > 50 AND v < 10"
        )
        assert report.verdict == "none"
        assert report.estimated_rows == 0

    def test_total_via_missing_where(self, db):
        report = db.explain_consume("CONSUME SELECT k FROM r")
        assert report.verdict == "total"
        assert report.estimated_rows == 50
        assert report.extent == 50

    def test_total_via_freshness_domain(self, db):
        # f ∈ [0, 1] is a maintained invariant, so f >= 0 is total
        report = db.explain_consume("CONSUME SELECT k FROM r WHERE f >= 0.0")
        assert report.verdict == "total"

    def test_invalid_unknown_column(self, db):
        report = db.explain_consume(
            "CONSUME SELECT k FROM r WHERE nope > 3"
        )
        assert report.verdict == "invalid"
        assert any("nope" in e for e in report.errors)

    def test_invalid_type_mismatch(self, db):
        report = db.explain_consume(
            "CONSUME SELECT k FROM r WHERE v > 'ten'"
        )
        assert report.verdict == "invalid"

    def test_analysis_does_not_consume(self, db):
        db.explain_consume("CONSUME SELECT k FROM r")
        assert db.extent("r") == 50

    def test_explain_consume_sql_statement(self, db):
        result = db.query("EXPLAIN CONSUME SELECT k FROM r WHERE v > 50")
        assert result.columns == ("explain",)
        text = "\n".join(row[0] for row in result.rows)
        assert "verdict:    partial" in text
        assert db.extent("r") == 50

    def test_explain_plain_select_renders_plan(self, db):
        result = db.query("EXPLAIN SELECT k FROM r WHERE v > 50 LIMIT 2")
        text = "\n".join(row[0] for row in result.rows)
        assert "scan r" in text
        assert "limit 2" in text

    def test_limit_warning(self, db):
        report = db.explain_consume(
            "CONSUME SELECT k FROM r WHERE v > 50 LIMIT 1"
        )
        assert any("LIMIT" in w for w in report.warnings)


class TestFootprintEstimation:
    def test_histogram_range_estimate_is_reasonable(self):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        for i in range(100):
            db.insert("r", {"v": i})
        report = db.explain_consume("CONSUME SELECT v FROM r WHERE v >= 75")
        assert report.verdict == "partial"
        # uniform data: ~25% of 100 rows, allow histogram-bin slack
        assert 15 <= report.estimated_rows <= 35

    def test_verdict_matches_execution(self):
        db = FungusDB(seed=2)
        db.create_table("r", Schema.of(v="int"))
        for i in range(30):
            db.insert("r", {"v": i})
        for sql in (
            "CONSUME SELECT v FROM r WHERE v < 10",
            "CONSUME SELECT v FROM r WHERE v > 100",
            "CONSUME SELECT v FROM r WHERE v >= 0 OR v < 0",
        ):
            report = db.explain_consume(sql)
            before = db.extent("r")
            consumed = db.query(sql).stats.rows_consumed
            if report.verdict == "none":
                assert consumed == 0
            elif report.verdict == "total":
                assert consumed == before


class TestStrictConsume:
    def test_strict_refuses_total(self):
        db = FungusDB(seed=3, strict_consume=True)
        db.create_table("r", Schema.of(v="int"))
        db.insert("r", {"v": 1})
        with pytest.raises(ConsumeError, match="strict_consume"):
            db.query("CONSUME SELECT v FROM r")
        assert db.extent("r") == 1  # nothing was consumed

    def test_strict_allows_partial(self):
        db = FungusDB(seed=3, strict_consume=True)
        db.create_table("r", Schema.of(v="int"))
        for i in range(5):
            db.insert("r", {"v": i})
        result = db.query("CONSUME SELECT v FROM r WHERE v < 2")
        assert result.stats.rows_consumed == 2

    def test_default_db_is_permissive(self):
        db = FungusDB(seed=3)
        db.create_table("r", Schema.of(v="int"))
        db.insert("r", {"v": 1})
        assert db.query("CONSUME SELECT v FROM r").stats.rows_consumed == 1


class TestAnalyzerStandalone:
    def test_schemaless_analysis_still_classifies(self):
        analyzer = ConsumeAnalyzer()
        report = analyzer.analyze(
            "CONSUME SELECT v FROM r WHERE v > 5 AND v < 2"
        )
        assert report.verdict == "none"
        assert report.extent is None

    def test_rejects_non_consume(self):
        with pytest.raises(ConsumeError):
            ConsumeAnalyzer().analyze("SELECT v FROM r")


class TestObservability:
    def test_analysis_publishes_event_and_metric(self):
        from repro.obs.collector import BusCollector
        from repro.obs.export import render_prometheus

        db = FungusDB(seed=4)
        collector = BusCollector().attach(db)
        db.create_table("r", Schema.of(v="int"))
        db.insert("r", {"v": 1})
        db.explain_consume("CONSUME SELECT v FROM r WHERE v > 5")
        db.explain_consume("CONSUME SELECT v FROM r")
        text = render_prometheus(collector.registry)
        assert 'repro_consume_analyzed_total{table="r",verdict="partial"} 1' in text
        assert 'repro_consume_analyzed_total{table="r",verdict="total"} 1' in text
