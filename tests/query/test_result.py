"""Tests for repro.query.result."""

import pytest

from repro.query.result import ResultSet, format_table
from repro.storage import RowSet


@pytest.fixture
def result():
    return ResultSet(columns=("a", "b"), rows=[(1, "x"), (2, "y")])


class TestResultSet:
    def test_len_iter_bool(self, result):
        assert len(result) == 2
        assert list(result) == [(1, "x"), (2, "y")]
        assert result
        assert not ResultSet(columns=("a",), rows=[])

    def test_column(self, result):
        assert result.column("b") == ["x", "y"]

    def test_column_unknown(self, result):
        with pytest.raises(KeyError, match="no result column"):
            result.column("z")

    def test_scalar(self):
        assert ResultSet(columns=("n",), rows=[(5,)]).scalar() == 5

    def test_scalar_rejects_non_1x1(self, result):
        with pytest.raises(ValueError, match="1x1"):
            result.scalar()

    def test_to_dicts(self, result):
        assert result.to_dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_default_consumed_empty(self, result):
        assert result.consumed == RowSet.empty()

    def test_pretty_contains_data(self, result):
        text = result.pretty()
        assert "a" in text and "x" in text and "|" in text

    def test_pretty_truncates(self):
        big = ResultSet(columns=("n",), rows=[(i,) for i in range(100)])
        assert big.pretty(max_rows=5).endswith("...")


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("col",), [("a",), ("longer",)])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines)) == 1  # all same width

    def test_null_rendering(self):
        assert "NULL" in format_table(("x",), [(None,)])

    def test_float_rendering(self):
        assert "3.142" in format_table(("x",), [(3.14159,)])

    def test_empty_rows(self):
        text = format_table(("x", "y"), [])
        assert "x" in text and "y" in text
