"""Tests for the freshness-weighted aggregates (wavg / wsum)."""

import pytest

from repro.errors import ExecutionError, PlanError
from repro.query import QueryEngine
from repro.query.functions import aggregate_arity, make_aggregate
from repro.storage import Catalog, Schema


@pytest.fixture
def engine():
    catalog = Catalog()
    table = catalog.create_table("r", Schema.of(v="float", w="float", k="str"))
    table.append((10.0, 1.0, "a"))
    table.append((20.0, 0.5, "a"))
    table.append((30.0, 0.0, "b"))
    return QueryEngine(catalog)


class TestAccumulators:
    def test_arity(self):
        assert aggregate_arity("wavg") == 2
        assert aggregate_arity("wsum") == 2
        assert aggregate_arity("avg") == 1
        assert aggregate_arity("nonexistent") == 1

    def test_wavg_basics(self):
        agg = make_aggregate("wavg")
        agg.add((10.0, 1.0))
        agg.add((20.0, 0.5))
        assert agg.result() == pytest.approx(20.0 / 1.5)

    def test_wavg_zero_weight_is_null(self):
        agg = make_aggregate("wavg")
        agg.add((10.0, 0.0))
        assert agg.result() is None

    def test_wavg_empty_is_null(self):
        assert make_aggregate("wavg").result() is None

    def test_wavg_skips_null_pairs(self):
        agg = make_aggregate("wavg")
        agg.add((None, 1.0))
        agg.add((10.0, None))
        agg.add(None)
        agg.add((10.0, 1.0))
        assert agg.result() == 10.0

    def test_wavg_negative_weight_rejected(self):
        with pytest.raises(ExecutionError):
            make_aggregate("wavg").add((1.0, -0.5))

    def test_wavg_type_checked(self):
        with pytest.raises(ExecutionError):
            make_aggregate("wavg").add(("x", 1.0))

    def test_wsum_basics(self):
        agg = make_aggregate("wsum")
        agg.add((10.0, 0.5))
        agg.add((4.0, 2.0))
        assert agg.result() == pytest.approx(13.0)

    def test_wsum_empty_is_null(self):
        assert make_aggregate("wsum").result() is None


class TestInQueries:
    def test_wavg_query(self, engine):
        result = engine.execute("SELECT wavg(v, w) FROM r").scalar()
        assert result == pytest.approx((10 * 1.0 + 20 * 0.5 + 30 * 0.0) / 1.5)

    def test_wsum_query(self, engine):
        assert engine.execute("SELECT wsum(v, w) FROM r").scalar() == pytest.approx(20.0)

    def test_wavg_group_by(self, engine):
        res = engine.execute("SELECT k, wavg(v, w) FROM r GROUP BY k ORDER BY k")
        assert res.rows[0][1] == pytest.approx(40.0 / 3)
        assert res.rows[1][1] is None  # group b has zero total weight

    def test_arity_validated_at_plan_time(self, engine):
        with pytest.raises(PlanError, match="2 argument"):
            engine.execute("SELECT wavg(v) FROM r")
        with pytest.raises(PlanError, match="1 argument"):
            engine.execute("SELECT avg(v, w) FROM r")

    def test_wavg_with_expression_weight(self, engine):
        result = engine.execute("SELECT wavg(v, w * 2) FROM r").scalar()
        assert result == pytest.approx(20.0 / 1.5)  # scaling weights is a no-op
