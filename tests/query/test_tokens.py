"""Tests for repro.query.tokens."""

import pytest

from repro.errors import TokenizeError
from repro.query.tokens import TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_uppercased(self):
        assert texts("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        assert texts("myTable") == ["myTable"]
        assert tokenize("myTable")[0].type is TokenType.IDENT

    def test_punctuation(self):
        assert kinds("(,.*)")[:5] == [
            TokenType.LPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.STAR,
            TokenType.RPAREN,
        ]

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3

    def test_matches_keyword(self):
        tok = tokenize("SELECT")[0]
        assert tok.matches_keyword("SELECT")
        assert not tok.matches_keyword("FROM")


class TestNumbers:
    def test_integer(self):
        assert texts("42") == ["42"]

    def test_float(self):
        assert texts("3.14") == ["3.14"]

    def test_leading_dot(self):
        assert texts(".5") == [".5"]
        assert tokenize(".5")[0].type is TokenType.NUMBER

    def test_exponent(self):
        assert texts("1e6 2.5E-3") == ["1e6", "2.5E-3"]

    def test_identifier_e_not_swallowed(self):
        tokens = tokenize("1everything")
        assert tokens[0].text == "1"
        assert tokens[1].text == "everything"


class TestStrings:
    def test_simple(self):
        tok = tokenize("'hello'")[0]
        assert tok.type is TokenType.STRING
        assert tok.text == "hello"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_unterminated(self):
        with pytest.raises(TokenizeError, match="unterminated"):
            tokenize("'oops")

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""


class TestOperators:
    def test_all_comparisons(self):
        assert texts("= != <> < <= > >=") == ["=", "!=", "!=", "<", "<=", ">", ">="]

    def test_arithmetic(self):
        assert texts("+ - / %") == ["+", "-", "/", "%"]

    def test_comments_skipped(self):
        assert texts("a -- comment here\nb") == ["a", "b"]

    def test_comment_at_end(self):
        assert texts("a -- trailing") == ["a"]

    def test_unknown_character(self):
        with pytest.raises(TokenizeError, match="unexpected character"):
            tokenize("a @ b")
