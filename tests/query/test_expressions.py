"""Tests for repro.query.expressions (evaluation + NULL semantics)."""

import pytest

from repro.errors import ExecutionError
from repro.query import parse
from repro.query.expressions import evaluate, matches


def expr_of(sql_predicate):
    """Parse the WHERE expression out of a dummy statement."""
    return parse(f"SELECT x FROM r WHERE {sql_predicate}").where


def ev(predicate, **row):
    return evaluate(expr_of(predicate), row)


class TestArithmetic:
    def test_basic_ops(self):
        assert ev("x + 2 = 5", x=3) is True
        assert ev("x - 1 = 1", x=2) is True
        assert ev("x * 3 = 9", x=3) is True
        assert ev("x / 4 = 2.5", x=10) is True
        assert ev("x % 3 = 1", x=10) is True

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            ev("x / 0 = 1", x=1)

    def test_modulo_by_zero(self):
        with pytest.raises(ExecutionError, match="modulo by zero"):
            ev("x % 0 = 1", x=1)

    def test_string_concat_with_plus(self):
        assert ev("x + 'b' = 'ab'", x="a") is True

    def test_arithmetic_on_string_rejected(self):
        with pytest.raises(ExecutionError):
            ev("x * 2 = 4", x="two")

    def test_unary_minus(self):
        assert ev("-x = -3", x=3) is True


class TestComparisons:
    def test_numeric_cross_type(self):
        assert ev("x = 3", x=3.0) is True

    def test_string_comparison(self):
        assert ev("x < 'b'", x="a") is True

    def test_mixed_type_rejected(self):
        with pytest.raises(ExecutionError, match="cannot apply"):
            ev("x > 5", x="five")

    def test_all_operators(self):
        assert ev("x != 2", x=1) is True
        assert ev("x <= 1", x=1) is True
        assert ev("x >= 1", x=1) is True


class TestNullSemantics:
    def test_comparison_with_null_is_null(self):
        assert ev("x = 1", x=None) is None

    def test_arithmetic_with_null_is_null(self):
        assert ev("x + 1 = 2", x=None) is None

    def test_and_kleene(self):
        assert ev("x = 1 AND y = 1", x=None, y=2) is False  # false wins
        assert ev("x = 1 AND y = 1", x=None, y=1) is None

    def test_or_kleene(self):
        assert ev("x = 1 OR y = 1", x=None, y=1) is True  # true wins
        assert ev("x = 1 OR y = 1", x=None, y=2) is None

    def test_not_null_is_null(self):
        assert ev("NOT x = 1", x=None) is None

    def test_is_null(self):
        assert ev("x IS NULL", x=None) is True
        assert ev("x IS NOT NULL", x=None) is False

    def test_in_with_null_candidates(self):
        assert ev("x IN (1, 2)", x=3) is False
        assert ev("x IN (1, y)", x=3, y=None) is None
        assert ev("x IN (3, y)", x=3, y=None) is True

    def test_between_null(self):
        assert ev("x BETWEEN 1 AND 3", x=None) is None

    def test_matches_treats_null_as_false(self):
        assert matches(expr_of("x = 1"), {"x": None}) is False

    def test_matches_requires_boolean(self):
        with pytest.raises(ExecutionError, match="boolean"):
            matches(expr_of("x + 1"), {"x": 1})


class TestPredicateForms:
    def test_between_inclusive(self):
        assert ev("x BETWEEN 1 AND 3", x=1) is True
        assert ev("x BETWEEN 1 AND 3", x=3) is True
        assert ev("x BETWEEN 1 AND 3", x=4) is False

    def test_not_between(self):
        assert ev("x NOT BETWEEN 1 AND 3", x=4) is True

    def test_not_in(self):
        assert ev("x NOT IN (1, 2)", x=3) is True
        assert ev("x NOT IN (1, 2)", x=2) is False

    def test_in_does_not_match_across_bool_int(self):
        assert ev("x IN (1)", x=True) is False


class TestColumnResolution:
    def test_unknown_column(self):
        with pytest.raises(ExecutionError, match="unknown column"):
            ev("y = 1", x=1)

    def test_qualified_suffix_fallback(self):
        expr = expr_of("v = 1")
        assert evaluate(expr, {"r.v": 1}) is True

    def test_ambiguous_suffix(self):
        expr = expr_of("v = 1")
        with pytest.raises(ExecutionError, match="ambiguous"):
            evaluate(expr, {"r.v": 1, "s.v": 2})


class TestScalarFunctionCalls:
    def test_known_function(self):
        assert ev("abs(x) = 3", x=-3) is True

    def test_unknown_function(self):
        with pytest.raises(ExecutionError, match="unknown function"):
            ev("nosuchfn(x) = 1", x=1)

    def test_aggregate_outside_group_context(self):
        with pytest.raises(ExecutionError, match="aggregate"):
            ev("count(x) = 1", x=1)

    def test_aggregate_reads_precomputed_key(self):
        expr = expr_of("count(x) > 1")
        assert evaluate(expr, {"count(x)": 5}) is True
