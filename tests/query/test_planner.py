"""Tests for repro.query.planner (validation and index selection)."""

import pytest

from repro.errors import CatalogError, PlanError
from repro.query import parse, plan_select
from repro.query.planner import IndexAccess, JoinPlan, ScanPlan


def plan(catalog, sql):
    return plan_select(parse(sql), catalog)


class TestValidation:
    def test_unknown_table(self, catalog):
        with pytest.raises(CatalogError, match="unknown table"):
            plan(catalog, "SELECT v FROM nope")

    def test_unknown_column(self, catalog):
        with pytest.raises(PlanError, match="unknown column"):
            plan(catalog, "SELECT zzz FROM r")

    def test_unknown_qualifier(self, catalog):
        with pytest.raises(PlanError, match="qualifier"):
            plan(catalog, "SELECT s.v FROM r")

    def test_unknown_column_in_where(self, catalog):
        with pytest.raises(PlanError, match="unknown column"):
            plan(catalog, "SELECT v FROM r WHERE zzz = 1")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(PlanError, match="HAVING"):
            plan(catalog, "SELECT v FROM r WHERE count(*) > 1")

    def test_bare_column_outside_group_by(self, catalog):
        with pytest.raises(PlanError, match="GROUP BY"):
            plan(catalog, "SELECT key, v, count(*) FROM r GROUP BY key")

    def test_having_without_group_or_aggregate(self, catalog):
        with pytest.raises(PlanError, match="HAVING"):
            plan(catalog, "SELECT v FROM r HAVING v > 1")

    def test_duplicate_output_names(self, catalog):
        with pytest.raises(PlanError, match="duplicate output"):
            plan(catalog, "SELECT v, v FROM r")

    def test_star_with_other_projections(self, catalog):
        with pytest.raises(PlanError):
            plan_select(parse("SELECT *, v FROM r"), catalog)

    def test_star_with_group_by(self, catalog):
        with pytest.raises(PlanError, match="GROUP BY"):
            plan(catalog, "SELECT * FROM r GROUP BY key")

    def test_star_expansion(self, catalog):
        p = plan(catalog, "SELECT * FROM r")
        assert p.output_columns == ("t", "f", "v", "key")

    def test_order_by_alias_rewritten(self, catalog):
        p = plan(catalog, "SELECT v AS val FROM r ORDER BY val")
        assert p.order_by[0].expr.to_sql() == "v"

    def test_order_by_aggregate_requires_grouping(self, catalog):
        with pytest.raises(PlanError):
            plan(catalog, "SELECT v FROM r ORDER BY count(*)")

    def test_consume_with_join_rejected(self, catalog):
        catalog.create_table("s", _schema_s())
        with pytest.raises(PlanError, match="CONSUME"):
            plan(catalog, "CONSUME SELECT v FROM r JOIN s ON r.key = s.key")

    def test_duplicate_binding(self, catalog):
        catalog.create_table("s", _schema_s())
        with pytest.raises(PlanError, match="duplicate table binding"):
            plan(catalog, "SELECT 1 FROM r x JOIN s x ON x.key = x.key")


def _schema_s():
    from repro.storage import Schema

    return Schema.of(key="str", weight="int")


class TestIndexSelection:
    def test_no_index_full_scan(self, catalog):
        p = plan(catalog, "SELECT v FROM r WHERE key = 'a'")
        assert isinstance(p.source, ScanPlan)
        assert p.source.index is None
        assert p.source.residual is not None

    def test_hash_index_chosen(self, catalog):
        catalog.create_hash_index("r", "key")
        p = plan(catalog, "SELECT v FROM r WHERE key = 'a'")
        assert p.source.index == IndexAccess("hash-eq", "key", eq_value="a")
        assert p.source.residual is None

    def test_hash_index_with_residual(self, catalog):
        catalog.create_hash_index("r", "key")
        p = plan(catalog, "SELECT v FROM r WHERE key = 'a' AND v > 3")
        assert p.source.index.kind == "hash-eq"
        assert p.source.residual is not None

    def test_reversed_comparison_normalised(self, catalog):
        catalog.create_hash_index("r", "key")
        p = plan(catalog, "SELECT v FROM r WHERE 'a' = key")
        assert p.source.index.eq_value == "a"

    def test_sorted_index_range(self, catalog):
        catalog.create_sorted_index("r", "t")
        p = plan(catalog, "SELECT v FROM r WHERE t >= 3")
        idx = p.source.index
        assert idx.kind == "sorted-range"
        assert idx.low == 3 and idx.include_low

    def test_sorted_index_strict_bound(self, catalog):
        catalog.create_sorted_index("r", "t")
        p = plan(catalog, "SELECT v FROM r WHERE t < 5")
        idx = p.source.index
        assert idx.high == 5 and not idx.include_high

    def test_between_uses_sorted_index(self, catalog):
        catalog.create_sorted_index("r", "t")
        p = plan(catalog, "SELECT v FROM r WHERE t BETWEEN 2 AND 4")
        idx = p.source.index
        assert (idx.low, idx.high) == (2, 4)

    def test_or_disables_index(self, catalog):
        catalog.create_hash_index("r", "key")
        p = plan(catalog, "SELECT v FROM r WHERE key = 'a' OR v = 1")
        assert p.source.index is None

    def test_describe(self):
        assert "hash" in IndexAccess("hash-eq", "key", eq_value="a").describe()
        assert "range" in IndexAccess("sorted-range", "t", low=1, high=2).describe()


class TestJoinPlanning:
    def test_join_keys_resolved_by_side(self, catalog):
        catalog.create_table("s", _schema_s())
        p = plan(catalog, "SELECT r.v, s.weight FROM r JOIN s ON s.key = r.key")
        assert isinstance(p.source, JoinPlan)
        assert p.source.left_key == "r.key"
        assert p.source.right_key == "s.key"

    def test_join_on_same_side_rejected(self, catalog):
        catalog.create_table("s", _schema_s())
        with pytest.raises(PlanError, match="each table"):
            plan(catalog, "SELECT r.v FROM r JOIN s ON r.key = r.key")

    def test_join_where_becomes_residual(self, catalog):
        catalog.create_table("s", _schema_s())
        p = plan(catalog, "SELECT r.v FROM r JOIN s ON r.key = s.key WHERE s.weight > 1")
        assert p.source.residual is not None

    def test_ambiguous_unqualified_column(self, catalog):
        catalog.create_table("s", _schema_s())
        with pytest.raises(PlanError, match="ambiguous"):
            plan(catalog, "SELECT key FROM r JOIN s ON r.key = s.key")


class TestAggregatePlanning:
    def test_aggregates_deduplicated(self, catalog):
        p = plan(catalog, "SELECT count(*), count(*) + 1 AS n1 FROM r")
        assert len(p.aggregate.aggregates) == 1

    def test_group_keys_resolved(self, catalog):
        p = plan(catalog, "SELECT key, count(*) FROM r GROUP BY key")
        assert p.aggregate.group_names == ("key",)

    def test_global_aggregate_without_group_by(self, catalog):
        p = plan(catalog, "SELECT sum(v) FROM r")
        assert p.aggregate is not None
        assert p.aggregate.group_keys == ()

    def test_plain_select_has_no_aggregate(self, catalog):
        assert plan(catalog, "SELECT v FROM r").aggregate is None
