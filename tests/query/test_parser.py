"""Tests for repro.query.parser."""

import pytest

from repro.errors import ParseError
from repro.query import parse
from repro.query.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Star,
    UnaryOp,
)


class TestProjections:
    def test_star(self):
        stmt = parse("SELECT * FROM r")
        assert isinstance(stmt.projections[0].expr, Star)

    def test_columns_and_aliases(self):
        stmt = parse("SELECT a, b AS bee, c cee FROM r")
        assert stmt.projections[0].output_name == "a"
        assert stmt.projections[1].alias == "bee"
        assert stmt.projections[2].alias == "cee"

    def test_qualified_column(self):
        stmt = parse("SELECT r.a FROM r")
        assert stmt.projections[0].expr == ColumnRef("a", table="r")

    def test_expression_projection(self):
        stmt = parse("SELECT a * 2 + 1 FROM r")
        expr = stmt.projections[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM r").distinct


class TestConsume:
    def test_consume_flag(self):
        assert parse("CONSUME SELECT * FROM r").consume
        assert not parse("SELECT * FROM r").consume


class TestTableRefs:
    def test_alias_forms(self):
        assert parse("SELECT a FROM r x").table.alias == "x"
        assert parse("SELECT a FROM r AS x").table.alias == "x"
        assert parse("SELECT a FROM r").table.binding == "r"

    def test_join(self):
        stmt = parse("SELECT a FROM r JOIN s ON r.k = s.k")
        assert stmt.join.table.name == "s"
        assert stmt.join.left == ColumnRef("k", "r")
        assert stmt.join.right == ColumnRef("k", "s")

    def test_join_requires_equality(self):
        with pytest.raises(ParseError, match="equi-join"):
            parse("SELECT a FROM r JOIN s ON r.k < s.k")


class TestWhere:
    def test_precedence_or_and(self):
        stmt = parse("SELECT a FROM r WHERE x = 1 OR y = 2 AND z = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_parentheses_override(self):
        stmt = parse("SELECT a FROM r WHERE (x = 1 OR y = 2) AND z = 3")
        assert stmt.where.op == "AND"

    def test_not(self):
        stmt = parse("SELECT a FROM r WHERE NOT x = 1")
        assert isinstance(stmt.where, UnaryOp) and stmt.where.op == "NOT"

    def test_in_list(self):
        stmt = parse("SELECT a FROM r WHERE x IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        stmt = parse("SELECT a FROM r WHERE x NOT IN (1)")
        assert stmt.where.negated

    def test_between(self):
        stmt = parse("SELECT a FROM r WHERE x BETWEEN 1 AND 5")
        assert isinstance(stmt.where, Between)

    def test_not_between(self):
        stmt = parse("SELECT a FROM r WHERE x NOT BETWEEN 1 AND 5")
        assert stmt.where.negated

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse("SELECT a FROM r WHERE x IS NULL").where, IsNull)
        assert parse("SELECT a FROM r WHERE x IS NOT NULL").where.negated

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a FROM r WHERE x + 2 * 3 = 7")
        comparison = stmt.where
        assert comparison.left.op == "+"
        assert comparison.left.right.op == "*"

    def test_unary_minus(self):
        stmt = parse("SELECT a FROM r WHERE x = -1")
        assert isinstance(stmt.where.right, UnaryOp)

    def test_literals(self):
        stmt = parse("SELECT a FROM r WHERE x = 'txt' AND b = TRUE AND c = FALSE AND d IS NULL")
        text = stmt.to_sql()
        assert "'txt'" in text and "TRUE" in text and "FALSE" in text


class TestFunctions:
    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM r")
        fn = stmt.projections[0].expr
        assert isinstance(fn, FuncCall) and fn.star

    def test_count_distinct(self):
        fn = parse("SELECT count(DISTINCT a) FROM r").projections[0].expr
        assert fn.distinct

    def test_nested_call(self):
        fn = parse("SELECT round(avg(a), 2) FROM r").projections[0].expr
        assert fn.name == "round"
        assert isinstance(fn.args[0], FuncCall)

    def test_no_args(self):
        fn = parse("SELECT now() FROM r").projections[0].expr
        assert fn.args == ()


class TestClauses:
    def test_group_by_having(self):
        stmt = parse("SELECT k, count(*) FROM r GROUP BY k HAVING count(*) > 2")
        assert stmt.group_by == (ColumnRef("k"),)
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse("SELECT a FROM r ORDER BY a DESC, b ASC, c")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit(self):
        assert parse("SELECT a FROM r LIMIT 5").limit == 5

    def test_full_statement_roundtrip(self):
        sql = (
            "CONSUME SELECT k, count(*) AS n FROM r "
            "WHERE (v BETWEEN 1 AND 9) GROUP BY k "
            "HAVING (count(*) > 2) ORDER BY n DESC LIMIT 3"
        )
        stmt = parse(sql)
        assert parse(stmt.to_sql()) == stmt


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError, match="expected FROM"):
            parse("SELECT a")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT a FROM r extra nonsense")

    def test_star_inside_where(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM r WHERE *")

    def test_missing_expression(self):
        with pytest.raises(ParseError, match="expected an expression"):
            parse("SELECT FROM r")

    def test_error_mentions_offset(self):
        with pytest.raises(ParseError, match="offset"):
            parse("SELECT a FROM r WHERE")

    def test_not_without_in_or_between(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM r WHERE x NOT 5")

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM r LIMIT x")
