"""EXPLAIN ANALYZE: instrumented execution, plan-vs-actual rendering.

Golden-text tests pin the annotated output for every plan shape the
executor can produce — full scan, hash-index scan, join, aggregate +
sort, distinct + limit, CONSUME, DELETE — with timings stripped
(``render_analyzed`` keeps wall times out of the goldens via the same
regex the shell cannot rely on). A Hypothesis property then checks the
core invariant: the ``actual`` row count an analyzed statement reports
is exactly the row count the plain statement returns.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.query import QueryEngine, parse
from repro.query.ast_nodes import ExplainStmt
from repro.query.planner import plan_delete, plan_select, render_plan
from repro.storage import Catalog, Schema, Table

#: strips the per-node and total wall-time suffixes from analyzed lines
TIMING = re.compile(r" \| \d+\.\d{3} ms$|; \d+\.\d{3} ms$")


def build_engine(vectorized: bool = False) -> QueryEngine:
    """The conftest 10-row ``r`` plus a 2-row join target ``s``.

    ``vectorized=True`` builds ``r`` the way FungusDB does — numpy
    ``t``/``f`` vector columns with ``f`` as the freshness column — so
    the same statements run through the mask-compiled executor.
    """
    table = Table(
        Schema.of(t="timestamp", f="float", v="int", key="str"),
        name="r",
        vector_columns=("t", "f") if vectorized else (),
        freshness_column="f" if vectorized else None,
    )
    for i in range(10):
        table.append(
            {"t": float(i), "f": 1.0, "v": i * i, "key": "a" if i % 2 else "b"}
        )
    lookup = Table(Schema.of(k="str", label="str"), name="s")
    for k in ("a", "b"):
        lookup.append({"k": k, "label": k.upper()})
    catalog = Catalog()
    catalog.register(table)
    catalog.register(lookup)
    catalog.create_hash_index("r", "key")
    return QueryEngine(catalog)


def build_rotted_engine() -> QueryEngine:
    """A vectorized table whose last two rows sit in a rot spot."""
    table = Table(
        Schema.of(t="timestamp", f="float", v="int", key="str"),
        name="r",
        vector_columns=("t", "f"),
        freshness_column="f",
    )
    for i in range(10):
        table.append(
            {
                "t": float(i),
                "f": 0.5 if i >= 8 else 1.0,
                "v": i * i,
                "key": "a" if i % 2 else "b",
            }
        )
    catalog = Catalog()
    catalog.register(table)
    return QueryEngine(catalog)


@pytest.fixture
def engine() -> QueryEngine:
    return build_engine()


def analyzed(engine: QueryEngine, sql: str) -> list[str]:
    """Execute and return the annotated plan, wall times stripped."""
    result = engine.execute(sql)
    assert result.columns == ("explain",)
    return [TIMING.sub("", row[0]) for row in result.rows]


class TestGoldenOutput:
    def test_full_scan(self, engine):
        assert analyzed(engine, "EXPLAIN ANALYZE SELECT v FROM r WHERE v > 50") == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "scan r via full scan; residual (v > 50)",
            "  mode: row-fallback",
            "  rows: est 2, actual 2 (q=1.00) | in 10, index hits 0, "
            "rotted skipped 0, span pruned 0, predicate evals 10",
            "total: 2 row(s); worst misestimation q=1.00",
        ]

    def test_hash_index_scan(self, engine):
        assert analyzed(
            engine, "EXPLAIN ANALYZE SELECT key FROM r WHERE key = 'a'"
        ) == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "scan r via hash(key='a'); residual none",
            "  mode: row-fallback",
            "  rows: est 5, actual 5 (q=1.00) | in 5, index hits 5, "
            "rotted skipped 0, span pruned 0, predicate evals 0",
            "total: 5 row(s); worst misestimation q=1.00",
        ]

    def test_aggregate_and_sort(self, engine):
        assert analyzed(
            engine,
            "EXPLAIN ANALYZE SELECT key, count(*) AS n FROM r "
            "GROUP BY key ORDER BY key",
        ) == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "scan r via full scan; residual none",
            "  mode: row-fallback",
            "  rows: est 10, actual 10 (q=1.00) | in 10, index hits 0, "
            "rotted skipped 0, span pruned 0, predicate evals 0",
            "aggregate by ['key'] computing ['count(*)']",
            "  rows: est 2, actual 2 (q=1.00) | in 10",
            "sort by ['key ASC']",
            "  rows: est 2, actual 2 (q=1.00) | in 2",
            "total: 2 row(s); worst misestimation q=1.00",
        ]

    def test_join_with_residual(self, engine):
        assert analyzed(
            engine,
            "EXPLAIN ANALYZE SELECT r.v, s.label FROM r "
            "JOIN s ON r.key = s.k WHERE r.v > 10",
        ) == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "hash join r x s on r.key = s.k; residual (r.v > 10)",
            "  rows: est 6, actual 6 (q=1.00) | in 12, predicate evals 10",
            "total: 6 row(s); worst misestimation q=1.00",
        ]

    def test_distinct_and_limit_report_misestimation(self, engine):
        # the estimator does not model distinct's reduction, so the
        # distinct node is the honest q-error showcase
        assert analyzed(
            engine, "EXPLAIN ANALYZE SELECT DISTINCT key FROM r LIMIT 1"
        ) == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "scan r via full scan; residual none",
            "  mode: row-fallback",
            "  rows: est 10, actual 10 (q=1.00) | in 10, index hits 0, "
            "rotted skipped 0, span pruned 0, predicate evals 0",
            "distinct over output columns",
            "  rows: est 10, actual 2 (q=5.00) | in 10",
            "limit 1",
            "  rows: est 1, actual 1 (q=1.00) | in 2",
            "total: 1 row(s); worst misestimation q=5.00",
        ]

    def test_consume_executes_and_carries_verdict(self, engine):
        assert analyzed(
            engine, "EXPLAIN ANALYZE CONSUME SELECT v FROM r WHERE v > 50"
        ) == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "scan r via full scan; residual (v > 50)",
            "  mode: row-fallback",
            "  rows: est 2, actual 2 (q=1.00) | in 10, index hits 0, "
            "rotted skipped 0, span pruned 0, predicate evals 10",
            "CONSUME: matching base rows are deleted (Law 2)",
            "  rows consumed: est 2, actual 2 (q=1.00) | in 2",
            "Tier-B consume verdict: partial",
            "total: 2 row(s); worst misestimation q=1.00",
        ]
        # ANALYZE has Postgres semantics: the consume really happened
        assert len(engine.execute("SELECT v FROM r")) == 8

    def test_delete_executes(self, engine):
        assert analyzed(
            engine, "EXPLAIN ANALYZE DELETE FROM r WHERE key = 'b'"
        ) == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "scan r via hash(key='b'); residual none",
            "  mode: row-fallback",
            "DELETE: matching base rows are removed (no distillation)",
            "  rows consumed: est 5, actual 5 (q=1.00) | in 5, index hits 5, "
            "rotted skipped 0, span pruned 0, predicate evals 0",
            "total: 1 row(s); worst misestimation q=1.00",
        ]
        assert len(engine.execute("SELECT v FROM r")) == 5


class TestVectorizedPlanGoldens:
    """Filter reordering, span pruning, and mode labels in EXPLAIN."""

    def test_filters_reorder_by_selectivity(self):
        """The selective freshness conjunct is hoisted ahead of v > 50."""
        engine = build_rotted_engine()
        result = engine.execute("EXPLAIN SELECT v FROM r WHERE v > 50 AND f < 0.9")
        assert [row[0] for row in result.rows] == [
            "scan r via full scan; residual ((f < 0.9) AND (v > 50))",
            "  mode: vectorized",
            "  filters: (f < 0.9) [sel 0.20] -> (v > 50) [sel 0.22]",
            "  prune: rot spans of f only ((f < 0.9) rules out f = 1.0)",
        ]

    def test_span_pruning_in_analyze(self):
        """Pruning charges only the rot-spot footprint: 8 rows skipped
        before any column is touched, 2x2 predicate evals, est capped
        by the surviving span footprint."""
        engine = build_rotted_engine()
        assert analyzed(
            engine, "EXPLAIN ANALYZE SELECT v FROM r WHERE f < 0.9 AND v >= 0"
        ) == [
            "EXPLAIN ANALYZE (plan vs. actual)",
            "scan r via full scan; residual ((f < 0.9) AND (v >= 0))",
            "  mode: vectorized",
            "  filters: (f < 0.9) [sel 0.20] -> (v >= 0) [sel 1.00]",
            "  prune: rot spans of f only ((f < 0.9) rules out f = 1.0)",
            "  rows: est 2, actual 2 (q=1.00) | in 2, index hits 0, "
            "rotted skipped 0, span pruned 8, predicate evals 4",
            "total: 2 row(s); worst misestimation q=1.00",
        ]

    def test_hybrid_mode_for_string_conjunct(self):
        """A string conjunct cannot mask-compile; the scan goes hybrid."""
        engine = build_rotted_engine()
        result = engine.execute(
            "EXPLAIN SELECT v FROM r WHERE v > 50 AND key = 'a'"
        )
        assert [row[0] for row in result.rows] == [
            "scan r via full scan; residual ((v > 50) AND (key = 'a'))",
            "  mode: hybrid",
            "  filters: (v > 50) [sel 0.22] -> (key = 'a') [sel 0.50]",
        ]


class TestPlainExplainStillDescribes:
    def test_plain_explain_does_not_execute(self, engine):
        engine.execute("EXPLAIN DELETE FROM r WHERE key = 'b'")
        assert len(engine.execute("SELECT v FROM r")) == 10

    def test_render_plan_delete_shape(self, engine):
        plan = plan_delete(parse("DELETE FROM r WHERE v > 50"), engine.catalog)
        assert render_plan(plan) == [
            "scan r via full scan; residual (v > 50)",
            "  mode: row-fallback",
            "DELETE: matching base rows are removed (no distillation)",
        ]

    def test_render_plan_consume_shape(self, engine):
        plan = plan_select(
            parse("CONSUME SELECT v FROM r WHERE v > 50"), engine.catalog
        )
        assert render_plan(plan) == [
            "scan r via full scan; residual (v > 50)",
            "  mode: row-fallback",
            "CONSUME: matching base rows are deleted (Law 2)",
        ]

    def test_render_plan_join_residual(self, engine):
        plan = plan_select(
            parse("SELECT r.v FROM r JOIN s ON r.key = s.k WHERE r.v > 10"),
            engine.catalog,
        )
        assert render_plan(plan) == [
            "hash join r x s on r.key = s.k; residual (r.v > 10)",
        ]


class TestParserRules:
    def test_explain_analyze_insert_rejected(self, engine):
        with pytest.raises(ParseError, match="EXPLAIN supports only"):
            engine.execute("EXPLAIN ANALYZE INSERT INTO r (v) VALUES (1)")

    def test_analyze_is_a_soft_keyword(self):
        # a column named "analyze" must stay selectable
        stmt = parse("SELECT analyze FROM r")
        assert stmt.projections[0].expr.name == "analyze"

    def test_analyze_flag_round_trip(self):
        stmt = parse("EXPLAIN ANALYZE SELECT v FROM r")
        assert isinstance(stmt, ExplainStmt) and stmt.analyze
        plain = parse("EXPLAIN SELECT v FROM r")
        assert isinstance(plain, ExplainStmt) and not plain.analyze


# -- property: analyzed actuals equal plain-execution row counts --------

predicates = st.one_of(
    st.just(None),
    st.tuples(
        st.sampled_from(["v", "t"]),
        st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        st.integers(min_value=-5, max_value=90),
    ),
)


@given(
    predicate=predicates,
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=12)),
    distinct=st.booleans(),
    vectorized=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_analyzed_actual_matches_plain_row_count(
    predicate, limit, distinct, vectorized
):
    """Holds on the masked (vectorized) paths and the row fallback alike."""
    sql = "SELECT key FROM r" if not distinct else "SELECT DISTINCT key FROM r"
    if predicate is not None:
        column, op, value = predicate
        sql += f" WHERE {column} {op} {value}"
    if limit is not None:
        sql += f" LIMIT {limit}"
    engine = build_engine(vectorized)
    expected = len(engine.execute(sql))
    lines = analyzed(engine, f"EXPLAIN ANALYZE {sql}")
    total = lines[-1]
    match = re.match(r"total: (\d+) row\(s\)", total)
    assert match is not None, total
    assert int(match.group(1)) == expected
