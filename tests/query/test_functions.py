"""Tests for repro.query.functions."""

import math

import pytest

from repro.errors import ExecutionError
from repro.query.functions import (
    SCALAR_FUNCTIONS,
    is_aggregate,
    make_aggregate,
)


class TestScalars:
    def test_null_propagation(self):
        for name in ("abs", "upper", "length", "sqrt", "round"):
            assert SCALAR_FUNCTIONS[name](None) is None

    def test_round_with_digits(self):
        assert SCALAR_FUNCTIONS["round"](3.14159, 2) == 3.14

    def test_coalesce(self):
        assert SCALAR_FUNCTIONS["coalesce"](None, None, 3) == 3
        assert SCALAR_FUNCTIONS["coalesce"](None, None) is None

    def test_clamp(self):
        assert SCALAR_FUNCTIONS["clamp"](5, 0, 3) == 3
        assert SCALAR_FUNCTIONS["clamp"](-1, 0, 3) == 0

    def test_clamp_bad_range(self):
        with pytest.raises(ExecutionError):
            SCALAR_FUNCTIONS["clamp"](1, 3, 0)

    def test_string_functions(self):
        assert SCALAR_FUNCTIONS["upper"]("ab") == "AB"
        assert SCALAR_FUNCTIONS["lower"]("AB") == "ab"
        assert SCALAR_FUNCTIONS["length"]("abc") == 3

    def test_math_functions(self):
        assert SCALAR_FUNCTIONS["sqrt"](9) == 3.0
        assert SCALAR_FUNCTIONS["exp"](0) == 1.0
        assert SCALAR_FUNCTIONS["ln"](math.e) == pytest.approx(1.0)
        assert SCALAR_FUNCTIONS["floor"](1.7) == 1
        assert SCALAR_FUNCTIONS["ceil"](1.2) == 2


class TestAggregates:
    def feed(self, agg, values):
        for value in values:
            agg.add(value)
        return agg.result()

    def test_is_aggregate(self):
        assert is_aggregate("count")
        assert is_aggregate("stddev")
        assert not is_aggregate("upper")

    def test_count_star_counts_everything(self):
        agg = make_aggregate("count", star=True)
        assert self.feed(agg, [1, None, "x"]) == 3

    def test_count_skips_nulls(self):
        agg = make_aggregate("count")
        assert self.feed(agg, [1, None, 2]) == 2

    def test_count_distinct(self):
        agg = make_aggregate("count", distinct=True)
        assert self.feed(agg, [1, 1, 2, None, 2]) == 2

    def test_distinct_only_for_count(self):
        with pytest.raises(ExecutionError, match="DISTINCT"):
            make_aggregate("sum", distinct=True)

    def test_sum_empty_is_null(self):
        assert make_aggregate("sum").result() is None

    def test_sum(self):
        assert self.feed(make_aggregate("sum"), [1, 2, None, 3]) == 6

    def test_sum_rejects_strings(self):
        with pytest.raises(ExecutionError):
            make_aggregate("sum").add("x")

    def test_avg(self):
        assert self.feed(make_aggregate("avg"), [1, 2, 3]) == 2.0

    def test_avg_empty_is_null(self):
        assert make_aggregate("avg").result() is None

    def test_min_max(self):
        assert self.feed(make_aggregate("min"), [3, 1, 2]) == 1
        assert self.feed(make_aggregate("max"), [3, 1, 2]) == 3

    def test_min_max_work_on_strings(self):
        assert self.feed(make_aggregate("min"), ["b", "a"]) == "a"

    def test_stddev(self):
        result = self.feed(make_aggregate("stddev"), [2, 4, 4, 4, 5, 5, 7, 9])
        assert result == pytest.approx(2.138, abs=1e-3)

    def test_stddev_below_two_is_null(self):
        assert self.feed(make_aggregate("stddev"), [5]) is None

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError, match="unknown aggregate"):
            make_aggregate("median")
