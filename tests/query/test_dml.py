"""Tests for INSERT INTO / DELETE FROM."""

import pytest

from repro.errors import CatalogError, ParseError, PlanError
from repro.query import QueryEngine, parse
from repro.query.ast_nodes import DeleteStmt, InsertStmt
from repro.storage import Schema


@pytest.fixture
def engine(catalog):
    return QueryEngine(catalog)


class TestParsing:
    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO r (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 1

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO r VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3
        assert stmt.columns == ()

    def test_insert_roundtrip(self):
        sql = "INSERT INTO r (a, b) VALUES (1, 'x'), (2, 'y')"
        stmt = parse(sql)
        assert parse(stmt.to_sql()) == stmt

    def test_delete_with_where(self):
        stmt = parse("DELETE FROM r WHERE v > 3")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where is not None

    def test_delete_without_where(self):
        assert parse("DELETE FROM r").where is None

    def test_delete_roundtrip(self):
        stmt = parse("DELETE FROM r WHERE (v > 3)")
        assert parse(stmt.to_sql()) == stmt

    def test_insert_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO r VALUES (1) nonsense")

    def test_delete_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("DELETE FROM r WHERE v = 1 LIMIT 2")


class TestInsertExecution:
    def test_insert_positional(self, engine, catalog):
        res = engine.execute("INSERT INTO r VALUES (10.5, 1.0, 7, 'z')")
        assert res.rows == [(1,)]
        assert len(catalog.table("r")) == 11

    def test_insert_named_columns_subset_fails_without_nullable(self, engine):
        # t/f/v/key are all non-nullable in the fixture schema
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            engine.execute("INSERT INTO r (v) VALUES (1)")

    def test_insert_constant_expressions(self, engine, catalog):
        engine.execute("INSERT INTO r VALUES (2 * 5, 1.0 - 0.5, 3 + 4, upper('k'))")
        row = catalog.table("r").row_dict(10)
        assert row == {"t": 10.0, "f": 0.5, "v": 7, "key": "K"}

    def test_insert_rejects_column_refs(self, engine):
        with pytest.raises(PlanError, match="constants"):
            engine.execute("INSERT INTO r VALUES (t, 1.0, 1, 'a')")

    def test_insert_rejects_aggregates(self, engine):
        with pytest.raises(PlanError, match="aggregates"):
            engine.execute("INSERT INTO r VALUES (count(*), 1.0, 1, 'a')")

    def test_insert_unknown_table(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("INSERT INTO nope VALUES (1)")

    def test_insert_unknown_column(self, engine):
        with pytest.raises(PlanError, match="no column"):
            engine.execute("INSERT INTO r (zzz) VALUES (1)")

    def test_insert_duplicate_columns(self, engine):
        with pytest.raises(PlanError, match="duplicate"):
            engine.execute("INSERT INTO r (v, v) VALUES (1, 2)")

    def test_insert_arity_mismatch(self, engine):
        with pytest.raises(PlanError, match="values for"):
            engine.execute("INSERT INTO r (v, key) VALUES (1)")

    def test_inserted_rows_visible_to_select(self, engine):
        engine.execute("INSERT INTO r VALUES (20.0, 1.0, 999, 'new')")
        assert engine.execute("SELECT count(*) FROM r WHERE v = 999").scalar() == 1

    def test_indexes_track_sql_inserts(self, engine, catalog):
        catalog.create_hash_index("r", "key")
        engine.execute("INSERT INTO r VALUES (20.0, 1.0, 999, 'idxkey')")
        assert engine.execute("SELECT v FROM r WHERE key = 'idxkey'").scalar() == 999


class TestDeleteExecution:
    def test_delete_matching(self, engine, catalog):
        res = engine.execute("DELETE FROM r WHERE v > 50")
        assert res.rows == [(2,)]
        assert len(catalog.table("r")) == 8

    def test_delete_all(self, engine, catalog):
        assert engine.execute("DELETE FROM r").rows == [(10,)]
        assert len(catalog.table("r")) == 0

    def test_delete_nothing(self, engine, catalog):
        assert engine.execute("DELETE FROM r WHERE v > 1000").rows == [(0,)]
        assert len(catalog.table("r")) == 10

    def test_delete_uses_index(self, engine, catalog):
        catalog.create_sorted_index("r", "t")
        res = engine.execute("DELETE FROM r WHERE t >= 8")
        assert res.rows == [(2,)]
        assert res.stats.used_index is not None

    def test_delete_rejects_aggregates(self, engine):
        with pytest.raises(PlanError, match="aggregates"):
            engine.execute("DELETE FROM r WHERE count(*) > 1")

    def test_delete_unknown_column(self, engine):
        with pytest.raises(PlanError, match="unknown column"):
            engine.execute("DELETE FROM r WHERE zzz = 1")


class TestFungusDbIntegration:
    def test_insert_stamps_t_and_f(self, db):
        from repro.storage import Schema as S

        db.create_table("r", S.of(v="int", k="str"))
        db.tick(4)
        db.query("INSERT INTO r (v, k) VALUES (1, 'a')")
        row = db.table("r").rows()[0]
        assert row["t"] == 4.0 and row["f"] == 1.0

    def test_bare_insert_targets_attributes(self, db):
        from repro.storage import Schema as S

        db.create_table("r", S.of(v="int", k="str"))
        db.query("INSERT INTO r VALUES (7, 'x'), (8, 'y')")
        assert db.extent("r") == 2

    def test_delete_is_not_consume(self, db):
        from repro.storage import Schema as S

        db.create_table("r", S.of(v="int"))
        db.query("INSERT INTO r VALUES (1), (2)")
        db.query("DELETE FROM r WHERE v = 1")
        assert db.extent("r") == 1
        assert db.summaries("r") == []  # no distillation on plain DELETE

    def test_cli_runs_dml(self):
        from repro.cli import FungusShell

        shell = FungusShell(seed=1)
        shell.execute_line("create r v:int")
        out = shell.execute_line("INSERT INTO r VALUES (5), (6)")
        assert "inserted" in out
        out = shell.execute_line("DELETE FROM r WHERE v = 5")
        assert "deleted" in out
        assert shell.db.extent("r") == 1
