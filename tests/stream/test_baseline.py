"""Tests for repro.stream.baseline."""

import pytest

from repro.errors import StreamError
from repro.stream import StreamElement, WindowedRetentionBaseline


def el(t, **payload):
    return StreamElement(float(t), payload)


class TestIngest:
    def test_window_positive(self):
        with pytest.raises(StreamError):
            WindowedRetentionBaseline(0)

    def test_retains_exactly_window(self):
        b = WindowedRetentionBaseline(10.0)
        for i in range(30):
            b.ingest(el(i, v=i))
        # elements with t <= now-window = 19 are evicted
        assert b.oldest_timestamp() == 20.0
        assert len(b) == 10
        assert b.total_ingested == 30
        assert b.total_evicted == 20

    def test_out_of_order_rejected(self):
        b = WindowedRetentionBaseline(10.0)
        b.ingest(el(5))
        with pytest.raises(StreamError):
            b.ingest(el(4))

    def test_advance_evicts_without_ingest(self):
        b = WindowedRetentionBaseline(10.0)
        b.ingest(el(0, v=1))
        b.advance(15.0)
        assert len(b) == 0
        assert b.now == 15.0

    def test_advance_backwards_rejected(self):
        b = WindowedRetentionBaseline(10.0)
        b.ingest(el(5))
        with pytest.raises(StreamError):
            b.advance(4.0)


class TestQueries:
    @pytest.fixture
    def filled(self):
        b = WindowedRetentionBaseline(100.0)
        for i in range(10):
            b.ingest(el(i, v=i, key="a" if i % 2 else "b"))
        return b

    def test_count(self, filled):
        assert filled.count() == 10
        assert filled.count(lambda e: e.value("key") == "a") == 5

    def test_mean(self, filled):
        assert filled.mean("v") == pytest.approx(4.5)

    def test_mean_missing_key(self, filled):
        assert filled.mean("nope") is None

    def test_select_ordered(self, filled):
        selected = filled.select(lambda e: e.value("v") >= 8)
        assert [e.value("v") for e in selected] == [8, 9]

    def test_snapshot_values(self, filled):
        assert filled.snapshot_values("v") == list(range(10))

    def test_memory_elements(self, filled):
        assert filled.memory_elements() == 10


class TestCoverage:
    def test_full_coverage_inside_window(self):
        b = WindowedRetentionBaseline(100.0)
        b.ingest(el(50))
        assert b.coverage(0.0) == 1.0

    def test_partial_coverage(self):
        b = WindowedRetentionBaseline(10.0)
        b.ingest(el(100))
        assert b.coverage(0.0) == pytest.approx(0.1)

    def test_coverage_before_any_data(self):
        assert WindowedRetentionBaseline(10.0).coverage(0.0) == 1.0
