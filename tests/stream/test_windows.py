"""Tests for repro.stream.windows."""

import pytest

from repro.errors import StreamError
from repro.stream import SessionWindows, SlidingWindows, TumblingWindows, Window


class TestWindow:
    def test_empty_rejected(self):
        with pytest.raises(StreamError):
            Window(5.0, 5.0)

    def test_contains_half_open(self):
        w = Window(0.0, 10.0)
        assert w.contains(0.0)
        assert w.contains(9.999)
        assert not w.contains(10.0)

    def test_length(self):
        assert Window(2.0, 5.0).length == 3.0

    def test_ordering(self):
        assert Window(0.0, 5.0) < Window(5.0, 10.0)


class TestTumbling:
    def test_size_positive(self):
        with pytest.raises(StreamError):
            TumblingWindows(0)

    def test_single_assignment(self):
        windows = TumblingWindows(10.0).assign(25.0)
        assert windows == [Window(20.0, 30.0)]

    def test_boundary_goes_to_next(self):
        assert TumblingWindows(10.0).assign(20.0) == [Window(20.0, 30.0)]


class TestSliding:
    def test_validation(self):
        with pytest.raises(StreamError):
            SlidingWindows(0, 1)
        with pytest.raises(StreamError):
            SlidingWindows(10, 20)  # slide > size drops events

    def test_overlap_count(self):
        windows = SlidingWindows(10.0, 5.0).assign(12.0)
        assert windows == [Window(5.0, 15.0), Window(10.0, 20.0)]

    def test_every_window_contains_timestamp(self):
        for t in (0.0, 3.3, 7.5, 10.0, 12.9):
            for w in SlidingWindows(10.0, 2.5).assign(t):
                assert w.contains(t)

    def test_slide_equals_size_is_tumbling(self):
        assert SlidingWindows(10.0, 10.0).assign(12.0) == [Window(10.0, 20.0)]


class TestSessions:
    def test_gap_positive(self):
        with pytest.raises(StreamError):
            SessionWindows(0)

    def test_session_extends_within_gap(self):
        ses = SessionWindows(5.0)
        assert ses.observe("k", 1.0) is None
        assert ses.observe("k", 4.0) is None
        closed = ses.observe("k", 20.0)
        assert closed == Window(1.0, 9.0)  # first..last+gap

    def test_per_key_isolation(self):
        ses = SessionWindows(5.0)
        ses.observe("a", 1.0)
        ses.observe("b", 100.0)
        assert ses.observe("a", 3.0) is None

    def test_out_of_order_rejected(self):
        ses = SessionWindows(5.0)
        ses.observe("k", 10.0)
        with pytest.raises(StreamError):
            ses.observe("k", 5.0)

    def test_flush_closes_open_sessions(self):
        ses = SessionWindows(5.0)
        ses.observe("a", 1.0)
        ses.observe("b", 2.0)
        flushed = ses.flush()
        assert len(flushed) == 2
        assert ses.flush() == []
