"""Tests for the windows_between helper."""

from repro.stream.windows import SlidingWindows, TumblingWindows, windows_between


class TestWindowsBetween:
    def test_tumbling_cover_range(self):
        windows = sorted(windows_between(TumblingWindows(10.0), 0.0, 35.0))
        assert [w.start for w in windows] == [0.0, 10.0, 20.0, 30.0]

    def test_tumbling_partial_overlap_included(self):
        windows = sorted(windows_between(TumblingWindows(10.0), 5.0, 15.0))
        assert [w.start for w in windows] == [0.0, 10.0]

    def test_sliding_overlapping_set(self):
        windows = sorted(windows_between(SlidingWindows(10.0, 5.0), 0.0, 20.0))
        starts = [w.start for w in windows]
        assert starts[0] <= 0.0 - 5.0 or starts[0] == -5.0 or starts[0] <= 0.0
        # every window returned overlaps [0, 20)
        assert all(w.start < 20.0 and w.end > 0.0 for w in windows)

    def test_no_duplicates(self):
        windows = list(windows_between(SlidingWindows(10.0, 2.0), 0.0, 30.0))
        assert len(windows) == len(set(windows))

    def test_empty_range_yields_nothing(self):
        # [5, 5) overlaps no interval: every window must satisfy
        # start < end(range) which is impossible for an empty range
        windows = list(windows_between(TumblingWindows(10.0), 5.0, 5.0))
        assert windows == []
