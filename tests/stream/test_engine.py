"""Tests for repro.stream.engine."""

import pytest

from repro.errors import StreamError
from repro.stream import StreamElement, StreamPipeline, TumblingWindows
from repro.stream.windows import SlidingWindows


def elements(n, **payload_fn):
    return [StreamElement(float(i), {"i": i}) for i in range(n)]


class TestElement:
    def test_value_with_default(self):
        e = StreamElement(1.0, {"x": 5})
        assert e.value("x") == 5
        assert e.value("y", 0) == 0

    def test_with_payload_copies(self):
        e = StreamElement(1.0, {"x": 5})
        e2 = e.with_payload(y=6)
        assert e2.payload == {"x": 5, "y": 6}
        assert e.payload == {"x": 5}

    def test_ordering_by_timestamp(self):
        assert StreamElement(1.0) < StreamElement(2.0, {"any": "thing"})


class TestPipeline:
    def test_map_filter_sink(self):
        out = []
        pipe = (
            StreamPipeline()
            .filter(lambda e: e.value("i") % 2 == 0)
            .map(lambda e: e.with_payload(double=e.value("i") * 2))
            .sink(out.append)
        )
        pipe.push_all(elements(6))
        assert [e.value("double") for e in out] == [0, 4, 8]

    def test_map_must_return_element(self):
        pipe = StreamPipeline().map(lambda e: 42).sink(lambda x: None)
        with pytest.raises(StreamError, match="StreamElement"):
            pipe.push(StreamElement(0.0))

    def test_out_of_order_rejected(self):
        pipe = StreamPipeline().sink(lambda x: None)
        pipe.push(StreamElement(5.0))
        with pytest.raises(StreamError, match="out-of-order"):
            pipe.push(StreamElement(4.0))

    def test_equal_timestamps_allowed(self):
        out = []
        pipe = StreamPipeline().sink(out.append)
        pipe.push(StreamElement(5.0))
        pipe.push(StreamElement(5.0))
        assert len(out) == 2

    def test_elements_pushed_counter(self):
        pipe = StreamPipeline().sink(lambda x: None)
        pipe.push_all(elements(7))
        assert pipe.elements_pushed == 7


class TestWindowStage:
    def test_tumbling_counts(self):
        out = []
        pipe = (
            StreamPipeline()
            .key_by(lambda e: e.value("i") % 2)
            .window(TumblingWindows(4.0), aggregate=len)
            .sink(out.append)
        )
        pipe.push_all(elements(12))
        pipe.flush()
        # 3 full windows x 2 keys
        assert len(out) == 6
        assert all(count == 2 for _, _, count in out)

    def test_emission_waits_for_watermark(self):
        out = []
        pipe = (
            StreamPipeline().window(TumblingWindows(10.0), aggregate=len).sink(out.append)
        )
        pipe.push_all(elements(10))  # window [0,10) not yet closed at t=9
        assert out == []
        pipe.push(StreamElement(10.0))  # watermark crosses 10
        assert len(out) == 1
        assert out[0][2] == 10

    def test_flush_emits_open_windows(self):
        out = []
        pipe = (
            StreamPipeline().window(TumblingWindows(100.0), aggregate=len).sink(out.append)
        )
        pipe.push_all(elements(5))
        pipe.flush()
        assert len(out) == 1

    def test_sliding_duplicates_elements(self):
        out = []
        pipe = (
            StreamPipeline()
            .window(SlidingWindows(4.0, 2.0), aggregate=len)
            .sink(out.append)
        )
        pipe.push_all(elements(8))
        pipe.flush()
        total = sum(count for _, _, count in out)
        assert total == 16  # every element in exactly 2 windows

    def test_custom_aggregate(self):
        out = []
        pipe = (
            StreamPipeline()
            .window(TumblingWindows(5.0), aggregate=lambda es: sum(e.value("i") for e in es))
            .sink(out.append)
        )
        pipe.push_all(elements(10))
        pipe.flush()
        assert [v for _, _, v in out] == [10, 35]

    def test_chained_windows_rejected(self):
        pipe = (
            StreamPipeline()
            .window(TumblingWindows(5.0), aggregate=len)
            .window(TumblingWindows(10.0), aggregate=len)
        )
        with pytest.raises(StreamError, match="chained window"):
            pipe.push_all(elements(6))  # first window ripens mid-stream
