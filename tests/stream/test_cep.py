"""Tests for repro.stream.cep."""

import pytest

from repro.errors import StreamError
from repro.stream import Pattern, PatternMatcher, StreamElement


def el(t, **payload):
    return StreamElement(float(t), payload)


def spike_crash(within=10.0):
    return Pattern.sequence(
        ("spike", lambda e: e.value("v") > 10),
        ("crash", lambda e: e.value("v") < 0),
        within=within,
    )


class TestPatternValidation:
    def test_needs_steps(self):
        with pytest.raises(StreamError):
            Pattern((), within=5.0)

    def test_within_positive(self):
        with pytest.raises(StreamError):
            Pattern.sequence(("a", lambda e: True), within=0)

    def test_duplicate_names(self):
        with pytest.raises(StreamError):
            Pattern.sequence(("a", lambda e: True), ("a", lambda e: True), within=5)


class TestMatching:
    def test_simple_sequence(self):
        m = PatternMatcher(spike_crash())
        matches = m.push_all([el(0, v=20), el(1, v=5), el(2, v=-1)])
        assert len(matches) == 1
        match = matches[0]
        assert match.start_time == 0 and match.end_time == 2
        assert match.element("spike").value("v") == 20
        assert match.element("crash").value("v") == -1

    def test_unknown_binding(self):
        m = PatternMatcher(spike_crash())
        (match,) = m.push_all([el(0, v=20), el(1, v=-1)])
        with pytest.raises(KeyError):
            match.element("nope")

    def test_expiry(self):
        m = PatternMatcher(spike_crash(within=5.0))
        matches = m.push_all([el(0, v=20), el(6, v=-1)])
        assert matches == []
        assert m.runs_expired == 1

    def test_boundary_is_inclusive(self):
        m = PatternMatcher(spike_crash(within=5.0))
        matches = m.push_all([el(0, v=20), el(5, v=-1)])
        assert len(matches) == 1

    def test_overlapping_matches_all_reported(self):
        m = PatternMatcher(spike_crash())
        matches = m.push_all([el(0, v=20), el(1, v=30), el(2, v=-1)])
        assert len(matches) == 2  # both spikes pair with the crash

    def test_single_step_pattern(self):
        pat = Pattern.sequence(("any", lambda e: e.value("v") == 1), within=5)
        m = PatternMatcher(pat)
        assert len(m.push_all([el(0, v=1), el(1, v=2), el(2, v=1)])) == 2

    def test_three_step_sequence(self):
        pat = Pattern.sequence(
            ("a", lambda e: e.value("v") == 1),
            ("b", lambda e: e.value("v") == 2),
            ("c", lambda e: e.value("v") == 3),
            within=10,
        )
        m = PatternMatcher(pat)
        matches = m.push_all([el(0, v=1), el(1, v=2), el(2, v=9), el(3, v=3)])
        assert len(matches) == 1
        assert [name for name, _ in matches[0].bindings] == ["a", "b", "c"]

    def test_element_can_extend_and_seed(self):
        # an element satisfying both steps extends an existing run AND
        # starts a new one (skip-till-any-match)
        pat = Pattern.sequence(
            ("first", lambda e: e.value("v") > 0),
            ("second", lambda e: e.value("v") > 0),
            within=10,
        )
        m = PatternMatcher(pat)
        matches = m.push_all([el(0, v=1), el(1, v=1), el(2, v=1)])
        assert len(matches) == 3  # (0,1), (0,2), (1,2)

    def test_active_run_cap(self):
        pat = Pattern.sequence(
            ("a", lambda e: True), ("b", lambda e: False), within=1e9
        )
        m = PatternMatcher(pat, max_runs=10)
        m.push_all([el(i, v=1) for i in range(50)])
        assert m.active_runs == 10
        assert m.runs_expired == 40

    def test_counters(self):
        m = PatternMatcher(spike_crash())
        m.push_all([el(0, v=20), el(1, v=-5)])
        assert m.matches_emitted == 1
