"""Tests for repro.storage.table."""

import pytest

from repro.errors import SchemaError, StorageError
from repro.storage import RowSet, Table


@pytest.fixture
def empty(schema):
    return Table(schema, name="r")


class TestAppend:
    def test_rids_are_sequential(self, empty):
        rids = [empty.append((float(i), 1.0, i, "k")) for i in range(3)]
        assert rids == [0, 1, 2]

    def test_append_coerces(self, empty):
        rid = empty.append({"t": 1, "f": 1, "v": 2, "key": "k"})
        assert empty.row(rid) == (1.0, 1.0, 2, "k")

    def test_append_rejects_bad_type(self, empty):
        with pytest.raises(SchemaError):
            empty.append({"t": 1.0, "f": 1.0, "v": "nope", "key": "k"})

    def test_append_many_returns_span(self, empty):
        rows = empty.append_many([(0.0, 1.0, 1, "a"), (1.0, 1.0, 2, "b")])
        assert rows == RowSet([0, 1])

    def test_len_counts_live(self, table):
        assert len(table) == 10
        assert table.allocated == 10


class TestDelete:
    def test_delete_reduces_live(self, table):
        table.delete(3)
        assert len(table) == 9
        assert table.tombstones == 1
        assert not table.is_live(3)

    def test_delete_twice_fails(self, table):
        table.delete(3)
        with pytest.raises(StorageError, match="deleted"):
            table.delete(3)

    def test_delete_out_of_range(self, table):
        with pytest.raises(StorageError, match="out of range"):
            table.delete(99)

    def test_delete_rows(self, table):
        table.delete_rows(RowSet([1, 2, 3]))
        assert len(table) == 7

    def test_read_deleted_fails(self, table):
        table.delete(3)
        with pytest.raises(StorageError):
            table.row(3)


class TestReadsAndUpdate:
    def test_value(self, table):
        assert table.value(4, "v") == 16

    def test_row_dict(self, table):
        assert table.row_dict(2) == {"t": 2.0, "f": 1.0, "v": 4, "key": "b"}

    def test_update(self, table):
        table.update(2, "f", 0.5)
        assert table.value(2, "f") == 0.5

    def test_update_coerces_type(self, table):
        with pytest.raises(SchemaError):
            table.update(2, "v", "oops")

    def test_column_values_live_only(self, table):
        table.delete(0)
        values = table.column_values("v")
        assert values[0] == 1 and len(values) == 9

    def test_column_values_subset(self, table):
        assert table.column_values("v", RowSet([2, 4])) == [4, 16]

    def test_column_values_subset_rejects_dead(self, table):
        table.delete(2)
        with pytest.raises(StorageError):
            table.column_values("v", RowSet([2]))

    def test_scan_with_predicate(self, table):
        rows = table.scan(lambda r: r["v"] > 50)
        assert rows == RowSet([8, 9])

    def test_scan_without_predicate(self, table):
        assert table.scan() == RowSet(range(10))

    def test_to_rows(self, table):
        rows = table.to_rows()
        assert len(rows) == 10
        assert rows[3]["v"] == 9


class TestNeighbours:
    def test_basic(self, table):
        assert table.neighbours(5) == (4, 6)

    def test_skips_tombstones(self, table):
        table.delete(4)
        table.delete(6)
        assert table.neighbours(5) == (3, 7)

    def test_neighbours_of_dead_row(self, table):
        table.delete(5)
        assert table.neighbours(5) == (4, 6)

    def test_edges(self, table):
        assert table.prev_live(0) is None
        assert table.next_live(9) is None

    def test_out_of_range(self, table):
        with pytest.raises(StorageError):
            table.prev_live(50)


class TestCompaction:
    def test_noop_when_no_tombstones(self, table):
        assert table.compact() == {}
        assert table.generation == 0

    def test_remap_preserves_order(self, table):
        table.delete(0)
        table.delete(5)
        remap = table.compact()
        assert remap[1] == 0
        assert remap[9] == 7
        assert len(table) == 8
        assert table.tombstones == 0
        assert table.generation == 1

    def test_values_survive_compaction(self, table):
        table.delete(0)
        remap = table.compact()
        assert table.value(remap[7], "v") == 49


class TestObservers:
    class Recorder:
        def __init__(self):
            self.events = []

        def on_append(self, rid, values):
            self.events.append(("append", rid))

        def on_delete(self, rid, values):
            self.events.append(("delete", rid, values[2]))

        def on_compact(self, remap):
            self.events.append(("compact", dict(remap)))

    def test_observer_sees_mutations(self, table):
        rec = self.Recorder()
        table.add_observer(rec)
        rid = table.append((10.0, 1.0, 100, "a"))
        table.delete(rid)
        table.compact()
        assert ("append", rid) in rec.events
        assert ("delete", rid, 100) in rec.events
        assert rec.events[-1][0] == "compact"

    def test_remove_observer(self, table):
        rec = self.Recorder()
        table.add_observer(rec)
        table.remove_observer(rec)
        table.append((10.0, 1.0, 100, "a"))
        assert rec.events == []

    def test_remove_absent_observer_is_noop(self, table):
        table.remove_observer(self.Recorder())
