"""Tests for repro.storage.schema."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import ColumnDef, DataType, Schema


class TestDataType:
    def test_coerce_int(self):
        assert DataType.INT.coerce(5) == 5

    def test_coerce_int_rejects_bool(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce(True)

    def test_coerce_int_rejects_float(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce(5.0)

    def test_coerce_float_widens_int(self):
        value = DataType.FLOAT.coerce(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_coerce_float_rejects_str(self):
        with pytest.raises(SchemaError):
            DataType.FLOAT.coerce("3.0")

    def test_coerce_timestamp_is_float(self):
        assert DataType.TIMESTAMP.coerce(7) == 7.0

    def test_coerce_str(self):
        assert DataType.STR.coerce("x") == "x"

    def test_coerce_str_rejects_int(self):
        with pytest.raises(SchemaError):
            DataType.STR.coerce(1)

    def test_coerce_bool(self):
        assert DataType.BOOL.coerce(True) is True

    def test_coerce_bool_rejects_int(self):
        with pytest.raises(SchemaError):
            DataType.BOOL.coerce(1)

    def test_coerce_none_passthrough(self):
        assert DataType.INT.coerce(None) is None

    def test_from_name_roundtrip(self):
        for dtype in DataType:
            assert DataType.from_name(dtype.value) is dtype

    def test_from_name_unknown(self):
        with pytest.raises(SchemaError, match="unknown data type"):
            DataType.from_name("decimal")

    def test_python_type(self):
        assert DataType.TIMESTAMP.python_type is float
        assert DataType.STR.python_type is str


class TestColumnDef:
    def test_invalid_identifier_rejected(self):
        with pytest.raises(SchemaError, match="identifier"):
            ColumnDef("bad name", DataType.INT)

    def test_non_nullable_rejects_none(self):
        with pytest.raises(SchemaError, match="not nullable"):
            ColumnDef("x", DataType.INT).coerce(None)

    def test_nullable_accepts_none(self):
        assert ColumnDef("x", DataType.INT, nullable=True).coerce(None) is None

    def test_dict_roundtrip(self):
        col = ColumnDef("x", DataType.FLOAT, nullable=True)
        assert ColumnDef.from_dict(col.to_dict()) == col


class TestSchema:
    def test_empty_rejected(self):
        with pytest.raises(SchemaError, match="at least one column"):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([ColumnDef("x", DataType.INT), ColumnDef("x", DataType.STR)])

    def test_names_in_order(self):
        schema = Schema.of(a="int", b="str", c="float")
        assert schema.names == ("a", "b", "c")

    def test_contains(self):
        schema = Schema.of(a="int")
        assert "a" in schema
        assert "z" not in schema

    def test_column_lookup(self):
        schema = Schema.of(a="int", b="str")
        assert schema.column("b").dtype is DataType.STR

    def test_column_unknown(self):
        with pytest.raises(SchemaError, match="unknown column"):
            Schema.of(a="int").column("b")

    def test_index_of(self):
        schema = Schema.of(a="int", b="str")
        assert schema.index_of("b") == 1

    def test_coerce_row_mapping(self):
        schema = Schema.of(a="int", b="str")
        assert schema.coerce_row({"a": 1, "b": "x"}) == (1, "x")

    def test_coerce_row_mapping_extra_column(self):
        schema = Schema.of(a="int")
        with pytest.raises(SchemaError, match="unknown columns"):
            schema.coerce_row({"a": 1, "z": 2})

    def test_coerce_row_mapping_missing_non_nullable(self):
        schema = Schema.of(a="int", b="str")
        with pytest.raises(SchemaError, match="not nullable"):
            schema.coerce_row({"a": 1})

    def test_coerce_row_mapping_missing_nullable_defaults_none(self):
        schema = Schema([ColumnDef("a", DataType.INT), ColumnDef("b", DataType.STR, nullable=True)])
        assert schema.coerce_row({"a": 1}) == (1, None)

    def test_coerce_row_positional(self):
        schema = Schema.of(a="int", b="str")
        assert schema.coerce_row((1, "x")) == (1, "x")

    def test_coerce_row_positional_wrong_arity(self):
        schema = Schema.of(a="int", b="str")
        with pytest.raises(SchemaError, match="2 columns"):
            schema.coerce_row((1,))

    def test_extend(self):
        schema = Schema.of(a="int").extend(ColumnDef("b", DataType.STR))
        assert schema.names == ("a", "b")

    def test_project(self):
        schema = Schema.of(a="int", b="str", c="float")
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_dict_roundtrip(self):
        schema = Schema.of(a="int", b="str", c="timestamp")
        assert Schema.from_dict(schema.to_dict()) == schema

    def test_of_with_datatype_values(self):
        schema = Schema.of(a=DataType.BOOL)
        assert schema.column("a").dtype is DataType.BOOL

    def test_iteration(self):
        schema = Schema.of(a="int", b="str")
        assert [c.name for c in schema] == ["a", "b"]
        assert len(schema) == 2
