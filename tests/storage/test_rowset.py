"""Tests for repro.storage.rowset."""

import pytest

from repro.errors import StorageError
from repro.storage.rowset import RowSet


class TestConstruction:
    def test_sorted_and_deduplicated(self):
        assert RowSet([3, 1, 2, 1]).rows == (1, 2, 3)

    def test_empty(self):
        assert len(RowSet.empty()) == 0
        assert not RowSet.empty()

    def test_negative_rejected(self):
        with pytest.raises(StorageError, match="invalid row id"):
            RowSet([-1])

    def test_bool_rejected(self):
        with pytest.raises(StorageError, match="invalid row id"):
            RowSet([True])

    def test_span(self):
        assert RowSet.span(2, 5).rows == (2, 3, 4)

    def test_span_empty(self):
        assert len(RowSet.span(3, 3)) == 0

    def test_span_invalid(self):
        with pytest.raises(StorageError, match="invalid span"):
            RowSet.span(5, 2)


class TestAlgebra:
    def test_union(self):
        assert (RowSet([1, 2]) | RowSet([2, 3])).rows == (1, 2, 3)

    def test_intersection(self):
        assert (RowSet([1, 2, 3]) & RowSet([2, 3, 4])).rows == (2, 3)

    def test_difference(self):
        assert (RowSet([1, 2, 3]) - RowSet([2])).rows == (1, 3)

    def test_isdisjoint(self):
        assert RowSet([1]).isdisjoint(RowSet([2]))
        assert not RowSet([1, 2]).isdisjoint(RowSet([2]))

    def test_issubset(self):
        assert RowSet([1]).issubset(RowSet([1, 2]))
        assert not RowSet([1, 3]).issubset(RowSet([1, 2]))

    def test_contains(self):
        rs = RowSet([1, 5])
        assert 5 in rs
        assert 2 not in rs

    def test_equality_and_hash(self):
        assert RowSet([2, 1]) == RowSet([1, 2])
        assert hash(RowSet([1, 2])) == hash(RowSet([2, 1]))

    def test_equality_with_other_type(self):
        assert RowSet([1]) != [1]


class TestSpans:
    def test_empty(self):
        assert RowSet().spans() == []

    def test_single_run(self):
        assert RowSet([1, 2, 3]).spans() == [(1, 4)]

    def test_multiple_runs(self):
        assert RowSet([0, 1, 5, 6, 7, 9]).spans() == [(0, 2), (5, 8), (9, 10)]

    def test_singletons(self):
        assert RowSet([2, 4, 6]).spans() == [(2, 3), (4, 5), (6, 7)]


class TestRepr:
    def test_small(self):
        assert repr(RowSet([1, 2])) == "RowSet([1, 2])"

    def test_large_is_truncated(self):
        text = repr(RowSet(range(100)))
        assert "100 rows" in text
