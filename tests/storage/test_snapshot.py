"""Tests for repro.storage.snapshot."""

import json

import pytest

from repro.errors import SnapshotError
from repro.storage import Table, load_table, save_table


class TestRoundTrip:
    def test_save_and_load(self, table, tmp_path):
        path = tmp_path / "r.jsonl"
        written = save_table(table, path)
        assert written == 10
        loaded = load_table(path)
        assert loaded.name == "r"
        assert loaded.schema == table.schema
        assert loaded.to_rows() == table.to_rows()

    def test_tombstones_not_persisted(self, table, tmp_path):
        table.delete(0)
        table.delete(5)
        path = tmp_path / "r.jsonl"
        assert save_table(table, path) == 8
        loaded = load_table(path)
        assert len(loaded) == 8
        assert loaded.allocated == 8

    def test_empty_table(self, schema, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_table(Table(schema, name="e"), path)
        assert len(load_table(path)) == 0

    def test_overwrite_is_atomic_result(self, table, tmp_path):
        path = tmp_path / "r.jsonl"
        save_table(table, path)
        save_table(table, path)  # second write replaces cleanly
        assert len(load_table(path)) == 10
        assert not (tmp_path / "r.jsonl.tmp").exists()


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_table(tmp_path / "missing.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(SnapshotError, match="empty"):
            load_table(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(SnapshotError, match="corrupt header"):
            load_table(path)

    def test_header_without_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"table": "r"}) + "\n")
        with pytest.raises(SnapshotError, match="not a table header"):
            load_table(path)

    def test_wrong_version(self, tmp_path, schema):
        path = tmp_path / "bad.jsonl"
        header = {"format_version": 999, "table": "r", "schema": schema.to_dict()}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(SnapshotError, match="format version"):
            load_table(path)

    def test_corrupt_row(self, table, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_table(table, path)
        with open(path, "a") as fh:
            fh.write("{broken\n")
        with pytest.raises(SnapshotError, match="corrupt"):
            load_table(path)

    def test_non_array_row(self, table, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_table(table, path)
        with open(path, "a") as fh:
            fh.write('{"a": 1}\n')
        with pytest.raises(SnapshotError, match="not a row array"):
            load_table(path)

    def test_blank_lines_skipped(self, table, tmp_path):
        path = tmp_path / "r.jsonl"
        save_table(table, path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(load_table(path)) == 10


class TestRowCountGuard:
    """The header's row count catches truncation at a line boundary —
    a file that is perfectly valid JSONL, just missing its tail."""

    def test_header_records_row_count(self, table, tmp_path):
        path = tmp_path / "r.jsonl"
        save_table(table, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["rows"] == 10

    def test_missing_last_line_detected(self, table, tmp_path):
        path = tmp_path / "r.jsonl"
        save_table(table, path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]))
        with pytest.raises(SnapshotError, match="truncated"):
            load_table(path)

    def test_extra_appended_row_detected(self, table, tmp_path):
        path = tmp_path / "r.jsonl"
        save_table(table, path)
        lines = path.read_text().splitlines(keepends=True)
        with open(path, "a") as fh:
            fh.write(lines[-1])  # duplicate the final row
        with pytest.raises(SnapshotError, match="truncated"):
            load_table(path)

    def test_header_without_count_still_loads(self, table, tmp_path):
        """Older snapshots predate the ``rows`` field."""
        path = tmp_path / "r.jsonl"
        save_table(table, path)
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        del header["rows"]
        path.write_text(json.dumps(header) + "\n" + "".join(lines[1:]))
        assert len(load_table(path)) == 10
