"""Tests for repro.storage.stats."""

from repro.storage import Schema, Table, collect_stats
from repro.storage.schema import ColumnDef, DataType
from repro.storage.stats import estimate_bytes


class TestCollectStats:
    def test_basic(self, table):
        stats = collect_stats(table)
        assert stats.name == "r"
        assert stats.live_rows == 10
        assert stats.tombstones == 0
        v = stats.column("v")
        assert (v.min_value, v.max_value) == (0, 81)
        assert v.distinct == 10
        assert v.nulls == 0

    def test_live_only(self, table):
        table.delete(9)
        stats = collect_stats(table)
        assert stats.live_rows == 9
        assert stats.column("v").max_value == 64

    def test_nulls_counted(self):
        schema = Schema([ColumnDef("x", DataType.INT, nullable=True)])
        table = Table(schema)
        table.append((1,))
        table.append((None,))
        stats = collect_stats(table)
        assert stats.column("x").nulls == 1
        assert stats.column("x").distinct == 1

    def test_all_null_column_min_max_none(self):
        schema = Schema([ColumnDef("x", DataType.INT, nullable=True)])
        table = Table(schema)
        table.append((None,))
        col = collect_stats(table).column("x")
        assert col.min_value is None and col.max_value is None

    def test_column_unknown_raises(self, table):
        import pytest

        with pytest.raises(KeyError):
            collect_stats(table).column("zzz")

    def test_estimated_bytes_positive_and_grows(self, table):
        before = estimate_bytes(table)
        table.append((99.0, 1.0, 12345, "some longer string value"))
        assert estimate_bytes(table) > before > 0
