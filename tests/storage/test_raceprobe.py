"""The runtime thread-sanitizer probe: ownership, violations, fan-out."""

from __future__ import annotations

import threading

import pytest

from repro.core.db import FungusDB
from repro.fungi import LinearDecayFungus
from repro.storage.raceprobe import RaceProbe, RaceProbeError
from repro.storage.schema import Schema
from repro.storage.table import Table


def _table() -> Table:
    return Table(Schema.of(k="int", v="float"), name="t")


def _in_thread(fn) -> None:
    """Run ``fn`` on a fresh thread, re-raising anything it raised."""
    box: list[BaseException] = []

    def runner() -> None:
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box.append(exc)

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    if box:
        raise box[0]


class TestOwnership:
    def test_first_mutation_claims_the_calling_thread(self):
        table = _table()
        probe = RaceProbe()
        table.probe = probe
        assert probe.owner is None
        table.append({"k": 1, "v": 0.5})
        assert probe.owner == threading.get_ident()

    def test_same_thread_mutations_stay_silent(self):
        table = _table()
        table.probe = RaceProbe()
        rid = table.append({"k": 1, "v": 0.5})
        table.update(rid, "v", 0.25)
        table.delete(rid)
        table.compact()
        assert table.probe.violations == []

    def test_bind_rebinding_hands_ownership_over(self):
        table = _table()
        probe = RaceProbe()
        table.probe = probe
        table.append({"k": 1, "v": 0.5})
        _in_thread(probe.bind)
        with pytest.raises(RaceProbeError, match="append"):
            table.append({"k": 2, "v": 0.5})


class TestViolations:
    def test_cross_thread_mutation_raises_with_table_and_op(self):
        table = _table()
        probe = RaceProbe()
        table.probe = probe
        table.append({"k": 1, "v": 0.5})
        with pytest.raises(RaceProbeError, match=r"'t'.*delete"):
            _in_thread(lambda: table.delete(0))
        assert len(probe.violations) == 1
        assert probe.violations[0].op == "delete"

    def test_record_mode_collects_instead_of_raising(self):
        table = _table()
        probe = RaceProbe(mode="record")
        table.probe = probe
        table.append({"k": 1, "v": 0.5})
        _in_thread(lambda: table.append({"k": 2, "v": 0.5}))
        assert [v.op for v in probe.violations] == ["append"]
        assert "owned by" in probe.violations[0].format()

    def test_bulk_mutators_are_probed(self):
        table = _table()
        probe = RaceProbe(mode="record")
        table.probe = probe
        table.append_many([{"k": i, "v": 0.5} for i in range(4)])
        _in_thread(lambda: table.delete_many([0, 1]))
        _in_thread(lambda: table.write_rows("v", [2], [0.75]))
        assert [v.op for v in probe.violations] == ["delete_many", "write_rows"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            RaceProbe(mode="panic")


class TestDatabaseFanOut:
    def _db(self) -> FungusDB:
        db = FungusDB(seed=3)
        db.create_table(
            "r", Schema.of(k="int", v="int"), fungus=LinearDecayFungus(rate=0.1)
        )
        return db

    def test_enable_covers_existing_and_future_tables(self):
        db = self._db()
        probe = db.enable_race_probe()
        assert db.tables["r"].storage.probe is probe
        db.create_table("s", Schema.of(k="int", v="int"))
        assert db.tables["s"].storage.probe is probe

    def test_enable_is_idempotent(self):
        db = self._db()
        assert db.enable_race_probe() is db.enable_race_probe()

    def test_two_databases_get_independent_probes(self):
        """A replay db mutated on another thread must not trip the
        served db's probe — ownership is per-database."""
        served = self._db()
        replay = self._db()
        served.enable_race_probe()
        served.insert("r", {"k": 1, "v": 2})
        _in_thread(lambda: replay.insert("r", {"k": 1, "v": 2}))
        assert served.race_probe.violations == []

    def test_engine_mutation_off_owner_thread_raises(self):
        db = self._db()
        db.enable_race_probe()
        db.insert("r", {"k": 1, "v": 2})
        with pytest.raises(RaceProbeError):
            _in_thread(lambda: db.tick(1))

    def test_describe_shape(self):
        probe = RaceProbe()
        description = probe.describe()
        assert description["mode"] == "raise"
        assert description["violations"] == []
