"""Tests for repro.storage.catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage import Catalog, Schema


class TestTables:
    def test_create_and_lookup(self):
        catalog = Catalog()
        table = catalog.create_table("r", Schema.of(v="int"))
        assert catalog.table("r") is table
        assert "r" in catalog
        assert len(catalog) == 1

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create_table("r", Schema.of(v="int"))
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_table("r", Schema.of(v="int"))

    def test_register_existing(self, table):
        catalog = Catalog()
        catalog.register(table)
        assert catalog.table("r") is table

    def test_register_duplicate_rejected(self, table):
        catalog = Catalog()
        catalog.register(table)
        with pytest.raises(CatalogError):
            catalog.register(table)

    def test_unknown_lookup(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().table("nope")

    def test_drop(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.create_hash_index("r", "key")
        catalog.drop_table("r")
        assert "r" not in catalog
        assert catalog.hash_index("r", "key") is None

    def test_drop_unknown(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("nope")

    def test_iteration_sorted(self):
        catalog = Catalog()
        catalog.create_table("b", Schema.of(v="int"))
        catalog.create_table("a", Schema.of(v="int"))
        assert list(catalog) == ["a", "b"]


class TestIndexes:
    def test_create_hash_index_idempotent(self, catalog):
        first = catalog.create_hash_index("r", "key")
        second = catalog.create_hash_index("r", "key")
        assert first is second
        assert catalog.hash_index("r", "key") is first

    def test_create_sorted_index_idempotent(self, catalog):
        first = catalog.create_sorted_index("r", "t")
        assert catalog.create_sorted_index("r", "t") is first
        assert catalog.sorted_index("r", "t") is first

    def test_missing_index_is_none(self, catalog):
        assert catalog.hash_index("r", "v") is None
        assert catalog.sorted_index("r", "v") is None

    def test_index_on_unknown_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_hash_index("nope", "key")
