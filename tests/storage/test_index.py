"""Tests for repro.storage.index."""

import pytest

from repro.storage import HashIndex, RowSet, SortedIndex


class TestHashIndex:
    def test_initial_build(self, table):
        index = HashIndex(table, "key")
        assert index.lookup("a") == RowSet([1, 3, 5, 7, 9])
        assert len(index) == 10

    def test_lookup_missing(self, table):
        index = HashIndex(table, "key")
        assert index.lookup("zzz") == RowSet.empty()

    def test_lookup_many(self, table):
        index = HashIndex(table, "key")
        assert index.lookup_many(["a", "b"]) == RowSet(range(10))

    def test_tracks_append(self, table):
        index = HashIndex(table, "key")
        rid = table.append((10.0, 1.0, 100, "c"))
        assert index.lookup("c") == RowSet([rid])

    def test_tracks_delete(self, table):
        index = HashIndex(table, "key")
        table.delete(1)
        assert 1 not in index.lookup("a")
        assert len(index) == 9

    def test_tracks_compaction(self, table):
        index = HashIndex(table, "key")
        table.delete(0)
        table.compact()
        # old rid 2 (key 'b') is now rid 1
        assert 1 in index.lookup("b")
        assert len(index) == 9

    def test_distinct_values(self, table):
        index = HashIndex(table, "key")
        assert sorted(index.distinct_values()) == ["a", "b"]
        for rid in (1, 3, 5, 7, 9):
            table.delete(rid)
        assert index.distinct_values() == ["b"]


class TestSortedIndex:
    def test_range_inclusive(self, table):
        index = SortedIndex(table, "t")
        assert index.range(3.0, 5.0) == RowSet([3, 4, 5])

    def test_range_exclusive_bounds(self, table):
        index = SortedIndex(table, "t")
        assert index.range(3.0, 5.0, include_low=False, include_high=False) == RowSet([4])

    def test_range_open_ended(self, table):
        index = SortedIndex(table, "t")
        assert index.range(low=8.0) == RowSet([8, 9])
        assert index.range(high=1.0) == RowSet([0, 1])
        assert index.range() == RowSet(range(10))

    def test_min_max(self, table):
        index = SortedIndex(table, "t")
        assert index.min_value() == 0.0
        assert index.max_value() == 9.0

    def test_min_max_empty(self, schema):
        from repro.storage import Table

        empty = Table(schema)
        index = SortedIndex(empty, "t")
        assert index.min_value() is None
        assert index.max_value() is None

    def test_tracks_append_in_order(self, table):
        index = SortedIndex(table, "t")
        table.append((4.5, 1.0, 0, "c"))
        assert index.range(4.0, 5.0) == RowSet([4, 5, 10])

    def test_lazy_delete(self, table):
        index = SortedIndex(table, "t")
        table.delete(4)
        assert index.range(3.0, 5.0) == RowSet([3, 5])
        assert len(index) == 9

    def test_purge_after_many_deletes(self, table):
        index = SortedIndex(table, "t")
        for rid in range(8):
            table.delete(rid)
        assert len(index) == 2
        assert index.range() == RowSet([8, 9])

    def test_tracks_compaction(self, table):
        index = SortedIndex(table, "t")
        table.delete(0)
        table.delete(1)
        table.compact()
        assert index.range(2.0, 3.0) == RowSet([0, 1])

    def test_ascending(self, table):
        index = SortedIndex(table, "t")
        table.delete(5)
        assert index.ascending() == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_min_after_delete(self, table):
        index = SortedIndex(table, "t")
        table.delete(0)
        assert index.min_value() == 1.0
