"""Tests for repro.sketch.countmin."""

import random

import pytest

from repro.errors import SketchError
from repro.sketch import CountMinSketch


class TestBasics:
    def test_bad_dimensions(self):
        with pytest.raises(SketchError):
            CountMinSketch(width=0)
        with pytest.raises(SketchError):
            CountMinSketch(depth=0)

    def test_never_underestimates(self):
        cm = CountMinSketch(width=64, depth=3)
        rng = random.Random(1)
        truth = {}
        for _ in range(5000):
            key = f"k{rng.randrange(200)}"
            truth[key] = truth.get(key, 0) + 1
            cm.add(key)
        assert all(cm.estimate(k) >= c for k, c in truth.items())

    def test_error_within_bound(self):
        cm = CountMinSketch(width=256, depth=5)
        rng = random.Random(2)
        truth = {}
        for _ in range(10000):
            key = rng.randrange(500)
            truth[key] = truth.get(key, 0) + 1
            cm.add(key)
        bound = cm.error_bound()
        violations = sum(1 for k, c in truth.items() if cm.estimate(k) - c > bound)
        assert violations <= len(truth) * 0.01

    def test_counted_amounts(self):
        cm = CountMinSketch()
        cm.add("x", count=5)
        cm.add("x")
        assert cm.estimate("x") >= 6
        assert cm.total == 6

    def test_negative_count_rejected(self):
        with pytest.raises(SketchError):
            CountMinSketch().add("x", count=-1)

    def test_unseen_value_can_be_zero(self):
        cm = CountMinSketch(width=1024, depth=4)
        cm.add("x")
        assert cm.estimate("never") <= 1

    def test_from_error_sizing(self):
        cm = CountMinSketch.from_error(epsilon=0.01, delta=0.01)
        assert cm.width >= 272  # e/0.01
        assert cm.depth >= 5  # ln(100)

    def test_from_error_validation(self):
        with pytest.raises(SketchError):
            CountMinSketch.from_error(epsilon=0, delta=0.5)
        with pytest.raises(SketchError):
            CountMinSketch.from_error(epsilon=0.1, delta=2)

    def test_memory_cells(self):
        assert CountMinSketch(width=10, depth=3).memory_cells() == 30


class TestMerge:
    def test_merge_adds_counts(self):
        a = CountMinSketch(width=128, depth=4, seed=3)
        b = CountMinSketch(width=128, depth=4, seed=3)
        a.add("x", 5)
        b.add("x", 7)
        merged = a.merge(b)
        assert merged.estimate("x") >= 12
        assert merged.total == 12

    def test_merge_requires_same_parameters(self):
        with pytest.raises(SketchError):
            CountMinSketch(width=128).merge(CountMinSketch(width=64))
        with pytest.raises(SketchError):
            CountMinSketch(seed=1).merge(CountMinSketch(seed=2))
