"""Tests for repro.sketch.summary."""

import pytest

from repro.errors import DistillError
from repro.sketch.summary import ColumnSummary, SummaryConfig, TableSummary
from repro.storage import Schema
from repro.storage.schema import DataType


@pytest.fixture
def summary():
    schema = Schema.of(t="timestamp", v="float", key="str")
    s = TableSummary("r", schema, time_column="t")
    for i in range(100):
        s.add_row({"t": float(i), "v": i / 10.0, "key": f"k{i % 7}"})
    return s


class TestColumnSummary:
    def test_numeric_gets_moments_and_histogram(self):
        col = ColumnSummary("x", DataType.FLOAT, SummaryConfig())
        assert col.moments is not None and col.histogram is not None

    def test_string_has_no_moments(self):
        col = ColumnSummary("x", DataType.STR, SummaryConfig())
        assert col.moments is None
        assert col.estimate_mean() is None
        assert col.estimate_quantile(0.5) is None

    def test_null_counting(self):
        col = ColumnSummary("x", DataType.STR, SummaryConfig())
        col.add(None)
        col.add("a")
        assert col.nulls == 1 and col.count == 2

    def test_merge_type_mismatch(self):
        a = ColumnSummary("x", DataType.STR, SummaryConfig())
        b = ColumnSummary("y", DataType.STR, SummaryConfig())
        with pytest.raises(DistillError):
            a.merge(b)

    def test_memory_cells_positive(self):
        col = ColumnSummary("x", DataType.FLOAT, SummaryConfig())
        assert col.memory_cells() > 0


class TestTableSummary:
    def test_row_count_exact(self, summary):
        assert summary.row_count == 100
        assert summary.column("v").estimate_count() == 100

    def test_time_range_tracked(self, summary):
        assert summary.time_range == (0.0, 99.0)

    def test_distinct_estimate(self, summary):
        assert summary.column("key").estimate_distinct() == pytest.approx(7, abs=1)

    def test_frequency_estimate(self, summary):
        est = summary.column("key").estimate_frequency("k0")
        assert est >= 15  # true count 15, count-min never under

    def test_membership(self, summary):
        assert summary.column("key").maybe_contains("k3")
        # unseen keys are *usually* absent; just assert no false negative

    def test_quantiles(self, summary):
        assert summary.column("v").estimate_quantile(0.5) == pytest.approx(4.95, abs=0.5)

    def test_mean(self, summary):
        assert summary.column("v").estimate_mean() == pytest.approx(4.95, abs=0.01)

    def test_unknown_column(self, summary):
        with pytest.raises(DistillError):
            summary.column("zzz")

    def test_describe_mentions_rows(self, summary):
        assert "100 rows" in summary.describe()


class TestTableSummaryMerge:
    def test_merge_combines_everything(self):
        schema = Schema.of(t="timestamp", v="float")
        a = TableSummary("r", schema, time_column="t", reason="decay")
        b = TableSummary("r", schema, time_column="t", reason="consume")
        for i in range(50):
            a.add_row({"t": float(i), "v": 1.0})
        for i in range(50, 80):
            b.add_row({"t": float(i), "v": 3.0})
        a.spans = [(0, 50)]
        b.spans = [(50, 80)]
        merged = a.merge(b)
        assert merged.row_count == 80
        assert merged.time_range == (0.0, 79.0)
        assert merged.spans == [(0, 50), (50, 80)]
        assert merged.column("v").estimate_mean() == pytest.approx(
            (50 * 1.0 + 30 * 3.0) / 80
        )

    def test_merge_reason_counts_leaves(self):
        schema = Schema.of(v="float")
        parts = [TableSummary("r", schema) for _ in range(3)]
        merged = parts[0].merge(parts[1]).merge(parts[2])
        assert merged.reason == "merged[3 summaries]"

    def test_merge_schema_mismatch(self):
        a = TableSummary("r", Schema.of(v="float"))
        b = TableSummary("r", Schema.of(w="float"))
        with pytest.raises(DistillError):
            a.merge(b)

    def test_merge_table_mismatch(self):
        a = TableSummary("r", Schema.of(v="float"))
        b = TableSummary("s", Schema.of(v="float"))
        with pytest.raises(DistillError):
            a.merge(b)

    def test_memory_cells_sums_columns(self, summary):
        assert summary.memory_cells() == sum(
            col.memory_cells() for col in summary.columns.values()
        )
