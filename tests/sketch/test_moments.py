"""Tests for repro.sketch.moments."""

import random
import statistics

import pytest

from repro.errors import SketchError
from repro.sketch import Ewma, RunningMoments


class TestRunningMoments:
    def test_rejects_non_numeric(self):
        with pytest.raises(SketchError):
            RunningMoments().add("x")
        with pytest.raises(SketchError):
            RunningMoments().add(False)

    def test_matches_statistics_module(self):
        rng = random.Random(11)
        values = [rng.gauss(5.0, 2.0) for _ in range(1000)]
        m = RunningMoments()
        m.add_all(values)
        assert m.mean == pytest.approx(statistics.mean(values))
        assert m.variance == pytest.approx(statistics.variance(values))
        assert m.stddev == pytest.approx(statistics.stdev(values))
        assert m.min_value == min(values)
        assert m.max_value == max(values)

    def test_total(self):
        m = RunningMoments()
        m.add_all([1.0, 2.0, 3.0])
        assert m.total == pytest.approx(6.0)

    def test_variance_below_two_is_none(self):
        m = RunningMoments()
        assert m.variance is None
        m.add(1.0)
        assert m.variance is None
        assert m.stddev is None

    def test_merge_equals_single_pass(self):
        rng = random.Random(12)
        values = [rng.random() * 100 for _ in range(2000)]
        full = RunningMoments()
        full.add_all(values)
        a, b = RunningMoments(), RunningMoments()
        a.add_all(values[:700])
        b.add_all(values[700:])
        merged = a.merge(b)
        assert merged.count == full.count
        assert merged.mean == pytest.approx(full.mean)
        assert merged.variance == pytest.approx(full.variance)
        assert merged.min_value == full.min_value
        assert merged.max_value == full.max_value

    def test_merge_with_empty(self):
        a = RunningMoments()
        a.add_all([1.0, 2.0])
        merged = a.merge(RunningMoments())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_merge_two_empties(self):
        merged = RunningMoments().merge(RunningMoments())
        assert merged.count == 0
        assert merged.min_value is None


class TestEwma:
    def test_alpha_validation(self):
        with pytest.raises(SketchError):
            Ewma(0.0)
        with pytest.raises(SketchError):
            Ewma(1.5)

    def test_first_value_seeds(self):
        e = Ewma(0.5)
        e.add(10.0)
        assert e.value == 10.0

    def test_weighted_update(self):
        e = Ewma(0.5)
        e.add(10.0)
        e.add(20.0)
        assert e.value == pytest.approx(15.0)

    def test_converges_to_constant(self):
        e = Ewma(0.2)
        e.add(0.0)
        for _ in range(100):
            e.add(7.0)
        assert e.value == pytest.approx(7.0, abs=1e-6)

    def test_rejects_non_numeric(self):
        with pytest.raises(SketchError):
            Ewma().add(None)
