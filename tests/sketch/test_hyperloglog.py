"""Tests for repro.sketch.hyperloglog."""

import pytest

from repro.errors import SketchError
from repro.sketch import HyperLogLog


class TestBasics:
    def test_precision_bounds(self):
        with pytest.raises(SketchError):
            HyperLogLog(3)
        with pytest.raises(SketchError):
            HyperLogLog(19)

    def test_empty_estimate_is_zero(self):
        assert HyperLogLog(10).estimate() == 0.0

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(12)
        for _ in range(1000):
            hll.add("same")
        assert hll.estimate() == pytest.approx(1.0, abs=0.5)

    @pytest.mark.parametrize("n", [100, 5_000, 100_000])
    def test_estimate_within_3_sigma(self, n):
        hll = HyperLogLog(12)
        hll.add_all(f"value-{i}" for i in range(n))
        err = abs(hll.estimate() - n) / n
        assert err <= 3 * hll.relative_error + 0.01

    def test_relative_error_formula(self):
        assert HyperLogLog(12).relative_error == pytest.approx(1.04 / 64)

    def test_mixed_types(self):
        hll = HyperLogLog(10)
        hll.add(1)
        hll.add("1")
        hll.add(1.5)
        assert hll.estimate() >= 2.0

    def test_memory_cells(self):
        assert HyperLogLog(10).memory_cells() == 1024


class TestMerge:
    def test_merge_equals_union(self):
        a, b, union = HyperLogLog(12), HyperLogLog(12), HyperLogLog(12)
        for i in range(2000):
            a.add(f"a{i}")
            union.add(f"a{i}")
        for i in range(2000):
            b.add(f"b{i}")
            union.add(f"b{i}")
        merged = a.merge(b)
        assert merged.estimate() == union.estimate()

    def test_merge_is_idempotent_on_overlap(self):
        a, b = HyperLogLog(12), HyperLogLog(12)
        for i in range(1000):
            a.add(i)
            b.add(i)
        merged = a.merge(b)
        assert merged.estimate() == a.estimate()

    def test_merge_requires_same_precision(self):
        with pytest.raises(SketchError):
            HyperLogLog(10).merge(HyperLogLog(12))
