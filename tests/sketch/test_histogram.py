"""Tests for repro.sketch.histogram."""

import random
import statistics

import pytest

from repro.errors import SketchError
from repro.sketch import StreamingHistogram


class TestBasics:
    def test_min_bins(self):
        with pytest.raises(SketchError):
            StreamingHistogram(1)

    def test_rejects_non_numeric(self):
        with pytest.raises(SketchError):
            StreamingHistogram().add("x")
        with pytest.raises(SketchError):
            StreamingHistogram().add(True)

    def test_bin_budget_respected(self):
        hist = StreamingHistogram(16)
        hist.add_all(random.Random(1).random() for _ in range(1000))
        assert len(hist) <= 16
        assert hist.total == 1000

    def test_duplicate_centroids_merge_counts(self):
        hist = StreamingHistogram(8)
        for _ in range(5):
            hist.add(3.0)
        assert hist.bins() == [(3.0, 5)]

    def test_min_max_tracked(self):
        hist = StreamingHistogram(8)
        hist.add_all([5.0, -2.0, 9.0])
        assert (hist.min_value, hist.max_value) == (-2.0, 9.0)

    def test_mean_exact_under_budget(self):
        hist = StreamingHistogram(64)
        hist.add_all(range(10))
        assert hist.mean() == pytest.approx(4.5)

    def test_mean_empty(self):
        assert StreamingHistogram().mean() is None


class TestQuantiles:
    def test_empty_raises(self):
        with pytest.raises(SketchError):
            StreamingHistogram().quantile(0.5)

    def test_out_of_range_raises(self):
        hist = StreamingHistogram()
        hist.add(1.0)
        with pytest.raises(SketchError):
            hist.quantile(1.5)

    def test_extremes(self):
        hist = StreamingHistogram(16)
        hist.add_all(range(100))
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 99.0

    def test_median_of_gaussian(self):
        rng = random.Random(3)
        values = [rng.gauss(10.0, 2.0) for _ in range(5000)]
        hist = StreamingHistogram(64)
        hist.add_all(values)
        true_median = statistics.median(values)
        assert hist.quantile(0.5) == pytest.approx(true_median, abs=0.5)

    def test_p95_of_uniform(self):
        rng = random.Random(4)
        values = [rng.random() for _ in range(5000)]
        hist = StreamingHistogram(64)
        hist.add_all(values)
        assert hist.quantile(0.95) == pytest.approx(0.95, abs=0.05)


class TestCountBelow:
    def test_empty(self):
        assert StreamingHistogram().count_below(5.0) == 0.0

    def test_below_minimum(self):
        hist = StreamingHistogram(8)
        hist.add_all([1.0, 2.0])
        assert hist.count_below(0.0) == 0.0

    def test_at_or_above_maximum(self):
        hist = StreamingHistogram(8)
        hist.add_all([1.0, 2.0])
        assert hist.count_below(2.0) == 2.0

    def test_midpoint_roughly_half(self):
        hist = StreamingHistogram(32)
        hist.add_all(float(i) for i in range(1000))
        assert hist.count_below(500.0) == pytest.approx(500, rel=0.1)


class TestMerge:
    def test_merge_totals(self):
        a, b = StreamingHistogram(32), StreamingHistogram(32)
        a.add_all(range(100))
        b.add_all(range(100, 200))
        merged = a.merge(b)
        assert merged.total == 200
        assert merged.min_value == 0.0
        assert merged.max_value == 199.0
        assert len(merged) <= 32

    def test_merge_with_empty(self):
        a = StreamingHistogram(8)
        a.add_all([1.0, 2.0])
        merged = a.merge(StreamingHistogram(8))
        assert merged.total == 2
        assert merged.quantile(1.0) == 2.0

    def test_merged_quantile_close_to_exact(self):
        rng = random.Random(5)
        values_a = [rng.gauss(0, 1) for _ in range(3000)]
        values_b = [rng.gauss(5, 1) for _ in range(3000)]
        a, b = StreamingHistogram(64), StreamingHistogram(64)
        a.add_all(values_a)
        b.add_all(values_b)
        merged = a.merge(b)
        true_median = statistics.median(values_a + values_b)
        assert merged.quantile(0.5) == pytest.approx(true_median, abs=0.6)
