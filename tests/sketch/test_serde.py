"""Tests for sketch/summary serialization (repro.sketch.serde)."""

import json
import random

import pytest

from repro.errors import SketchError
from repro.sketch import (
    BloomFilter,
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    RunningMoments,
    StreamingHistogram,
    TableSummary,
)
from repro.sketch.serde import (
    bloom_from_dict,
    bloom_to_dict,
    countmin_from_dict,
    countmin_to_dict,
    histogram_from_dict,
    histogram_to_dict,
    hll_from_dict,
    hll_to_dict,
    moments_from_dict,
    moments_to_dict,
    reservoir_from_dict,
    reservoir_to_dict,
    summary_from_dict,
    summary_to_dict,
)
from repro.storage import Schema


def roundtrip(data):
    """Force through actual JSON so nothing non-serialisable sneaks in."""
    return json.loads(json.dumps(data))


class TestSketchRoundTrips:
    def test_countmin(self):
        cm = CountMinSketch(width=64, depth=3, seed=9)
        for i in range(500):
            cm.add(f"k{i % 20}")
        restored = countmin_from_dict(roundtrip(countmin_to_dict(cm)))
        assert restored.total == cm.total
        for i in range(20):
            assert restored.estimate(f"k{i}") == cm.estimate(f"k{i}")

    def test_hll(self):
        hll = HyperLogLog(10)
        hll.add_all(range(5000))
        restored = hll_from_dict(roundtrip(hll_to_dict(hll)))
        assert restored.estimate() == hll.estimate()

    def test_bloom(self):
        bloom = BloomFilter.from_capacity(500, 0.01)
        bloom.add_all(range(500))
        restored = bloom_from_dict(roundtrip(bloom_to_dict(bloom)))
        assert all(i in restored for i in range(500))
        assert restored.count == 500
        assert (42_000 in restored) == (42_000 in bloom)

    def test_histogram(self):
        hist = StreamingHistogram(32)
        rng = random.Random(5)
        hist.add_all(rng.gauss(0, 1) for _ in range(2000))
        restored = histogram_from_dict(roundtrip(histogram_to_dict(hist)))
        assert restored.total == hist.total
        assert restored.quantile(0.5) == hist.quantile(0.5)
        assert restored.quantile(0.95) == hist.quantile(0.95)

    def test_moments(self):
        moments = RunningMoments()
        moments.add_all([1.0, 2.5, -3.0])
        restored = moments_from_dict(roundtrip(moments_to_dict(moments)))
        assert restored.count == 3
        assert restored.mean == moments.mean
        assert restored.variance == moments.variance
        assert (restored.min_value, restored.max_value) == (-3.0, 2.5)

    def test_reservoir(self):
        reservoir = ReservoirSample(10, seed=1)
        reservoir.add_all(range(300))
        restored = reservoir_from_dict(roundtrip(reservoir_to_dict(reservoir)))
        assert restored.values() == reservoir.values()
        assert restored.seen == 300
        restored.add(999)  # restored sample keeps working
        assert restored.seen == 301


class TestSummaryRoundTrip:
    @pytest.fixture
    def summary(self):
        schema = Schema.of(t="timestamp", v="float", k="str")
        s = TableSummary("r", schema, reason="decay", time_column="t")
        s.spans = [(0, 5), (9, 12)]
        for i in range(200):
            s.add_row({"t": float(i), "v": i / 3.0, "k": f"k{i % 9}"})
        return s

    def test_metadata_preserved(self, summary):
        restored = summary_from_dict(roundtrip(summary_to_dict(summary)))
        assert restored.table_name == "r"
        assert restored.schema == summary.schema
        assert restored.reason == "decay"
        assert restored.row_count == 200
        assert restored.spans == [(0, 5), (9, 12)]
        assert restored.time_range == (0.0, 199.0)

    def test_all_estimates_identical(self, summary):
        restored = summary_from_dict(roundtrip(summary_to_dict(summary)))
        v, rv = summary.column("v"), restored.column("v")
        assert rv.estimate_mean() == v.estimate_mean()
        assert rv.estimate_quantile(0.9) == v.estimate_quantile(0.9)
        k, rk = summary.column("k"), restored.column("k")
        assert rk.estimate_distinct() == k.estimate_distinct()
        assert rk.estimate_frequency("k3") == k.estimate_frequency("k3")
        for probe in ("k0", "k8", "nope-xyz", "another"):
            assert rk.maybe_contains(probe) == k.maybe_contains(probe)
        assert rk.examples.values() == k.examples.values()

    def test_restored_summary_still_merges(self, summary):
        restored = summary_from_dict(roundtrip(summary_to_dict(summary)))
        merged = restored.merge(summary)
        assert merged.row_count == 400

    def test_version_checked(self, summary):
        data = summary_to_dict(summary)
        data["serde_version"] = 99
        with pytest.raises(SketchError, match="version"):
            summary_from_dict(data)


class TestStoreRoundTrips:
    def test_plain_store(self, decaying):
        from repro.core.distill import Distiller, SummaryStore
        from repro.storage import RowSet

        store = SummaryStore(max_per_table=5)
        distiller = Distiller(store)
        distiller.distill_rowset(decaying, RowSet([0, 1]), reason="a")
        distiller.distill_rowset(decaying, RowSet([2]), reason="b")
        restored = SummaryStore.from_dict(roundtrip(store.to_dict()))
        assert restored.max_per_table == 5
        assert restored.total_rows_summarised == 3
        assert [s.row_count for s in restored.for_table("r")] == [2, 1]
        assert restored.merged("r").row_count == 3

    def test_vault(self, decaying):
        from repro.core.distill import Distiller
        from repro.core.vault import SummaryVault
        from repro.storage import RowSet

        vault = SummaryVault(half_life=2.0, compost_below=0.4)
        distiller = Distiller(vault)
        distiller.distill_rowset(decaying, RowSet([0]), reason="old")
        for tick in range(1, 6):
            vault.on_tick(tick)
        distiller.distill_rowset(decaying, RowSet([1]), reason="new")
        vault.on_tick(6)

        restored = SummaryVault.from_dict(roundtrip(vault.to_dict()))
        assert restored.composted_summaries == vault.composted_summaries
        assert restored.fresh_count("r") == vault.fresh_count("r")
        assert restored.freshness_of("r") == vault.freshness_of("r")
        assert restored.merged("r").row_count == vault.merged("r").row_count
        # the restored vault keeps decaying
        for tick in range(7, 40):
            restored.on_tick(tick)
        assert restored.fresh_count("r") == 0
