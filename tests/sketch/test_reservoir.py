"""Tests for repro.sketch.reservoir."""

import pytest

from repro.errors import SketchError
from repro.sketch import ReservoirSample


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SketchError):
            ReservoirSample(0)

    def test_fills_up_to_capacity(self):
        rs = ReservoirSample(5, seed=1)
        rs.add_all(range(3))
        assert sorted(rs.values()) == [0, 1, 2]

    def test_never_exceeds_capacity(self):
        rs = ReservoirSample(10, seed=1)
        rs.add_all(range(1000))
        assert len(rs) == 10
        assert rs.seen == 1000

    def test_sample_members_come_from_stream(self):
        rs = ReservoirSample(10, seed=2)
        rs.add_all(range(500))
        assert all(0 <= v < 500 for v in rs)

    def test_deterministic_under_seed(self):
        a, b = ReservoirSample(10, seed=7), ReservoirSample(10, seed=7)
        a.add_all(range(200))
        b.add_all(range(200))
        assert a.values() == b.values()

    def test_approximately_uniform(self):
        # each of 100 items should land in a size-10 sample ~10% of runs
        hits = [0] * 100
        for seed in range(300):
            rs = ReservoirSample(10, seed=seed)
            rs.add_all(range(100))
            for v in rs:
                hits[v] += 1
        expected = 300 * 10 / 100
        assert all(expected * 0.4 <= h <= expected * 1.9 for h in hits)

    def test_estimate_mean(self):
        rs = ReservoirSample(1000, seed=1)
        rs.add_all(range(100))  # under capacity: exact
        assert rs.estimate_mean() == pytest.approx(49.5)

    def test_estimate_mean_non_numeric(self):
        rs = ReservoirSample(10, seed=1)
        rs.add("x")
        assert rs.estimate_mean() is None


class TestMerge:
    def test_merge_sizes(self):
        a, b = ReservoirSample(10, seed=1), ReservoirSample(10, seed=2)
        a.add_all(range(100))
        b.add_all(range(100, 200))
        merged = a.merge(b)
        assert merged.seen == 200
        assert len(merged) <= 10
        assert all(0 <= v < 200 for v in merged)

    def test_merge_with_empty(self):
        a, b = ReservoirSample(5, seed=1), ReservoirSample(5, seed=2)
        a.add_all(range(50))
        merged = a.merge(b)
        assert merged.seen == 50
        assert len(merged) >= 1

    def test_merge_two_empties(self):
        merged = ReservoirSample(5, seed=1).merge(ReservoirSample(5, seed=2))
        assert merged.seen == 0
        assert len(merged) == 0
