"""Tests for repro.sketch.bloom."""

import pytest

from repro.errors import SketchError
from repro.sketch import BloomFilter


class TestBasics:
    def test_bad_parameters(self):
        with pytest.raises(SketchError):
            BloomFilter(num_bits=0)
        with pytest.raises(SketchError):
            BloomFilter(num_hashes=0)

    def test_no_false_negatives(self):
        bloom = BloomFilter.from_capacity(2000, 0.01)
        bloom.add_all(range(2000))
        assert all(i in bloom for i in range(2000))

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.from_capacity(2000, 0.01)
        bloom.add_all(range(2000))
        fps = sum(1 for i in range(10_000, 30_000) if i in bloom)
        assert fps / 20_000 < 0.03  # target 1%, generous 3x margin

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter()
        assert 42 not in bloom
        assert bloom.false_positive_rate() == 0.0

    def test_expected_fp_rate_grows_with_load(self):
        bloom = BloomFilter(num_bits=256, num_hashes=3)
        rates = []
        for i in range(100):
            bloom.add(i)
            rates.append(bloom.false_positive_rate())
        assert rates == sorted(rates)

    def test_from_capacity_validation(self):
        with pytest.raises(SketchError):
            BloomFilter.from_capacity(0)
        with pytest.raises(SketchError):
            BloomFilter.from_capacity(10, fp_rate=1.5)

    def test_string_and_int_keys_independent(self):
        bloom = BloomFilter.from_capacity(100)
        bloom.add("1")
        assert "1" in bloom

    def test_memory_cells(self):
        assert BloomFilter(num_bits=1024).memory_cells() == 1024


class TestMerge:
    def test_merge_is_union(self):
        a = BloomFilter(num_bits=4096, num_hashes=4)
        b = BloomFilter(num_bits=4096, num_hashes=4)
        a.add_all(range(100))
        b.add_all(range(100, 200))
        merged = a.merge(b)
        assert all(i in merged for i in range(200))
        assert merged.count == 200

    def test_merge_requires_same_shape(self):
        with pytest.raises(SketchError):
            BloomFilter(num_bits=128).merge(BloomFilter(num_bits=256))
