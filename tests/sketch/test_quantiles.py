"""Tests for repro.sketch.quantiles (P²)."""

import random

import pytest

from repro.errors import SketchError
from repro.sketch import P2Quantile


class TestValidation:
    def test_quantile_range(self):
        with pytest.raises(SketchError):
            P2Quantile(0.0)
        with pytest.raises(SketchError):
            P2Quantile(1.0)

    def test_empty_raises(self):
        with pytest.raises(SketchError):
            P2Quantile(0.5).value()

    def test_rejects_non_numeric(self):
        with pytest.raises(SketchError):
            P2Quantile(0.5).add("x")


class TestSmallStreams:
    def test_under_five_values_uses_sorted(self):
        q = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            q.add(v)
        assert q.value() == 3.0

    def test_exactly_five(self):
        q = P2Quantile(0.5)
        for v in (1, 2, 3, 4, 5):
            q.add(v)
        assert q.value() == 3.0


class TestAccuracy:
    @pytest.mark.parametrize("target", [0.1, 0.5, 0.9, 0.95, 0.99])
    def test_uniform_stream(self, target):
        rng = random.Random(int(target * 100))
        q = P2Quantile(target)
        values = [rng.random() for _ in range(20_000)]
        for v in values:
            q.add(v)
        exact = sorted(values)[int(target * len(values))]
        assert q.value() == pytest.approx(exact, abs=0.02)

    def test_gaussian_median(self):
        rng = random.Random(9)
        q = P2Quantile(0.5)
        for _ in range(20_000):
            q.add(rng.gauss(100.0, 15.0))
        assert q.value() == pytest.approx(100.0, abs=1.0)

    def test_monotone_stream(self):
        q = P2Quantile(0.9)
        for i in range(10_000):
            q.add(float(i))
        assert q.value() == pytest.approx(9_000, rel=0.05)

    def test_count_tracked(self):
        q = P2Quantile(0.5)
        for i in range(10):
            q.add(i)
        assert q.count == 10
