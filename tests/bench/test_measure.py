"""Tests for repro.bench.measure."""

import pytest

from repro.bench.measure import Timer, estimate_object_bytes, time_callable
from repro.errors import BenchError


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0


class TestTimeCallable:
    def test_repeats_validated(self):
        with pytest.raises(BenchError):
            time_callable(lambda: None, repeats=0)

    def test_stats_ordering(self):
        stats = time_callable(lambda: sum(range(100)), repeats=5)
        assert 0 < stats["min"] <= stats["mean"] <= stats["max"]

    def test_function_actually_runs(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3


class TestEstimateBytes:
    def test_scalars(self):
        assert estimate_object_bytes(1) > 0

    def test_containers_bigger_than_elements(self):
        assert estimate_object_bytes([1, 2, 3]) > estimate_object_bytes(1)

    def test_dict_counts_keys_and_values(self):
        assert estimate_object_bytes({"key": "value"}) > estimate_object_bytes("key")

    def test_depth_cap_terminates(self):
        nested = [[[[[1]]]]]
        assert estimate_object_bytes(nested) > 0
