"""Every benchmark file is wired to a registered experiment, and every
registered experiment produces a fully-checked ExperimentResult at
smoke scale.

``tests/experiments`` asserts the *science* (shape checks hold);
this module asserts the *plumbing*: the registry and the
``benchmarks/bench_*.py`` tree cannot drift apart, every bench module
is collectible, and each run function honours the ExperimentResult
contract (id, scale, non-empty checks, all passing).
"""

from __future__ import annotations

import functools
import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro.experiments  # noqa: F401 — populates REGISTRY
from repro.bench.runner import REGISTRY, ExperimentResult, run_experiment

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
EXPERIMENT_BENCH = re.compile(r"bench_([ft]\d+)_\w+\.py$")


def experiment_bench_files() -> dict[str, Path]:
    """Map experiment id -> its dedicated benchmark file."""
    mapping = {}
    for path in sorted(BENCH_DIR.glob("bench_*.py")):
        match = EXPERIMENT_BENCH.match(path.name)
        if match:
            mapping[match.group(1).upper()] = path
    return mapping


@functools.lru_cache(maxsize=None)
def _cached_run(experiment_id: str) -> ExperimentResult:
    return run_experiment(experiment_id, scale="smoke")


class TestRegistryBenchMapping:
    def test_every_experiment_has_a_bench_file(self):
        missing = sorted(set(REGISTRY) - set(experiment_bench_files()))
        assert not missing, f"experiments without a benchmarks/bench_*.py: {missing}"

    def test_every_experiment_bench_file_is_registered(self):
        orphans = sorted(set(experiment_bench_files()) - set(REGISTRY))
        assert not orphans, f"bench files for unregistered experiments: {orphans}"

    def test_bench_files_reference_their_experiment_module(self):
        for experiment_id, path in experiment_bench_files().items():
            source = path.read_text()
            assert f"{experiment_id.lower()}_" in source, (
                f"{path.name} does not import its repro.experiments module"
            )


class TestBenchCollection:
    def test_all_bench_files_collect(self):
        """Every bench module must import and collect at least one test
        under pytest — a syntax error or broken import fails here, not
        first in a nightly perf run."""
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "--collect-only", "-q", str(BENCH_DIR)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # -q prints either "path::test" per item or "path: N" per file
        files_seen = {
            line.split("::")[0].split(":")[0].rsplit("/", 1)[-1]
            for line in proc.stdout.splitlines()
            if line.startswith("benchmarks") or "bench_" in line.split(":")[0]
        }
        expected = {p.name for p in BENCH_DIR.glob("bench_*.py")}
        assert expected <= files_seen, f"uncollected: {sorted(expected - files_seen)}"


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
class TestSmokeContract:
    def test_returns_checked_experiment_result(self, experiment_id):
        result = _cached_run(experiment_id)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.scale == "smoke"
        assert result.checks, f"{experiment_id} recorded no shape checks"
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{experiment_id} failed checks: {failed}"
        assert result.all_checks_pass
