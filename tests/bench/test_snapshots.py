"""Tests for the benchmark JSON snapshot writer (``--json``)."""

import json

import pytest

from repro.bench.snapshots import (
    SNAPSHOT_VERSION,
    group_by_suite,
    quantile,
    suite_of,
    summarise,
    write_snapshots,
)


class _Stats:
    def __init__(self, data):
        self.data = list(data)


class _Bench:
    def __init__(self, name, fullname, data, rows=None):
        self.name = name
        self.fullname = fullname
        self.stats = _Stats(data)
        self.extra_info = {} if rows is None else {"rows": rows}


class TestQuantile:
    def test_nearest_rank_median(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_p95_of_few_rounds_is_the_max(self):
        # nearest rank, no interpolation: 3 rounds → p95 is the max
        assert quantile([0.1, 0.3, 0.2], 0.95) == 0.3

    def test_q_zero_is_the_min(self):
        assert quantile([5.0, 1.0], 0.0) == 1.0

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestSuiteOf:
    def test_strips_path_prefix_and_bench_stem(self):
        assert suite_of("benchmarks/bench_storage.py::test_append") == "storage"

    def test_bare_module(self):
        assert suite_of("bench_query.py::test_scan[x]") == "query"

    def test_non_bench_module_keeps_its_name(self):
        assert suite_of("other.py::test_x") == "other"


class TestSummarise:
    def test_latency_fields(self):
        entry = summarise(_Bench("t", "bench_a.py::t", [0.2, 0.1, 0.4]))
        assert entry["rounds"] == 3
        assert entry["min_s"] == 0.1
        assert entry["p50_s"] == 0.2
        assert entry["p95_s"] == 0.4
        assert entry["mean_s"] == pytest.approx(0.7 / 3)
        assert "rows" not in entry

    def test_rows_per_s_from_extra_info(self):
        entry = summarise(_Bench("t", "bench_a.py::t", [0.5, 0.25], rows=1000))
        assert entry["rows"] == 1000
        assert entry["rows_per_s"] == 1000 / 0.25  # p50 of 2 rounds is the min


class TestGrouping:
    def test_groups_by_suite_and_sorts(self):
        suites = group_by_suite(
            [
                _Bench("b", "bench_x.py::b", [0.1]),
                _Bench("a", "bench_x.py::a", [0.1]),
                _Bench("c", "bench_y.py::c", [0.2]),
            ]
        )
        assert sorted(suites) == ["x", "y"]
        assert [e["name"] for e in suites["x"]] == ["a", "b"]

    def test_errored_benchmarks_are_skipped(self):
        suites = group_by_suite([_Bench("dead", "bench_x.py::dead", [])])
        assert suites == {}


class TestWriteSnapshots:
    def test_one_file_per_suite(self, tmp_path):
        paths = write_snapshots(
            [
                _Bench("a", "bench_storage.py::a", [0.1], rows=100),
                _Bench("b", "bench_query.py::b", [0.2]),
            ],
            tmp_path,
        )
        assert [p.name for p in paths] == ["BENCH_query.json", "BENCH_storage.json"]
        payload = json.loads((tmp_path / "BENCH_storage.json").read_text())
        assert payload["version"] == SNAPSHOT_VERSION
        assert payload["suite"] == "storage"
        assert payload["benchmarks"][0]["rows_per_s"] == pytest.approx(1000.0)

    def test_creates_the_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        paths = write_snapshots([_Bench("a", "bench_x.py::a", [0.1])], target)
        assert paths[0].exists()
        assert paths[0].parent == target

    def test_no_benchmarks_writes_nothing(self, tmp_path):
        assert write_snapshots([], tmp_path) == []
        assert list(tmp_path.iterdir()) == []
