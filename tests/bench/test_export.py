"""Tests for CSV export of experiment results."""

import csv
import json

from repro.bench.export import export_result
from repro.bench.runner import ExperimentResult


def make_result():
    result = ExperimentResult(
        experiment_id="X9",
        title="demo",
        claim="things happen",
        scale="smoke",
        headers=("arm", "value"),
        rows=[("a", 1), ("b", 2)],
    )
    result.add_series("live extent", "tick", [0, 1, 2], {"a": [3, 2, 1], "b": [3, 2]})
    result.check("sanity", True)
    result.notes.append("a note")
    return result


class TestExport:
    def test_table_csv(self, tmp_path):
        paths = export_result(make_result(), tmp_path)
        table_path = tmp_path / "x9_table.csv"
        assert table_path in paths
        with open(table_path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["arm", "value"]
        assert rows[1] == ["a", "1"]

    def test_series_csv_pads_short_series(self, tmp_path):
        export_result(make_result(), tmp_path)
        with open(tmp_path / "x9_live_extent.csv") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["tick", "a", "b"]
        assert rows[3] == ["2", "1", ""]

    def test_meta_json(self, tmp_path):
        export_result(make_result(), tmp_path)
        meta = json.loads((tmp_path / "x9_meta.json").read_text())
        assert meta["claim"] == "things happen"
        assert meta["checks"] == {"sanity": True}
        assert meta["notes"] == ["a note"]

    def test_real_experiment_exports(self, tmp_path):
        from repro.bench.runner import run_experiment

        result = run_experiment("F3", scale="smoke")
        paths = export_result(result, tmp_path)
        assert len(paths) >= 3  # table + at least one series + meta


class TestDbStats:
    def test_stats_shape(self, db):
        from repro import LinearDecayFungus, Schema

        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5))
        db.insert_many("r", [{"v": 1}, {"v": 2}])
        db.tick(2)
        stats = db.stats()
        assert stats["clock"] == 2.0
        table_stats = stats["tables"]["r"]
        assert table_stats["extent"] == 0
        assert table_stats["tuples_evicted"] == 2
        assert table_stats["tuples_distilled"] == 2
        assert table_stats["fungus"] == "linear"
        assert stats["events"]["TupleInserted"] == 2
        assert stats["summary_rows"] == 2
        assert stats["summary_cells"] > 0

    def test_stats_empty_db(self, db):
        stats = db.stats()
        assert stats["tables"] == {}
        assert stats["clock"] == 0.0
