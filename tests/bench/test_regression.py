"""Tests for the benchmark p50 regression gate (``repro.bench regress``)."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.regression import compare, load_snapshots


def _write_snapshot(directory, suite, entries):
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": 1,
        "suite": suite,
        "benchmarks": [
            {"fullname": fullname, "p50_s": p50} for fullname, p50 in entries
        ],
    }
    (directory / f"BENCH_{suite}.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )


class TestLoadSnapshots:
    def test_merges_all_suites_by_fullname(self, tmp_path):
        _write_snapshot(tmp_path, "a", [("bench_a.py::one", 0.1)])
        _write_snapshot(tmp_path, "b", [("bench_b.py::two", 0.2)])
        entries = load_snapshots(tmp_path)
        assert sorted(entries) == ["bench_a.py::one", "bench_b.py::two"]

    def test_ignores_non_snapshot_files(self, tmp_path):
        (tmp_path / "notes.json").write_text("{}", encoding="utf-8")
        assert load_snapshots(tmp_path) == {}


class TestCompare:
    def test_within_threshold_passes(self, tmp_path):
        _write_snapshot(tmp_path / "base", "k", [("f::x", 0.100)])
        _write_snapshot(tmp_path / "cur", "k", [("f::x", 0.120)])
        result = compare(tmp_path / "base", tmp_path / "cur")
        assert result.ok
        assert len(result.unchanged) == 1

    def test_slowdown_past_threshold_regresses(self, tmp_path):
        _write_snapshot(tmp_path / "base", "k", [("f::x", 0.100)])
        _write_snapshot(tmp_path / "cur", "k", [("f::x", 0.130)])
        result = compare(tmp_path / "base", tmp_path / "cur", threshold=1.25)
        assert not result.ok
        assert "1.30x" in result.regressions[0]

    def test_speedup_reported_as_improvement(self, tmp_path):
        _write_snapshot(tmp_path / "base", "k", [("f::x", 0.100)])
        _write_snapshot(tmp_path / "cur", "k", [("f::x", 0.050)])
        result = compare(tmp_path / "base", tmp_path / "cur")
        assert result.ok
        assert len(result.improvements) == 1

    def test_added_and_removed_never_fail(self, tmp_path):
        _write_snapshot(tmp_path / "base", "k", [("f::old", 0.1)])
        _write_snapshot(tmp_path / "cur", "k", [("f::new", 0.1)])
        result = compare(tmp_path / "base", tmp_path / "cur")
        assert result.ok
        assert result.added == ["f::new"]
        assert result.removed == ["f::old"]

    def test_zero_baseline_counts_as_regression(self, tmp_path):
        _write_snapshot(tmp_path / "base", "k", [("f::x", 0.0)])
        _write_snapshot(tmp_path / "cur", "k", [("f::x", 0.1)])
        assert not compare(tmp_path / "base", tmp_path / "cur").ok


class TestCli:
    def test_exit_zero_on_clean_run(self, tmp_path, capsys):
        _write_snapshot(tmp_path / "base", "k", [("f::x", 0.1)])
        code = main(
            [
                "regress",
                "--baseline",
                str(tmp_path / "base"),
                "--current",
                str(tmp_path / "base"),
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        _write_snapshot(tmp_path / "base", "k", [("f::x", 0.1)])
        _write_snapshot(tmp_path / "cur", "k", [("f::x", 0.2)])
        code = main(
            [
                "regress",
                "--baseline",
                str(tmp_path / "base"),
                "--current",
                str(tmp_path / "cur"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "regression(s)" in captured.err

    def test_custom_threshold_respected(self, tmp_path):
        _write_snapshot(tmp_path / "base", "k", [("f::x", 0.100)])
        _write_snapshot(tmp_path / "cur", "k", [("f::x", 0.150)])
        args = [
            "regress",
            "--baseline",
            str(tmp_path / "base"),
            "--current",
            str(tmp_path / "cur"),
        ]
        assert main(args) == 1
        assert main(args + ["--threshold", "2.0"]) == 0
