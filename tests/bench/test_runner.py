"""Tests for repro.bench.runner."""

import pytest

from repro.bench.runner import REGISTRY, ExperimentResult, register, run_experiment
from repro.errors import BenchError


class TestExperimentResult:
    def test_checks_aggregate(self):
        result = ExperimentResult("X", "t", "c", "smoke")
        result.check("a", True)
        assert result.all_checks_pass
        result.check("b", False)
        assert not result.all_checks_pass

    def test_add_series(self):
        result = ExperimentResult("X", "t", "c", "smoke")
        result.add_series("s", "tick", [0, 1], {"x": [1, 2]})
        assert result.series["s"][0] == "tick"


class TestRegistry:
    def test_all_ten_experiments_registered(self):
        import repro.experiments  # noqa: F401

        assert {"F1", "F2", "F3", "F4", "F5", "F6", "F7", "T1", "T2", "T3", "T4", "T5"} <= set(
            REGISTRY
        )

    def test_duplicate_registration_rejected(self):
        @register("ZZ-test")
        def run(scale):  # pragma: no cover - registration only
            raise AssertionError

        with pytest.raises(BenchError):
            register("ZZ-test")(run)
        del REGISTRY["ZZ-test"]

    def test_unknown_experiment(self):
        with pytest.raises(BenchError, match="unknown experiment"):
            run_experiment("NOPE")

    def test_unknown_scale_rejected(self):
        from repro.experiments.common import check_scale

        with pytest.raises(BenchError, match="unknown scale"):
            check_scale("huge")
