"""Tests for repro.bench.charts."""

import pytest

from repro.bench.charts import line_chart
from repro.errors import BenchError


class TestValidation:
    def test_needs_series(self):
        with pytest.raises(BenchError):
            line_chart({})

    def test_minimum_size(self):
        with pytest.raises(BenchError):
            line_chart({"x": [1, 2]}, width=4)
        with pytest.raises(BenchError):
            line_chart({"x": [1, 2]}, height=2)

    def test_series_cap(self):
        too_many = {f"s{i}": [1, 2] for i in range(9)}
        with pytest.raises(BenchError):
            line_chart(too_many)


class TestRendering:
    def test_legend_names_series(self):
        text = line_chart({"alpha": [1, 2, 3], "beta": [3, 2, 1]})
        assert "*=alpha" in text and "o=beta" in text

    def test_y_labels_are_min_and_max(self):
        text = line_chart({"x": [5, 10, 20]})
        assert "20" in text and "5" in text

    def test_width_respected(self):
        text = line_chart({"x": list(range(200))}, width=30, height=5)
        body_lines = [l for l in text.splitlines() if "|" in l]
        assert all(len(l.split("|", 1)[1]) <= 30 for l in body_lines)

    def test_rising_series_rises(self):
        text = line_chart({"x": [0, 1, 2, 3]}, width=8, height=4)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        first_col = [r[0] for r in rows]
        last_col = [r[-1] for r in rows]
        assert first_col.index("*") > last_col.index("*")  # ends higher

    def test_flat_series(self):
        text = line_chart({"x": [7.0, 7.0, 7.0]})
        assert "*" in text

    def test_single_point_series(self):
        assert "*" in line_chart({"x": [5.0]})

    def test_empty_series_renders_placeholder(self):
        assert line_chart({"x": []}) == "(no data)"

    def test_y_label_prefix(self):
        assert line_chart({"x": [1, 2]}, y_label="tuples").startswith("tuples:")

    def test_different_length_series_share_scale(self):
        text = line_chart({"short": [0, 100], "long": list(range(50))})
        assert "100" in text
