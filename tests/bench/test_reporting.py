"""Tests for repro.bench.reporting."""

from repro.bench.reporting import ascii_table, format_series, render_result, sparkline
from repro.bench.runner import ExperimentResult


class TestAsciiTable:
    def test_contains_headers_and_rows(self):
        text = ascii_table(("a", "b"), [(1, 2)])
        assert "a" in text and "1" in text


class TestFormatSeries:
    def test_columns_aligned(self):
        text = format_series("t", [0, 1], {"x": [10, 20], "y": [30, 40]})
        assert "t" in text and "x" in text and "40" in text

    def test_short_series_padded(self):
        text = format_series("t", [0, 1, 2], {"x": [10]})
        assert text.count("\n") == 4  # header + separator + 3 rows


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == "(empty)"

    def test_length_capped(self):
        assert len(sparkline(list(range(1000)), width=40)) <= 40

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0])  # no crash on zero span


class TestRenderResult:
    def test_full_render(self):
        result = ExperimentResult(
            experiment_id="X1",
            title="demo",
            claim="things decay",
            scale="smoke",
            headers=("a",),
            rows=[(1,)],
        )
        result.add_series("s", "t", [0], {"x": [1]})
        result.notes.append("a note")
        text = render_result(result)
        assert "X1: demo" in text
        assert "things decay" in text
        assert "-- s --" in text
        assert "note: a note" in text
