"""Documentation-consistency guards.

DESIGN.md promises a benchmark target and a module per experiment;
these tests keep the prose honest as the code evolves.
"""

import re
from pathlib import Path

from repro.bench.runner import REGISTRY

REPO = Path(__file__).resolve().parents[1]


def design_text() -> str:
    return (REPO / "DESIGN.md").read_text()


def test_every_registered_experiment_is_in_design_md():
    import repro.experiments  # noqa: F401

    text = design_text()
    for experiment_id in REGISTRY:
        assert f"**{experiment_id}**" in text, f"{experiment_id} missing from DESIGN.md"


def test_every_design_bench_target_exists():
    import repro.experiments  # noqa: F401

    text = design_text()
    for target in re.findall(r"`benchmarks/(bench_\w+\.py)`", text):
        assert (REPO / "benchmarks" / target).exists(), f"{target} promised but missing"


def test_every_experiment_has_a_bench_file():
    import repro.experiments  # noqa: F401
    import repro.experiments as exp_pkg

    module_by_id = {}
    for name in exp_pkg.__all__:
        module = getattr(exp_pkg, name)
        match = re.match(r"([ft])(\d+)_", name)
        if match:
            module_by_id[name] = module
    for name in module_by_id:
        bench = REPO / "benchmarks" / f"bench_{name}.py"
        assert bench.exists(), f"no benchmark file for experiment module {name}"


def test_experiments_md_covers_every_experiment():
    import repro.experiments  # noqa: F401

    text = (REPO / "EXPERIMENTS.md").read_text()
    for experiment_id in REGISTRY:
        assert f"## {experiment_id} " in text, f"{experiment_id} missing from EXPERIMENTS.md"


def test_readme_mentions_every_experiment():
    import repro.experiments  # noqa: F401

    text = (REPO / "README.md").read_text()
    for experiment_id in REGISTRY:
        assert experiment_id in text, f"{experiment_id} missing from README.md"
