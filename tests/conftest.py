"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.clock import DecayClock
from repro.core.db import FungusDB
from repro.core.table import DecayingTable
from repro.storage import Catalog, Schema, Table


@pytest.fixture
def schema() -> Schema:
    """A small mixed-type schema."""
    return Schema.of(t="timestamp", f="float", v="int", key="str")


@pytest.fixture
def table(schema: Schema) -> Table:
    """A 10-row storage table: t=i, f=1.0, v=i*i, key alternates a/b."""
    table = Table(schema, name="r")
    for i in range(10):
        table.append({"t": float(i), "f": 1.0, "v": i * i, "key": "a" if i % 2 else "b"})
    return table


@pytest.fixture
def catalog(table: Table) -> Catalog:
    """A catalog holding the 10-row table under name 'r'."""
    catalog = Catalog()
    catalog.register(table)
    return catalog


@pytest.fixture
def clock() -> DecayClock:
    """A fresh logical clock at t=0."""
    return DecayClock()


@pytest.fixture
def decaying(clock: DecayClock) -> DecayingTable:
    """A decaying table R(t, f, v) with 10 rows inserted at t=0."""
    table = DecayingTable("r", Schema.of(v="int"), clock)
    for i in range(10):
        table.insert({"v": i})
    return table


@pytest.fixture
def db() -> FungusDB:
    """An empty FungusDB with a fixed seed."""
    return FungusDB(seed=123)
