"""Tests for repro.workload.distributions."""

import pytest

from repro.errors import WorkloadError
from repro.workload import Categorical, GaussianFloats, UniformInts, ZipfInts


class TestUniformInts:
    def test_empty_range_rejected(self):
        with pytest.raises(WorkloadError):
            UniformInts(5, 4)

    def test_in_range(self):
        dist = UniformInts(1, 6, seed=1)
        samples = [dist.sample() for _ in range(500)]
        assert all(1 <= s <= 6 for s in samples)
        assert set(samples) == {1, 2, 3, 4, 5, 6}

    def test_deterministic(self):
        a = [UniformInts(0, 100, seed=5).sample() for _ in range(1)]
        b = [UniformInts(0, 100, seed=5).sample() for _ in range(1)]
        assert a == b


class TestZipfInts:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfInts(0)
        with pytest.raises(WorkloadError):
            ZipfInts(10, s=0)

    def test_range(self):
        dist = ZipfInts(50, s=1.2, seed=1)
        assert all(1 <= dist.sample() <= 50 for _ in range(1000))

    def test_rank_one_most_popular(self):
        dist = ZipfInts(100, s=1.2, seed=2)
        counts = {}
        for _ in range(10_000):
            k = dist.sample()
            counts[k] = counts.get(k, 0) + 1
        assert counts[1] == max(counts.values())
        assert counts[1] > counts.get(10, 0)
        assert counts.get(10, 0) > counts.get(100, 0)

    def test_skew_increases_with_s(self):
        flat = ZipfInts(100, s=0.5, seed=3)
        steep = ZipfInts(100, s=2.0, seed=3)
        flat_top = sum(1 for _ in range(5000) if flat.sample() == 1)
        steep_top = sum(1 for _ in range(5000) if steep.sample() == 1)
        assert steep_top > flat_top


class TestGaussianFloats:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            GaussianFloats(stddev=0)
        with pytest.raises(WorkloadError):
            GaussianFloats(low=5, high=1)

    def test_clamping(self):
        dist = GaussianFloats(mean=0, stddev=10, low=-1, high=1, seed=1)
        assert all(-1 <= dist.sample() <= 1 for _ in range(500))

    def test_mean_roughly_respected(self):
        dist = GaussianFloats(mean=50, stddev=5, seed=2)
        samples = [dist.sample() for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(50, abs=1)


class TestCategorical:
    def test_needs_items(self):
        with pytest.raises(WorkloadError):
            Categorical([])

    def test_weight_arity(self):
        with pytest.raises(WorkloadError):
            Categorical(["a", "b"], weights=[1.0])

    def test_bad_weights(self):
        with pytest.raises(WorkloadError):
            Categorical(["a"], weights=[-1.0])
        with pytest.raises(WorkloadError):
            Categorical(["a"], weights=[0.0])

    def test_unweighted_uniform(self):
        dist = Categorical(["a", "b"], seed=1)
        samples = [dist.sample() for _ in range(1000)]
        assert 350 < samples.count("a") < 650

    def test_weighted_skew(self):
        dist = Categorical(["a", "b"], weights=[9, 1], seed=2)
        samples = [dist.sample() for _ in range(1000)]
        assert samples.count("a") > 800
