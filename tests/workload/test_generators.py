"""Tests for repro.workload.generators."""

from repro.workload import MarketTickGenerator, SensorGenerator, WebLogGenerator


class TestSensorGenerator:
    def test_rows_match_schema(self):
        gen = SensorGenerator(num_sensors=5, seed=1)
        for tick in range(100):
            row = gen.generate(tick)
            gen.schema.coerce_row(row)  # raises on mismatch

    def test_sensor_ids_bounded(self):
        gen = SensorGenerator(num_sensors=5, seed=1)
        sensors = {gen.generate(0)["sensor"] for _ in range(200)}
        assert sensors <= {f"s{i:03d}" for i in range(5)}

    def test_battery_drains_monotonically(self):
        gen = SensorGenerator(num_sensors=1, seed=2)
        batteries = [gen.generate(t)["battery"] for t in range(50)]
        assert all(b2 <= b1 for b1, b2 in zip(batteries, batteries[1:]))
        assert all(b >= 0.0 for b in batteries)

    def test_temperature_clamped(self):
        gen = SensorGenerator(seed=3)
        assert all(-20.0 <= gen.generate(0)["temp"] <= 60.0 for _ in range(500))

    def test_deterministic(self):
        a = SensorGenerator(seed=4)
        b = SensorGenerator(seed=4)
        assert [a.generate(t) for t in range(10)] == [b.generate(t) for t in range(10)]


class TestWebLogGenerator:
    def test_rows_match_schema(self):
        gen = WebLogGenerator(seed=1)
        for tick in range(100):
            gen.schema.coerce_row(gen.generate(tick))

    def test_statuses_from_catalogue(self):
        gen = WebLogGenerator(seed=2)
        statuses = {gen.generate(0)["status"] for _ in range(300)}
        assert statuses <= {200, 304, 404, 500}

    def test_url_skew(self):
        gen = WebLogGenerator(num_urls=100, seed=3)
        urls = [gen.generate(0)["url"] for _ in range(3000)]
        top = urls.count("/page/1")
        assert top > len(urls) / 100  # far above uniform share

    def test_latency_positive(self):
        gen = WebLogGenerator(seed=4)
        assert all(gen.generate(0)["latency_ms"] >= 1.0 for _ in range(300))


class TestMarketTickGenerator:
    def test_rows_match_schema(self):
        gen = MarketTickGenerator(seed=1)
        for tick in range(100):
            gen.schema.coerce_row(gen.generate(tick))

    def test_symbols_from_universe(self):
        gen = MarketTickGenerator(symbols=("X", "Y"), seed=2)
        assert {gen.generate(0)["symbol"] for _ in range(100)} <= {"X", "Y"}

    def test_prices_positive_random_walk(self):
        gen = MarketTickGenerator(seed=3)
        prices = [gen.generate(t)["price"] for t in range(500)]
        assert all(p > 0 for p in prices)
        assert len(set(prices)) > 400  # actually walking

    def test_volume_bounds(self):
        gen = MarketTickGenerator(seed=4)
        assert all(1 <= gen.generate(0)["volume"] <= 1000 for _ in range(200))
