"""Tests for repro.workload.replay."""

import pytest

from repro.errors import WorkloadError
from repro.fungi import LinearDecayFungus
from repro.workload import SensorGenerator
from repro.workload.arrival import ConstantArrivals
from repro.workload.replay import ReplayDriver


@pytest.fixture
def driver(db):
    generator = SensorGenerator(num_sensors=3, seed=1)
    db.create_table("readings", generator.schema, fungus=None)
    return ReplayDriver(db, "readings", ConstantArrivals(5), generator)


class TestReplay:
    def test_unknown_table_rejected(self, db):
        generator = SensorGenerator(seed=1)
        with pytest.raises(WorkloadError):
            ReplayDriver(db, "missing", ConstantArrivals(1), generator)

    def test_inserts_and_ticks(self, db, driver):
        stats = driver.run(10)
        assert stats.ticks == 10
        assert stats.inserted == 50
        assert db.extent("readings") == 50
        assert db.now == 10.0

    def test_negative_ticks_rejected(self, driver):
        with pytest.raises(WorkloadError):
            driver.run(-1)

    def test_zero_ticks(self, driver, db):
        stats = driver.run(0)
        assert stats.ticks == 0
        assert db.extent("readings") == 0

    def test_probe_series(self, db, driver):
        driver.probe_each_tick(
            lambda tick, db, stats: stats.record("extent", db.extent("readings"))
        )
        stats = driver.run(4)
        assert stats.series["extent"] == [5, 10, 15, 20]

    def test_decay_applies_during_replay(self, db):
        generator = SensorGenerator(num_sensors=3, seed=1)
        db.create_table(
            "decaying", generator.schema, fungus=LinearDecayFungus(rate=0.5)
        )
        driver = ReplayDriver(db, "decaying", ConstantArrivals(10), generator)
        driver.run(10)
        # each tuple survives exactly 2 ticks under rate 0.5
        assert db.extent("decaying") == pytest.approx(20, abs=10)

    def test_record_appends(self, driver):
        stats = driver.run(0)
        stats.record("x", 1)
        stats.record("x", 2)
        assert stats.series["x"] == [1, 2]
