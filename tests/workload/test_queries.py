"""Tests for repro.workload.queries."""

import pytest

from repro.errors import WorkloadError
from repro.query import parse
from repro.workload.queries import QueryMix, QueryWorkload


def make_workload(**overrides):
    defaults = dict(
        table="r",
        key_column="key",
        key_values=["a", "b"],
        value_column="v",
        horizon=100.0,
        seed=1,
    )
    defaults.update(overrides)
    return QueryWorkload(**defaults)


class TestValidation:
    def test_needs_key_values(self):
        with pytest.raises(WorkloadError):
            make_workload(key_values=[])

    def test_bad_horizon(self):
        with pytest.raises(WorkloadError):
            make_workload(horizon=0)

    def test_bad_mix(self):
        with pytest.raises(WorkloadError):
            QueryMix(point=-1)
        with pytest.raises(WorkloadError):
            QueryMix(point=0, time_range=0, aggregate=0, consume=0)

    def test_negative_count(self):
        with pytest.raises(WorkloadError):
            list(make_workload().queries(-1))


class TestGeneration:
    def test_all_queries_parse(self):
        workload = make_workload()
        for sql in workload.queries(200):
            parse(sql)

    def test_deterministic(self):
        a = list(make_workload(seed=9).queries(50))
        b = list(make_workload(seed=9).queries(50))
        assert a == b

    def test_mix_respected(self):
        workload = make_workload(mix=QueryMix(point=1, time_range=0, aggregate=0, consume=0))
        assert all("key =" in sql for sql in workload.queries(50))

    def test_consume_only_mix(self):
        workload = make_workload(mix=QueryMix(point=0, time_range=0, aggregate=0, consume=1))
        assert all(sql.startswith("CONSUME") for sql in workload.queries(20))

    def test_time_ranges_within_horizon(self):
        workload = make_workload(
            horizon=50.0,
            range_fraction=0.1,
            mix=QueryMix(point=0, time_range=1, aggregate=0, consume=0),
        )
        for sql in workload.queries(100):
            stmt = parse(sql)
            low, high = stmt.where.low.value, stmt.where.high.value
            assert 0.0 <= low <= high <= 50.0 + 1e-6
            assert high - low == pytest.approx(5.0, abs=1e-3)

    def test_aggregate_shape(self):
        workload = make_workload(mix=QueryMix(point=0, time_range=0, aggregate=1, consume=0))
        sql = next(iter(workload.queries(1)))
        assert "GROUP BY" in sql and "avg(" in sql
