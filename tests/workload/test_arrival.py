"""Tests for repro.workload.arrival."""

import pytest

from repro.errors import WorkloadError
from repro.workload.arrival import (
    BurstyArrivals,
    ChessboardArrivals,
    ConstantArrivals,
    PoissonArrivals,
    cumulative_arrivals,
)


class TestConstant:
    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantArrivals(-1)

    def test_constant(self):
        arr = ConstantArrivals(7)
        assert [arr.count_at(t) for t in range(5)] == [7] * 5


class TestPoisson:
    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(-1)

    def test_deterministic_per_tick(self):
        a, b = PoissonArrivals(5.0, seed=1), PoissonArrivals(5.0, seed=1)
        assert [a.count_at(t) for t in range(20)] == [b.count_at(t) for t in range(20)]

    def test_mean_close_to_rate(self):
        arr = PoissonArrivals(10.0, seed=2)
        counts = [arr.count_at(t) for t in range(2000)]
        assert sum(counts) / len(counts) == pytest.approx(10.0, rel=0.05)

    def test_zero_rate(self):
        arr = PoissonArrivals(0.0)
        assert arr.count_at(3) == 0


class TestBursty:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            BurstyArrivals(10, 0)
        with pytest.raises(WorkloadError):
            BurstyArrivals(10, 5, burst_factor=0.5)

    def test_burst_shape(self):
        arr = BurstyArrivals(10, period=5, burst_factor=3.0, burst_length=2)
        counts = [arr.count_at(t) for t in range(10)]
        assert counts == [30, 30, 10, 10, 10, 30, 30, 10, 10, 10]


class TestChessboard:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ChessboardArrivals(initial=0)

    def test_doubling(self):
        arr = ChessboardArrivals(initial=1, doubling_period=1, cap=10**9)
        assert [arr.count_at(t) for t in range(6)] == [1, 2, 4, 8, 16, 32]

    def test_doubling_period(self):
        arr = ChessboardArrivals(initial=3, doubling_period=2, cap=10**9)
        assert [arr.count_at(t) for t in range(6)] == [3, 3, 6, 6, 12, 12]

    def test_cap(self):
        arr = ChessboardArrivals(initial=1, doubling_period=1, cap=100)
        assert arr.count_at(20) == 100

    def test_extreme_square_capped(self):
        arr = ChessboardArrivals(initial=1, doubling_period=1, cap=500)
        assert arr.count_at(70) == 500  # square >= 63 shortcut


class TestCumulative:
    def test_running_total(self):
        arr = ConstantArrivals(2)
        assert list(cumulative_arrivals(arr, 4)) == [2, 4, 6, 8]
