"""Tests for workload trace record/replay."""

import json

import pytest

from repro.core.db import FungusDB
from repro.errors import WorkloadError
from repro.fungi import LinearDecayFungus
from repro.storage import Schema
from repro.workload.trace import RecordingDB, TraceRecorder, replay_trace


def make_db(seed=3):
    db = FungusDB(seed=seed)
    db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5))
    return db


class TestRecorder:
    def test_event_counting(self):
        rec = TraceRecorder()
        rec.insert("r", {"v": 1})
        rec.query("SELECT v FROM r")
        rec.advance(2)
        assert rec.events == 4

    def test_negative_advance_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRecorder().advance(-1)

    def test_save_is_atomic(self, tmp_path):
        rec = TraceRecorder()
        rec.insert("r", {"v": 1})
        path = tmp_path / "trace.jsonl"
        assert rec.save(path) == 1
        assert not (tmp_path / "trace.jsonl.tmp").exists()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"


class TestRoundTrip:
    def test_recorded_run_replays_identically(self, tmp_path):
        recorded = RecordingDB(make_db(seed=3))
        for tick in range(10):
            recorded.insert("r", {"v": tick})
            if tick % 3 == 0:
                recorded.query(f"CONSUME SELECT v FROM r WHERE v = {tick - 2}")
            recorded.tick(1)
        path = tmp_path / "trace.jsonl"
        recorded.recorder.save(path)

        fresh = make_db(seed=3)
        counts = replay_trace(path, fresh)
        assert counts == {"insert": 10, "query": 4, "advance": 10}
        assert fresh.now == recorded.db.now
        assert fresh.table("r").rows() == recorded.db.table("r").rows()

    def test_replay_drives_different_configuration(self, tmp_path):
        recorded = RecordingDB(make_db(seed=1))
        for tick in range(5):
            recorded.insert("r", {"v": tick})
            recorded.tick(1)
        path = tmp_path / "trace.jsonl"
        recorded.recorder.save(path)

        # the same workload against a no-decay table keeps everything
        hoard = FungusDB(seed=1)
        hoard.create_table("r", Schema.of(v="int"))
        replay_trace(path, hoard)
        assert hoard.extent("r") == 5
        assert recorded.db.extent("r") < 5

    def test_insert_many_recorded_per_row(self, tmp_path):
        recorded = RecordingDB(make_db())
        recorded.insert_many("r", [{"v": 1}, {"v": 2}])
        assert recorded.recorder.events == 2


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            replay_trace(tmp_path / "nope.jsonl", make_db())

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{oops\n")
        with pytest.raises(WorkloadError, match="corrupt header"):
            replay_trace(path, make_db())

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "insert"}) + "\n")
        with pytest.raises(WorkloadError, match="header"):
            replay_trace(path, make_db())

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "header", "trace_version": 99}) + "\n")
        with pytest.raises(WorkloadError, match="version"):
            replay_trace(path, make_db())

    def test_corrupt_event(self, tmp_path):
        rec = TraceRecorder()
        path = tmp_path / "bad.jsonl"
        rec.save(path)
        with open(path, "a") as fh:
            fh.write("{broken\n")
        with pytest.raises(WorkloadError, match="corrupt"):
            replay_trace(path, make_db())

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "trace_version": 1})
            + "\n"
            + json.dumps({"kind": "mystery"})
            + "\n"
        )
        with pytest.raises(WorkloadError, match="unknown kind"):
            replay_trace(path, make_db())
