"""Tests for the EGI fungus — the paper's worked example."""

import random

import pytest

from repro.core.clock import DecayClock
from repro.core.events import TupleInfected
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.fungi import EGIFungus
from repro.storage import RowSet, Schema


@pytest.fixture
def big_table(clock):
    table = DecayingTable("r", Schema.of(v="int"), clock)
    for i in range(100):
        table.insert({"v": i})
    clock.advance(1)
    return table


@pytest.fixture
def rng():
    return random.Random(7)


class TestValidation:
    def test_parameters(self):
        with pytest.raises(DecayError):
            EGIFungus(seeds_per_cycle=-1)
        with pytest.raises(DecayError):
            EGIFungus(decay_rate=0)
        with pytest.raises(DecayError):
            EGIFungus(age_bias=0)


class TestSeeding:
    def test_seeds_per_cycle(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=3, decay_rate=0.1, spread=False)
        report = fungus.cycle(big_table, rng)
        assert report.seeded == 3
        assert len(fungus.infected) == 3

    def test_zero_seeds_never_infects(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=0, decay_rate=0.1)
        report = fungus.cycle(big_table, rng)
        assert report.seeded == 0
        assert report.decayed == 0

    def test_seeding_publishes_infection_events(self, big_table, rng):
        seen = []
        big_table.bus.subscribe(TupleInfected, seen.append)
        EGIFungus(seeds_per_cycle=2, decay_rate=0.1, spread=False).cycle(big_table, rng)
        assert len(seen) == 2
        assert all(e.fungus == "egi" for e in seen)

    def test_age_bias_prefers_old_tuples(self, clock, rng):
        # 50 old tuples, then 50 young; with tournament selection the
        # seeds should land overwhelmingly in the old half
        table = DecayingTable("r", Schema.of(v="int"), clock)
        for i in range(50):
            table.insert({"v": i})
        clock.advance(100)
        for i in range(50):
            table.insert({"v": i})
        clock.advance(1)
        old_hits = 0
        for trial in range(50):
            fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.01, spread=False, age_bias=8)
            fungus.cycle(table, random.Random(trial))
            (seed,) = fungus.infected
            if seed < 50:
                old_hits += 1
        assert old_hits >= 40

    def test_exact_age_weighting_mode(self, clock, rng):
        table = DecayingTable("r", Schema.of(v="int"), clock)
        table.insert({"v": 0})
        clock.advance(1000)
        table.insert({"v": 1})
        clock.advance(1)
        hits = 0
        for trial in range(50):
            fungus = EGIFungus(
                seeds_per_cycle=1, decay_rate=0.01, spread=False, exact_age_weighting=True
            )
            fungus.cycle(table, random.Random(trial))
            if 0 in fungus.infected:
                hits += 1
        assert hits >= 45  # 1000:1 age weighting

    def test_empty_table(self, clock, rng):
        table = DecayingTable("r", Schema.of(v="int"), clock)
        report = EGIFungus().cycle(table, rng)
        assert report.seeded == 0


class TestSpread:
    def test_neighbours_infected(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.1, spread=True)
        fungus.cycle(big_table, rng)
        infected = sorted(fungus.infected)
        assert len(infected) == 3  # seed + both neighbours
        assert infected[1] - infected[0] == 1
        assert infected[2] - infected[1] == 1

    def test_spot_grows_one_per_side_per_cycle(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.01, spread=True)
        fungus.cycle(big_table, rng)
        first = len(fungus.infected)
        # prevent new seeds by exhausting the budget with 0 further seeds
        fungus.seeds_per_cycle = 0
        fungus.cycle(big_table, rng)
        assert len(fungus.infected) == first + 2

    def test_infection_is_contiguous(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.01, spread=True)
        for _ in range(5):
            fungus.cycle(big_table, rng)
        spans = RowSet(fungus.infected).spans()
        assert len(spans) <= 5  # one spot per seed at most

    def test_no_spread_mode(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.01, spread=False)
        fungus.cycle(big_table, rng)
        fungus.seeds_per_cycle = 0
        fungus.cycle(big_table, rng)
        assert len(fungus.infected) == 1

    def test_equal_rate_for_all_infected(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.2, spread=True)
        fungus.cycle(big_table, rng)
        for rid in fungus.infected:
            assert big_table.freshness(rid) == pytest.approx(0.8)


class TestLifecycle:
    def test_extinction(self, clock, rng):
        table = DecayingTable("r", Schema.of(v="int"), clock)
        for i in range(30):
            table.insert({"v": i})
        clock.advance(1)
        fungus = EGIFungus(seeds_per_cycle=2, decay_rate=0.5)
        for _ in range(100):
            fungus.cycle(table, rng)
            table.evict(table.exhausted, "decay")
            for rid in list(fungus.infected):
                if not table.is_live(rid):
                    fungus.on_evicted(rid)
            if len(table) == 0:
                break
        assert len(table) == 0

    def test_on_evicted_cleans_state(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.1)
        fungus.cycle(big_table, rng)
        rid = next(iter(fungus.infected))
        fungus.on_evicted(rid)
        assert rid not in fungus.infected

    def test_on_compacted_remaps(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.1)
        fungus.cycle(big_table, rng)
        old_infected = set(fungus.infected)
        big_table.evict(RowSet([0]), "manual")
        if 0 in old_infected:
            fungus.on_evicted(0)
            old_infected.discard(0)
        remap = big_table.compact()
        fungus.on_compacted(remap)
        assert fungus.infected == frozenset(remap[rid] for rid in old_infected)

    def test_reset(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=2, decay_rate=0.1)
        fungus.cycle(big_table, rng)
        fungus.reset()
        assert fungus.infected == frozenset()

    def test_stale_infected_rows_dropped_on_cycle(self, big_table, rng):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.1)
        fungus.cycle(big_table, rng)
        rid = next(iter(fungus.infected))
        big_table.evict(RowSet([rid]), "manual")
        fungus.cycle(big_table, rng)  # must not crash on the dead rid
        assert all(big_table.is_live(r) for r in fungus.infected)
