"""Tests for the access-refresh fungus."""

import random

import pytest

from repro.errors import DecayError
from repro.fungi import AccessRefreshFungus, LinearDecayFungus
from repro.storage import RowSet


@pytest.fixture
def rng():
    return random.Random(5)


class TestValidation:
    def test_boost_range(self):
        inner = LinearDecayFungus(rate=0.1)
        with pytest.raises(DecayError):
            AccessRefreshFungus(inner, boost=0)
        with pytest.raises(DecayError):
            AccessRefreshFungus(inner, boost=1.5)
        with pytest.raises(DecayError):
            AccessRefreshFungus(inner, max_freshness=0)

    def test_name_mentions_inner(self):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.1))
        assert "linear" in fungus.name


class TestRefresh:
    def test_accessed_rows_gain_freshness(self, decaying, rng):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.1), boost=0.5)
        decaying.set_freshness(0, 0.3)
        decaying.set_freshness(1, 0.3)
        fungus.note_access(RowSet([0]))
        fungus.cycle(decaying, rng)
        # row 0: 0.3 + 0.5 boost - 0.1 decay; row 1: 0.3 - 0.1
        assert decaying.freshness(0) == pytest.approx(0.7)
        assert decaying.freshness(1) == pytest.approx(0.2)
        assert fungus.total_refreshed == 1

    def test_boost_capped_at_max(self, decaying, rng):
        fungus = AccessRefreshFungus(
            LinearDecayFungus(rate=0.01), boost=0.9, max_freshness=0.8
        )
        decaying.set_freshness(0, 0.5)
        fungus.note_access(RowSet([0]))
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.79)

    def test_pending_cleared_each_cycle(self, decaying, rng):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.1), boost=0.5)
        decaying.set_freshness(0, 0.2)
        fungus.note_access(RowSet([0]))
        fungus.cycle(decaying, rng)
        fungus.cycle(decaying, rng)  # no new access: no second boost
        assert decaying.freshness(0) == pytest.approx(0.2 + 0.5 - 0.2)

    def test_dead_pending_rows_skipped(self, decaying, rng):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.1), boost=0.5)
        fungus.note_access(RowSet([0]))
        decaying.evict(RowSet([0]), "manual")
        fungus.cycle(decaying, rng)  # must not crash

    def test_report_carries_wrapper_name(self, decaying, rng):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.1))
        report = fungus.cycle(decaying, rng)
        assert report.fungus == fungus.name
        assert report.decayed == 10


class TestStatePlumbing:
    def test_on_evicted_forwards(self, decaying):
        inner = LinearDecayFungus(rate=0.1)
        fungus = AccessRefreshFungus(inner)
        fungus.note_access(RowSet([3]))
        fungus.on_evicted(3)
        assert 3 not in fungus._pending

    def test_on_compacted_remaps_pending(self, decaying):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.1))
        fungus.note_access(RowSet([5]))
        fungus.on_compacted({5: 2})
        assert fungus._pending == {2}

    def test_reset(self, decaying):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.1))
        fungus.note_access(RowSet([1]))
        fungus.reset()
        assert fungus._pending == set()
