"""Statistical checks on the fungus library's distributions.

The deterministic fungi are covered exactly by the differential oracle
in ``tests/sim``; the *stochastic* machinery — EGI's age-biased seed
selection — cannot be mirrored tuple-for-tuple, so it is tested here
the way one tests a die: draw many samples and run goodness-of-fit
tests against the distribution the docstring promises. The
deterministic curves get closed-form checks over several seeded runs
(the seed must not matter for them — that is part of the contract).
"""

import math
import random

import pytest

from repro.core.clock import DecayClock
from repro.core.table import DecayingTable
from repro.fungi import (
    EGIFungus,
    ExponentialDecayFungus,
    LinearDecayFungus,
    SigmoidDecayFungus,
)
from repro.storage import Schema

# chi-square critical values at alpha = 0.001 — generous enough that a
# correct implementation fails roughly one run in a thousand, while the
# biases we guard against overshoot these by orders of magnitude.
CHI2_CRIT_001 = {1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47, 5: 20.52, 9: 27.88}


def chi_square(observed, expected):
    """Pearson's goodness-of-fit statistic."""
    assert len(observed) == len(expected)
    return sum((o - e) ** 2 / e for o, e in zip(observed, expected))


def make_aged_table(ages, clock=None):
    """One row per requested age, oldest first (row id == index)."""
    clock = clock or DecayClock()
    table = DecayingTable("r", Schema.of(v="int"), clock)
    horizon = max(ages)
    for i, age in enumerate(ages):
        while clock.now < horizon - age:
            clock.advance(1)
        table.insert({"v": i})
    while clock.now < horizon:
        clock.advance(1)
    return table


class TestEGISeedIsAgeBiased:
    """"select an element from R inversely randomly correlated with its
    age" — seed frequency must rise with tuple age."""

    def test_exact_weighting_matches_age_proportional_law(self):
        ages = [9.0, 7.0, 5.0, 3.0, 1.0]
        table = make_aged_table(ages)
        fungus = EGIFungus(exact_age_weighting=True)
        rng = random.Random(42)
        draws = 5000
        counts = [0] * len(ages)
        for _ in range(draws):
            counts[fungus._select_seed(table, rng)] += 1
        weights = [age + 1.0 for age in ages]
        total = sum(weights)
        expected = [draws * w / total for w in weights]
        stat = chi_square(counts, expected)
        assert stat < CHI2_CRIT_001[len(ages) - 1], (
            f"chi2={stat:.1f}, observed={counts}, expected={expected}"
        )

    def test_exact_weighting_is_not_uniform(self):
        """The same draws must *reject* the uniform null hypothesis."""
        ages = [9.0, 7.0, 5.0, 3.0, 1.0]
        table = make_aged_table(ages)
        fungus = EGIFungus(exact_age_weighting=True)
        rng = random.Random(42)
        draws = 5000
        counts = [0] * len(ages)
        for _ in range(draws):
            counts[fungus._select_seed(table, rng)] += 1
        uniform = [draws / len(ages)] * len(ages)
        assert chi_square(counts, uniform) > CHI2_CRIT_001[len(ages) - 1]

    def test_tournament_default_prefers_old_tuples(self):
        """Tournament selection (min rid of ``age_bias`` uniform
        candidates): the oldest decile should win far more than its
        uniform 10% share, and frequency should fall with recency."""
        n, bias, draws = 50, 8, 4000
        table = make_aged_table([float(n - i) for i in range(n)])
        fungus = EGIFungus(age_bias=bias)
        rng = random.Random(7)
        counts = [0] * n
        for _ in range(draws):
            counts[fungus._select_seed(table, rng)] += 1
        oldest_decile = sum(counts[: n // 10])
        uniform_share = draws // 10
        assert oldest_decile > 3 * uniform_share
        first_half = sum(counts[: n // 2])
        assert first_half > 0.95 * draws  # min-of-8 almost never lands late

    def test_tournament_rejects_uniformity(self):
        """KS-style check: the empirical CDF of the selected row rank
        must deviate from the uniform CDF by far more than the
        alpha=0.001 critical band."""
        n, draws = 50, 4000
        table = make_aged_table([float(n - i) for i in range(n)])
        fungus = EGIFungus(age_bias=8)
        rng = random.Random(11)
        counts = [0] * n
        for _ in range(draws):
            counts[fungus._select_seed(table, rng)] += 1
        max_gap = 0.0
        cumulative = 0
        for i in range(n):
            cumulative += counts[i]
            max_gap = max(max_gap, abs(cumulative / draws - (i + 1) / n))
        ks_crit = 1.949 / math.sqrt(draws)  # alpha = 0.001
        assert max_gap > 10 * ks_crit

    def test_infected_rows_excluded_from_seeding(self):
        table = make_aged_table([3.0, 2.0, 1.0])
        fungus = EGIFungus(exact_age_weighting=True)
        fungus._spots.add_span(0, 1)
        rng = random.Random(1)
        assert all(fungus._select_seed(table, rng) == 2 for _ in range(50))


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestDeterministicClosedForms:
    """The deterministic curves must match their closed forms for every
    rng seed — the rng parameter is part of the Fungus interface but
    these organisms may not consume it."""

    def _run(self, fungus, cycles, seed):
        clock = DecayClock()
        table = DecayingTable("r", Schema.of(v="int"), clock)
        rid = table.insert({"v": 1})
        rng = random.Random(seed)
        trace = []
        for _ in range(cycles):
            clock.advance(1)
            fungus.cycle(table, rng)
            trace.append(table.freshness(rid))
        return trace

    def test_linear_is_one_minus_n_times_rate(self, seed):
        rate = 0.15
        trace = self._run(LinearDecayFungus(rate=rate), 8, seed)
        for n, observed in enumerate(trace, start=1):
            assert observed == pytest.approx(max(0.0, 1.0 - n * rate), abs=1e-12)

    def test_exponential_is_geometric_with_floor(self, seed):
        half_life, evict_below = 3.0, 0.05
        fungus = ExponentialDecayFungus(half_life=half_life, evict_below=evict_below)
        trace = self._run(fungus, 16, seed)
        for n, observed in enumerate(trace, start=1):
            closed = 0.5 ** (n / half_life)
            if closed < evict_below:
                assert observed == 0.0
            else:
                assert observed == pytest.approx(closed, rel=1e-9)
        assert trace[int(half_life) - 1] == pytest.approx(0.5, rel=1e-9)

    def test_sigmoid_follows_the_logistic_curve(self, seed):
        midlife, steepness, evict_below = 6.0, 0.9, 0.05
        fungus = SigmoidDecayFungus(
            midlife=midlife, steepness=steepness, evict_below=evict_below
        )
        trace = self._run(fungus, 14, seed)
        for n, observed in enumerate(trace, start=1):
            closed = 1.0 / (1.0 + math.exp(steepness * (n - midlife)))
            if closed < evict_below:
                assert observed == 0.0
            else:
                assert observed == pytest.approx(closed, rel=1e-9)

    def test_curves_are_monotone_non_increasing(self, seed):
        for fungus in (
            LinearDecayFungus(rate=0.1),
            ExponentialDecayFungus(half_life=4.0),
            SigmoidDecayFungus(midlife=5.0, steepness=1.0),
        ):
            trace = self._run(fungus, 20, seed)
            assert all(a >= b for a, b in zip(trace, trace[1:]))
            assert all(0.0 <= f <= 1.0 for f in trace)
