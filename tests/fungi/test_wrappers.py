"""Tests for NullFungus, PredicateFungus, CompositeFungus."""

import random

import pytest

from repro.errors import DecayError
from repro.fungi import CompositeFungus, LinearDecayFungus, NullFungus, PredicateFungus


@pytest.fixture
def rng():
    return random.Random(2)


class TestNull:
    def test_decays_nothing(self, decaying, rng):
        report = NullFungus().cycle(decaying, rng)
        assert report.decayed == 0
        assert all(decaying.freshness(rid) == 1.0 for rid in decaying.live_rows())


class TestPredicate:
    def test_rate_validated(self):
        with pytest.raises(DecayError):
            PredicateFungus(lambda a: True, rate=0)

    def test_only_matching_rows_decay(self, decaying, rng):
        fungus = PredicateFungus(lambda attrs: attrs["v"] % 2 == 0, rate=0.3)
        fungus.cycle(decaying, rng)
        assert decaying.freshness(2) == pytest.approx(0.7)
        assert decaying.freshness(3) == 1.0

    def test_predicate_sees_attributes_not_t_f(self, decaying, rng):
        seen_keys = set()

        def predicate(attrs):
            seen_keys.update(attrs)
            return False

        PredicateFungus(predicate, rate=0.1).cycle(decaying, rng)
        assert seen_keys == {"v"}

    def test_custom_name(self, decaying, rng):
        fungus = PredicateFungus(lambda a: True, rate=0.1, name="rot-evens")
        assert fungus.cycle(decaying, rng).fungus == "rot-evens"

    def test_skips_exhausted(self, decaying, rng):
        fungus = PredicateFungus(lambda a: True, rate=1.0)
        fungus.cycle(decaying, rng)
        report = fungus.cycle(decaying, rng)
        assert report.decayed == 0


class TestComposite:
    def test_needs_fungi(self):
        with pytest.raises(DecayError):
            CompositeFungus([])

    def test_runs_in_sequence(self, decaying, rng):
        fungus = CompositeFungus(
            [LinearDecayFungus(rate=0.1), LinearDecayFungus(rate=0.2)]
        )
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.7)

    def test_merged_report(self, decaying, rng):
        fungus = CompositeFungus(
            [LinearDecayFungus(rate=0.1), LinearDecayFungus(rate=0.2)]
        )
        report = fungus.cycle(decaying, rng)
        assert report.decayed == 20
        assert report.freshness_removed == pytest.approx(3.0)
        assert report.fungus == "linear+linear"

    def test_name_concatenates(self):
        fungus = CompositeFungus([NullFungus(), LinearDecayFungus(rate=0.1)])
        assert fungus.name == "null+linear"

    def test_state_plumbing_forwards(self, decaying):
        from repro.fungi import EGIFungus

        inner = EGIFungus(seeds_per_cycle=1, decay_rate=0.1)
        fungus = CompositeFungus([inner])
        inner._spots.add(3)
        fungus.on_evicted(3)
        assert 3 not in inner.infected
        inner._spots.add(5)
        fungus.on_compacted({5: 1})
        assert inner.infected == frozenset([1])
        fungus.reset()
        assert inner.infected == frozenset()
