"""Tests for the sigmoid (logistic) decay fungus."""

import random

import pytest

from repro.errors import DecayError
from repro.fungi import SigmoidDecayFungus


@pytest.fixture
def rng():
    return random.Random(4)


class TestValidation:
    def test_parameters(self):
        with pytest.raises(DecayError):
            SigmoidDecayFungus(midlife=0)
        with pytest.raises(DecayError):
            SigmoidDecayFungus(midlife=10, steepness=0)
        with pytest.raises(DecayError):
            SigmoidDecayFungus(midlife=10, evict_below=1.0)


class TestCurve:
    def test_half_at_midlife(self):
        fungus = SigmoidDecayFungus(midlife=10)
        assert fungus.target_freshness(10.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        fungus = SigmoidDecayFungus(midlife=10, steepness=0.8)
        values = [fungus.target_freshness(a) for a in range(0, 30)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_young_stays_fresh(self):
        fungus = SigmoidDecayFungus(midlife=20, steepness=0.5)
        assert fungus.target_freshness(0.0) > 0.99

    def test_old_hits_floor(self):
        fungus = SigmoidDecayFungus(midlife=5, steepness=1.0, evict_below=0.05)
        assert fungus.target_freshness(50.0) == 0.0

    def test_extreme_ages_do_not_overflow(self):
        fungus = SigmoidDecayFungus(midlife=10, steepness=5.0)
        assert fungus.target_freshness(1e9) == 0.0
        assert fungus.target_freshness(-1e9) == 1.0

    def test_steeper_is_sharper(self):
        gentle = SigmoidDecayFungus(midlife=10, steepness=0.2)
        sharp = SigmoidDecayFungus(midlife=10, steepness=2.0)
        # just before midlife the sharp curve is fresher,
        # just after it is deader
        assert sharp.target_freshness(7) > gentle.target_freshness(7)
        assert sharp.target_freshness(13) < gentle.target_freshness(13)


class TestCycle:
    def test_tracks_curve_over_time(self, clock, decaying, rng):
        fungus = SigmoidDecayFungus(midlife=4, steepness=1.0, evict_below=0.0)
        clock.advance(4)
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.5)

    def test_never_raises_freshness(self, clock, decaying, rng):
        fungus = SigmoidDecayFungus(midlife=100)
        decaying.set_freshness(0, 0.2)
        clock.advance(1)
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.2)

    def test_eventual_exhaustion(self, clock, decaying, rng):
        fungus = SigmoidDecayFungus(midlife=3, steepness=2.0, evict_below=0.1)
        clock.advance(10)
        report = fungus.cycle(decaying, rng)
        assert report.newly_exhausted == 10

    def test_full_lifecycle_in_db(self):
        from repro import FungusDB, Schema

        db = FungusDB(seed=1)
        db.create_table(
            "r", Schema.of(v="int"), fungus=SigmoidDecayFungus(midlife=5, steepness=1.5)
        )
        db.insert("r", {"v": 1})
        db.tick(3)
        mid = db.table("r").freshness_values()
        assert mid and mid[0] > 0.8  # still fresh before midlife
        db.tick(20)
        assert db.extent("r") == 0  # long gone after midlife
