"""SpotSet invariants: sorted disjoint non-adjacent inclusive spans."""

import random

import pytest

from repro.fungi import SpotSet


def check_invariants(spots: SpotSet) -> None:
    spans = spots.spans()
    for lo, hi in spans:
        assert lo <= hi
    for (_, prev_hi), (next_lo, _) in zip(spans, spans[1:]):
        assert prev_hi + 1 < next_lo, f"adjacent/overlapping spans: {spans}"


class TestAdd:
    def test_single_member(self):
        s = SpotSet()
        assert s.add(5)
        assert s.spans() == [(5, 5)]
        assert s.covers(5)
        assert not s.covers(4) and not s.covers(6)

    def test_add_existing_is_noop(self):
        s = SpotSet([(3, 7)])
        assert not s.add(5)
        assert s.spans() == [(3, 7)]

    def test_adjacent_left_extends(self):
        s = SpotSet([(3, 5)])
        assert s.add(6)
        assert s.spans() == [(3, 6)]

    def test_adjacent_right_extends(self):
        s = SpotSet([(3, 5)])
        assert s.add(2)
        assert s.spans() == [(2, 5)]

    def test_bridging_member_merges_two_spans(self):
        s = SpotSet([(1, 3), (5, 8)])
        assert s.add(4)
        assert s.spans() == [(1, 8)]

    def test_isolated_member_opens_new_span(self):
        s = SpotSet([(1, 2)])
        assert s.add(10)
        assert s.spans() == [(1, 2), (10, 10)]

    def test_len_and_bool(self):
        s = SpotSet()
        assert not s and len(s) == 0
        s.add_span(4, 6)
        s.add(9)
        assert s and len(s) == 4

    def test_members_ascending(self):
        s = SpotSet([(5, 6), (1, 2)])
        assert list(s.members()) == [1, 2, 5, 6]

    def test_add_span_rejects_inverted(self):
        with pytest.raises(ValueError):
            SpotSet().add_span(5, 3)


class TestRemove:
    def test_remove_non_member(self):
        s = SpotSet([(3, 5)])
        assert not s.remove(9)
        assert s.spans() == [(3, 5)]

    def test_remove_singleton_drops_span(self):
        s = SpotSet([(4, 4), (8, 9)])
        assert s.remove(4)
        assert s.spans() == [(8, 9)]

    def test_remove_edge_trims(self):
        s = SpotSet([(3, 6)])
        assert s.remove(3)
        assert s.spans() == [(4, 6)]
        assert s.remove(6)
        assert s.spans() == [(4, 5)]

    def test_remove_interior_splits(self):
        s = SpotSet([(3, 8)])
        assert s.remove(5)
        assert s.spans() == [(3, 4), (6, 8)]
        check_invariants(s)


class TestReplaceAndRemap:
    def test_replace_trusts_sorted_runs(self):
        s = SpotSet([(1, 20)])
        s.replace([(2, 4), (9, 11)])
        assert s.spans() == [(2, 4), (9, 11)]

    def test_replace_merges_touching_input(self):
        s = SpotSet()
        s.replace([(1, 3), (4, 6), (9, 9)])
        assert s.spans() == [(1, 6), (9, 9)]

    def test_remap_drops_dead_and_merges(self):
        s = SpotSet([(2, 4), (8, 9)])
        # rows 3 and 8 died; survivors close ranks
        remap = {2: 0, 4: 1, 9: 2}
        s.remap(remap)
        assert s.spans() == [(0, 2)]

    def test_remap_empty(self):
        s = SpotSet([(2, 4)])
        s.remap({})
        assert not s

    def test_clear(self):
        s = SpotSet([(1, 5)])
        s.clear()
        assert not s and s.spans() == []


class TestAgainstSetModel:
    def test_random_mutations_match_a_plain_set(self):
        """SpotSet is an interval-coded set: same semantics as set[int]."""
        rng = random.Random(7)
        spots, model = SpotSet(), set()
        for _ in range(2000):
            rid = rng.randrange(80)
            if rng.random() < 0.55:
                assert spots.add(rid) == (rid not in model)
                model.add(rid)
            else:
                assert spots.remove(rid) == (rid in model)
                model.discard(rid)
            assert spots.covers(rid) == (rid in model)
        assert list(spots.members()) == sorted(model)
        assert len(spots) == len(model)
        check_invariants(spots)
