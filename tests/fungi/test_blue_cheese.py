"""Tests for the Blue Cheese fungus."""

import random

import pytest

from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.fungi import BlueCheeseFungus
from repro.storage import RowSet, Schema


@pytest.fixture
def big_table(clock):
    table = DecayingTable("r", Schema.of(v="int"), clock)
    for i in range(100):
        table.insert({"v": i})
    clock.advance(1)
    return table


@pytest.fixture
def rng():
    return random.Random(3)


class TestValidation:
    def test_parameters(self):
        with pytest.raises(DecayError):
            BlueCheeseFungus(max_spots=0)
        with pytest.raises(DecayError):
            BlueCheeseFungus(base_rate=0)
        with pytest.raises(DecayError):
            BlueCheeseFungus(acceleration=-0.1)
        with pytest.raises(DecayError):
            BlueCheeseFungus(age_bias=0)


class TestSpots:
    def test_one_seed_per_cycle_up_to_budget(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=3, base_rate=0.01)
        for _ in range(10):
            fungus.cycle(big_table, rng)
        assert len(fungus.spots) == 3

    def test_spots_grow_both_sides(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=1, base_rate=0.001)
        fungus.cycle(big_table, rng)
        fungus.cycle(big_table, rng)
        (spot,) = fungus.spots
        assert len(spot) == 5  # seed, then +2 per cycle for 2 cycles

    def test_spots_are_contiguous(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=2, base_rate=0.001)
        for _ in range(6):
            fungus.cycle(big_table, rng)
        for spot in fungus.spots:
            spans = RowSet(spot).spans()
            assert len(spans) == 1

    def test_spots_do_not_overlap(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=3, base_rate=0.001)
        for _ in range(8):
            fungus.cycle(big_table, rng)
        all_members = [rid for spot in fungus.spots for rid in spot]
        assert len(all_members) == len(set(all_members))

    def test_decay_accelerates_with_spot_age(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=1, base_rate=0.1, acceleration=1.0)
        fungus.cycle(big_table, rng)  # rate 0.1 applied to seed
        (spot,) = fungus.spots
        seed = next(iter(spot))
        after_first = big_table.freshness(seed)
        fungus.cycle(big_table, rng)  # rate 0.2 this time
        after_second = big_table.freshness(seed)
        assert after_first - after_second == pytest.approx(0.2)
        assert 1.0 - after_first == pytest.approx(0.1)

    def test_rate_capped_at_one(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=1, base_rate=0.9, acceleration=10.0)
        for _ in range(3):
            fungus.cycle(big_table, rng)  # no crash; rows just hit 0


class TestLifecycle:
    def test_finished_spots_are_replaced(self, clock, rng):
        table = DecayingTable("r", Schema.of(v="int"), clock)
        for i in range(30):
            table.insert({"v": i})
        clock.advance(1)
        fungus = BlueCheeseFungus(max_spots=1, base_rate=0.5)
        for _ in range(100):
            fungus.cycle(table, rng)
            table.evict(table.exhausted, "decay")
            if len(table) == 0:
                break
        assert len(table) == 0

    def test_on_evicted(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=1, base_rate=0.01)
        fungus.cycle(big_table, rng)
        rid = next(iter(fungus.spots[0]))
        fungus.on_evicted(rid)
        assert rid not in fungus.spots[0]

    def test_on_compacted(self, big_table, rng):
        fungus = BlueCheeseFungus(max_spots=1, base_rate=0.01)
        fungus.cycle(big_table, rng)
        before = set(fungus.spots[0])
        big_table.evict(RowSet([99]), "manual")
        before.discard(99)
        fungus.on_evicted(99)
        remap = big_table.compact()
        fungus.on_compacted(remap)
        assert set(fungus.spots[0]) == {remap[r] for r in before}

    def test_reset(self, big_table, rng):
        fungus = BlueCheeseFungus()
        fungus.cycle(big_table, rng)
        fungus.reset()
        assert fungus.spots == []
