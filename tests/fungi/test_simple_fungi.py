"""Tests for retention, linear and exponential fungi."""

import random

import pytest

from repro.errors import DecayError
from repro.fungi import ExponentialDecayFungus, LinearDecayFungus, RetentionFungus


@pytest.fixture
def rng():
    return random.Random(0)


class TestRetention:
    def test_max_age_positive(self):
        with pytest.raises(DecayError):
            RetentionFungus(0)

    def test_freshness_ramps_linearly(self, clock, decaying, rng):
        fungus = RetentionFungus(max_age=10)
        clock.advance(5)
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.5)

    def test_expires_exactly_at_max_age(self, clock, decaying, rng):
        fungus = RetentionFungus(max_age=4)
        clock.advance(4)
        report = fungus.cycle(decaying, rng)
        assert report.newly_exhausted == 10
        assert all(decaying.freshness(rid) == 0.0 for rid in decaying.live_rows())

    def test_staggered_inserts_expire_in_order(self, clock, decaying, rng):
        fungus = RetentionFungus(max_age=5)
        clock.advance(3)
        late = decaying.insert({"v": 99})
        clock.advance(2)  # originals now age 5, late age 2
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == 0.0
        assert decaying.freshness(late) == pytest.approx(0.6)

    def test_never_raises_freshness(self, clock, decaying, rng):
        fungus = RetentionFungus(max_age=10)
        decaying.set_freshness(0, 0.1)  # externally lowered below ramp
        clock.advance(1)
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.1)


class TestLinear:
    def test_rate_validated(self):
        with pytest.raises(DecayError):
            LinearDecayFungus(0)
        with pytest.raises(DecayError):
            LinearDecayFungus(1.5)

    def test_constant_loss_per_cycle(self, decaying, rng):
        fungus = LinearDecayFungus(rate=0.3)
        fungus.cycle(decaying, rng)
        assert all(
            decaying.freshness(rid) == pytest.approx(0.7) for rid in decaying.live_rows()
        )

    def test_lifetime_is_inverse_rate(self, decaying, rng):
        fungus = LinearDecayFungus(rate=0.25)
        for _ in range(4):
            fungus.cycle(decaying, rng)
        assert len(decaying.exhausted) == 10

    def test_report_accounting(self, decaying, rng):
        report = LinearDecayFungus(rate=0.5).cycle(decaying, rng)
        assert report.decayed == 10
        assert report.freshness_removed == pytest.approx(5.0)
        assert report.newly_exhausted == 0

    def test_skips_already_exhausted(self, decaying, rng):
        fungus = LinearDecayFungus(rate=1.0)
        fungus.cycle(decaying, rng)
        report = fungus.cycle(decaying, rng)
        assert report.decayed == 0


class TestExponential:
    def test_validation(self):
        with pytest.raises(DecayError):
            ExponentialDecayFungus(0)
        with pytest.raises(DecayError):
            ExponentialDecayFungus(10, evict_below=1.0)

    def test_half_life(self, decaying, rng):
        fungus = ExponentialDecayFungus(half_life=4, evict_below=0.0)
        for _ in range(4):
            fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.5)

    def test_floor_exhausts(self, decaying, rng):
        fungus = ExponentialDecayFungus(half_life=1, evict_below=0.3)
        fungus.cycle(decaying, rng)  # 1.0 -> 0.5
        fungus.cycle(decaying, rng)  # 0.25 < floor -> 0
        assert len(decaying.exhausted) == 10

    def test_decay_is_multiplicative(self, decaying, rng):
        decaying.set_freshness(0, 0.5)
        fungus = ExponentialDecayFungus(half_life=1, evict_below=0.0)
        fungus.cycle(decaying, rng)
        assert decaying.freshness(0) == pytest.approx(0.25)
        assert decaying.freshness(1) == pytest.approx(0.5)
