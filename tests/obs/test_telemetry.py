"""Tests for repro.obs.telemetry — the attach/detach facade."""

import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.fungi import LinearDecayFungus
from repro.obs.export import parse_prometheus, sample_value
from repro.obs.profile import PROFILER
from repro.obs.tracing import NULL_TRACER, validate_spans
from repro.storage.schema import Schema


@pytest.fixture(autouse=True)
def _clean_profiler():
    PROFILER.disable()
    PROFILER.reset()
    yield
    PROFILER.disable()
    PROFILER.reset()


def _workload(db):
    db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.1))
    for i in range(8):
        db.insert("r", {"v": i})
    db.tick(3)
    db.query("CONSUME SELECT v FROM r WHERE v < 2")


class TestAttachDetach:
    def test_enable_is_idempotent(self):
        db = FungusDB(seed=1)
        assert db.enable_telemetry() is db.enable_telemetry()

    def test_metrics_only_leaves_null_tracer(self):
        db = FungusDB(seed=1)
        tel = db.enable_telemetry()
        assert tel.tracing_enabled is False
        assert db.tracer is NULL_TRACER

    def test_tracing_wires_one_shared_tracer(self):
        db = FungusDB(seed=1)
        tel = db.enable_telemetry(tracing=True)
        assert db.tracer is tel.tracer
        assert db.clock.tracer is tel.tracer
        assert db.engine.tracer is tel.tracer

    def test_disable_restores_null_tracer(self):
        db = FungusDB(seed=1)
        db.enable_telemetry(tracing=True, profile=True)
        db.disable_telemetry()
        assert db.telemetry is None
        assert db.tracer is NULL_TRACER
        assert PROFILER.enabled is False
        db.disable_telemetry()  # no-op when not enabled


class TestExposition:
    def test_exposition_parses_and_counts(self):
        db = FungusDB(seed=1)
        tel = db.enable_telemetry()
        _workload(db)
        samples = parse_prometheus(tel.exposition())
        assert sample_value(samples, "repro_inserts_total", table="r") == 8.0
        assert sample_value(samples, "repro_consumed_tuples_total", table="r") == 2.0
        assert sample_value(samples, "repro_extent", table="r") == 6.0

    def test_profiler_sites_folded_into_exposition(self):
        db = FungusDB(seed=1)
        tel = db.enable_telemetry(profile=True)
        _workload(db)
        samples = parse_prometheus(tel.exposition())
        assert sample_value(samples, "repro_hotpath_calls", site="query.scan") > 0


class TestTraceCapture:
    def test_workload_spans_nest_and_validate(self):
        db = FungusDB(seed=1)
        tel = db.enable_telemetry(tracing=True)
        _workload(db)
        spans = tel.tracer.to_dicts()
        assert validate_spans(spans) == []
        names = {span["name"] for span in spans}
        assert {"tick", "clock.advance", "policy.cycle", "query", "consume"} <= names
        # policy.cycle spans are children of a tick span
        by_id = {span["span_id"]: span for span in spans}
        cycle = next(s for s in spans if s["name"] == "policy.cycle")
        assert by_id[cycle["parent_id"]]["name"] == "tick"

    def test_trace_path_exports_jsonl(self, tmp_path):
        from repro.obs.tracing import validate_trace

        path = tmp_path / "db.jsonl"
        db = FungusDB(seed=1)
        db.enable_telemetry(trace_path=path)
        _workload(db)
        db.disable_telemetry()
        assert validate_trace(path) == []


class TestRestoreAccounting:
    def test_restore_does_not_double_count_inserts(self, tmp_path):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        for i in range(12):
            db.insert("r", {"v": i})
        save_checkpoint(db, tmp_path / "ckpt")

        restored = load_checkpoint(tmp_path / "ckpt", telemetry=True)
        registry = restored.telemetry.registry
        assert registry.value("repro_inserts_total", table="r") == 0.0
        assert registry.value("repro_restored_rows_total", table="r") == 12.0
        # new activity counts normally from the restored baseline
        restored.insert("r", {"v": 99})
        assert registry.value("repro_inserts_total", table="r") == 1.0

    def test_restore_spans_recorded_when_tracing(self, tmp_path):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        db.insert("r", {"v": 1})
        tel = db.enable_telemetry(tracing=True)
        save_checkpoint(db, tmp_path / "ckpt")
        assert any(s.name == "checkpoint.save" for s in tel.tracer.finished)
