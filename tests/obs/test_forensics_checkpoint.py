"""Forensics across checkpoints: persistence, rebinding, no drift.

The lineage store must survive a save/restore cycle byte-for-byte
(deaths, rules, alert log), rebind saved biographies to the replayed
rows without minting death records or insert counts (a restore is not
a birth and not a death), and keep the offline ``python -m repro.obs
why``/``alerts`` CLI able to answer from the persisted state alone.
"""

import json

import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.errors import ObsError, SnapshotError
from repro.fungi import EGIFungus
from repro.obs import __main__ as obs_main
from repro.obs.forensics import Forensics
from repro.storage.schema import Schema

RULE = "eviction_rate > 0.5 for 2"


def _egi_db(seed=11, rows=40, rate=0.4):
    db = FungusDB(seed=seed)
    db.create_table(
        "r",
        Schema.of(v="int"),
        fungus=EGIFungus(seeds_per_cycle=2, decay_rate=rate),
    )
    db.enable_forensics(rules=[RULE])
    for i in range(rows):
        db.insert("r", {"v": i})
    return db


class TestSaveFormat:
    def test_forensics_json_written_when_enabled(self, tmp_path):
        db = _egi_db()
        db.tick(10)
        save_checkpoint(db, tmp_path / "ckpt")
        assert (tmp_path / "ckpt" / "forensics.json").exists()
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["forensics"] is True

    def test_no_forensics_json_when_disabled(self, tmp_path):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        save_checkpoint(db, tmp_path / "ckpt")
        assert not (tmp_path / "ckpt" / "forensics.json").exists()
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["forensics"] is False


class TestRestore:
    def test_store_and_rules_come_back(self, tmp_path):
        db = _egi_db()
        db.tick(20)
        saved_deaths = [(r.fid, r.cause) for r in db.forensics.deaths("r")]
        saved_total = db.forensics.store.deaths_recorded
        saved_log = len(db.forensics.store.alert_log)
        assert saved_deaths
        save_checkpoint(db, tmp_path / "ckpt")

        restored = load_checkpoint(tmp_path / "ckpt")
        forensics = restored.forensics
        assert forensics is not None
        assert [(r.fid, r.cause) for r in forensics.deaths("r")] == saved_deaths
        assert forensics.store.deaths_recorded == saved_total
        assert [rule.text for rule in forensics.rules] == [RULE]
        assert len(forensics.store.alert_log) == saved_log

    def test_restore_is_not_a_birth_and_not_a_death(self, tmp_path):
        db = _egi_db(rate=0.15)
        db.tick(10)
        saved_total = db.forensics.store.deaths_recorded
        assert saved_total > 0
        live_fids = sorted(
            life.fid for life in db.forensics.store._lives["r"].values()
        )
        assert live_fids, "need survivors to exercise the rebind path"
        watermark = db.forensics.store._next_fid["r"]
        save_checkpoint(db, tmp_path / "ckpt")

        restored = load_checkpoint(tmp_path / "ckpt", telemetry=True)
        store = restored.forensics.store
        # replayed rows rebound to their saved biographies: same fids,
        # no fresh ones minted, no deaths recorded, no insert counts
        assert store.deaths_recorded == saved_total
        assert sorted(l.fid for l in store._lives["r"].values()) == live_fids
        assert store._next_fid["r"] == watermark
        registry = restored.telemetry.registry
        assert registry.value("repro_inserts_total", table="r") == 0.0
        # the next genuine insert continues the fid sequence
        rid = restored.insert("r", {"v": 999})
        assert store.life("r", rid).fid == watermark

    def test_forensics_flag_overrides(self, tmp_path):
        db = _egi_db()
        db.tick(5)
        save_checkpoint(db, tmp_path / "with")
        plain = FungusDB(seed=1)
        plain.create_table("r", Schema.of(v="int"))
        plain.insert("r", {"v": 1})
        save_checkpoint(plain, tmp_path / "without")

        assert load_checkpoint(tmp_path / "with", forensics=False).forensics is None
        forced = load_checkpoint(tmp_path / "without", forensics=True)
        assert forced.forensics is not None
        assert forced.forensics.deaths("r") == []

    def test_corrupt_forensics_json_raises(self, tmp_path):
        db = _egi_db()
        save_checkpoint(db, tmp_path / "ckpt")
        (tmp_path / "ckpt" / "forensics.json").write_text("{not json")
        with pytest.raises(SnapshotError, match="forensics"):
            load_checkpoint(tmp_path / "ckpt")

    def test_unknown_forensics_version_rejected(self):
        db = FungusDB(seed=1)
        with pytest.raises(ObsError, match="version"):
            Forensics.from_saved(db, {"version": 99, "store": {}})


class TestAcceptance:
    """ISSUE contract: lineage survives a mid-run checkpoint cycle."""

    def test_200_tick_run_with_restore_keeps_every_chain(self, tmp_path):
        db = _egi_db(seed=42, rows=60, rate=0.25)
        db.tick(100)
        pre_restore_deaths = {r.fid for r in db.forensics.deaths("r")}
        assert pre_restore_deaths
        save_checkpoint(db, tmp_path / "mid")

        db = load_checkpoint(
            tmp_path / "mid",
            fungi={"r": EGIFungus(seeds_per_cycle=2, decay_rate=0.25)},
        )
        db.tick(100)
        forensics = db.forensics
        store = forensics.store
        assert forensics.audit() == []
        # deaths recorded before the save are still answerable after it
        assert pre_restore_deaths <= set(store._deaths["r"])
        # every insertion ordinal is accounted for exactly once
        live_fids = {life.fid for life in store._lives.get("r", {}).values()}
        dead_fids = set(store._deaths["r"])
        assert live_fids.isdisjoint(dead_fids)
        assert live_fids | dead_fids == set(range(store._next_fid["r"]))
        for record in forensics.deaths("r"):
            assert store.resolve_chain("r", record).complete


class TestOfflineCli:
    def _checkpoint(self, tmp_path):
        db = _egi_db()
        db.tick(20)
        fid = db.forensics.deaths("r")[0].fid
        save_checkpoint(db, tmp_path / "ckpt")
        return str(tmp_path / "ckpt"), fid

    def test_why_prints_a_chain_from_saved_state(self, tmp_path, capsys):
        path, fid = self._checkpoint(tmp_path)
        assert obs_main.main(["why", path, "r", str(fid)]) == 0
        out = capsys.readouterr().out
        assert f"why r fid {fid}:" in out
        assert "egi" in out

    def test_why_unknown_ref_fails_with_hint(self, tmp_path, capsys):
        path, _ = self._checkpoint(tmp_path)
        assert obs_main.main(["why", path, "r", "99999"]) == 1
        assert "no forensic record" in capsys.readouterr().err

    def test_why_unreadable_state_fails(self, tmp_path, capsys):
        assert obs_main.main(["why", str(tmp_path / "nope"), "r", "0"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_alerts_prints_rules_and_log(self, tmp_path, capsys):
        path, _ = self._checkpoint(tmp_path)
        assert obs_main.main(["alerts", path, "--spots"]) == 0
        out = capsys.readouterr().out
        assert "1 rule(s) armed:" in out
        assert RULE in out
