"""Tests for repro.obs.dashboard — the terminal rot dashboard."""

import asyncio

from repro.core.db import FungusDB
from repro.obs.dashboard import (
    build_demo_db,
    fetch_server_stats,
    main,
    render_frame,
    render_server_panel,
)
from repro.storage.schema import Schema
from repro.storage.rowset import RowSet


class TestRenderFrame:
    def test_empty_db_renders(self):
        frame = render_frame(FungusDB(seed=1))
        assert "rot dashboard" in frame
        assert "legend" in frame

    def test_table_sections_present(self):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        for i in range(5):
            db.insert("r", {"v": i})
        frame = render_frame(db, width=20)
        assert "table r: extent=5" in frame
        assert "bands [" in frame
        assert "rotmap [" in frame
        assert "spots=0" in frame

    def test_holes_render_as_spaces(self):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        for i in range(10):
            db.insert("r", {"v": i})
        db.table("r").evict(RowSet(range(5)), "manual")
        frame = render_frame(db, width=10)
        rotmap = next(l for l in frame.splitlines() if "rotmap" in l)
        assert "     " in rotmap  # the first half of the rid space is a hole
        assert "holes=1" in frame

    def test_rotten_rows_render_as_dots(self):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        for i in range(4):
            db.insert("r", {"v": i})
        for rid in range(4):
            db.table("r").set_freshness(rid, 0.05)
        frame = render_frame(db, width=4)
        rotmap = next(l for l in frame.splitlines() if "rotmap" in l)
        assert "...." in rotmap
        assert "spots=1" in frame

    def test_rates_shown_with_telemetry(self):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        db.enable_telemetry()
        frame = render_frame(db)
        assert "rates evict=" in frame


class TestDemoAndMain:
    def test_build_demo_db_has_telemetry(self):
        db = build_demo_db(seed=3, fungus_spec="egi:2,0.2")
        assert db.telemetry is not None
        assert "demo" in db.tables

    def test_main_once_writes_prometheus(self, tmp_path, capsys):
        from repro.obs.export import parse_prometheus

        prom = tmp_path / "m.prom"
        assert main(["--once", "--no-clear", "--prom", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "rot dashboard" in out
        assert parse_prometheus(prom.read_text())

    def test_main_multi_tick_run(self, capsys):
        assert main(["--ticks", "12", "--interval", "0", "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert out.count("rot dashboard") == 12


class TestServerPanel:
    STATS = {
        "requests": 150.0,
        "rejected": 3.0,
        "slow": 2.0,
        "queue_depth": 5.0,
        "sessions": 8.0,
        "ticker_lag": 0.0123,
    }

    def test_first_frame_has_no_rate(self):
        panel = render_server_panel(self.STATS, None, 0.25)
        assert "qps=--" in panel
        assert "queue=5" in panel
        assert "sessions=8" in panel
        assert "slow=2" in panel
        assert "ticker_lag=12.3ms" in panel

    def test_qps_is_the_request_delta_over_interval(self):
        previous = dict(self.STATS, requests=100.0)
        panel = render_server_panel(self.STATS, previous, 0.5)
        assert "qps=100" in panel  # (150 - 100) / 0.5s

    def test_counter_reset_clamps_to_zero(self):
        previous = dict(self.STATS, requests=900.0)  # server restarted
        panel = render_server_panel(self.STATS, previous, 0.5)
        assert "qps=0" in panel

    def test_fetch_scrapes_a_live_ops_endpoint(self):
        from tests.server.harness import connect, running_server, seeded_db

        async def scenario():
            db = seeded_db()
            async with running_server(db, ops_port=0) as server:
                client = await connect(server)
                try:
                    await client.insert("r", {"k": 1, "v": 1})
                    await client.query("SELECT k FROM r")
                finally:
                    await client.close()
                url = f"http://127.0.0.1:{server.ops_port}"
                loop = asyncio.get_running_loop()
                # urllib blocks; keep the server's loop responsive
                return await loop.run_in_executor(None, fetch_server_stats, url)

        stats = asyncio.run(scenario())
        assert stats["requests"] >= 2
        assert stats["queue_depth"] == 0.0
        assert stats["rejected"] == 0.0
        assert "qps=" in render_server_panel(stats, None, 0.25)


class TestForensicsOverlay:
    def _db(self, rules=("extent > 3",)):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        db.enable_forensics(rules=rules)
        for i in range(5):
            db.insert("r", {"v": i})
        return db

    def test_death_counts_per_table(self):
        db = self._db(rules=())
        db.query("CONSUME SELECT v FROM r WHERE v < 2")
        frame = render_frame(db)
        assert "deaths consumed=2" in frame

    def test_firing_alerts_block(self):
        db = self._db()
        db.tick(1)
        frame = render_frame(db)
        assert "ALERTS (1 firing):" in frame
        assert "extent > 3" in frame

    def test_armed_but_quiet_rules_line(self):
        db = self._db()
        frame = render_frame(db)  # no tick yet: rule never evaluated
        assert "alerts: none firing (1 rule(s) armed)" in frame

    def test_no_forensics_no_alert_lines(self):
        frame = render_frame(FungusDB(seed=1))
        assert "alerts" not in frame.lower()
