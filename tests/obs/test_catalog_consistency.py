"""The metric catalogue must match what the runtime actually emits.

Two documents promise the ``repro_*`` series: DESIGN.md's "Metric
catalogue" table and the :mod:`repro.obs.collector` docstring. These
tests hold both to the registry the collector really builds, in both
directions — a series added in code without a catalogue row fails, as
does a catalogue row whose series no longer exists.
"""

import re
from pathlib import Path

from repro.core.db import FungusDB
from repro.fungi import LinearDecayFungus
from repro.obs.collector import BusCollector
from repro.obs.export import parse_prometheus
from repro.obs.profile import PROFILER
from repro.storage.schema import Schema

REPO = Path(__file__).resolve().parents[2]

#: The profiler folds these in at exposition time; they never live in
#: the registry itself.
HOTPATH_SERIES = {
    "repro_hotpath_calls": ("site",),
    "repro_hotpath_rows": ("site",),
    "repro_hotpath_seconds": ("site",),
}

#: DESIGN.md documents EWMA families as "ewma→gauge" (Prometheus has
#: no rate type); the registry kind is "ewma".
KIND_ALIASES = {"ewma→gauge": "ewma"}


def registry_series() -> dict[str, tuple[str, tuple[str, ...]]]:
    """``{name: (kind, labels)}`` for every family the collector registers."""
    registry = BusCollector().registry
    return {
        family.name: (family.kind, tuple(family.labelnames))
        for family in registry.families()
    }


def design_catalogue() -> dict[str, tuple[str, tuple[str, ...]]]:
    """Parse DESIGN.md's catalogue table into ``{name: (kind, labels)}``."""
    text = (REPO / "DESIGN.md").read_text()
    section = text.split("### Metric catalogue", 1)[1].split("Design points:", 1)[0]
    rows = re.findall(
        r"^\|\s*`(repro_[a-z_/]+)`\s*\|\s*([^|]+?)\s*\|\s*([^|]+?)\s*\|",
        section,
        flags=re.M,
    )
    assert rows, "DESIGN.md metric catalogue table not found"
    catalogue: dict[str, tuple[str, tuple[str, ...]]] = {}
    for name, kind, labels in rows:
        kind = KIND_ALIASES.get(kind, kind)
        label_tuple = tuple(l.strip() for l in labels.split(",") if l.strip())
        if "/" in name:
            # "repro_hotpath_calls/rows/seconds" is three series
            stem, _, suffixes = name.rpartition("_")
            first, *rest = suffixes.split("/")
            for suffix in [first, *rest]:
                catalogue[f"{stem}_{suffix}"] = (kind, label_tuple)
        else:
            catalogue[name] = (kind, label_tuple)
    return catalogue


def docstring_catalogue() -> dict[str, tuple[str, tuple[str, ...]]]:
    """Parse the collector module docstring's catalogue block."""
    import repro.obs.collector as collector_module

    rows = re.findall(
        r"^``(repro_\w+)``\s+(\w+)\s+([\w, ]+?)\s*$",
        collector_module.__doc__,
        flags=re.M,
    )
    assert rows, "collector docstring catalogue not found"
    return {
        name: (kind, tuple(l.strip() for l in labels.split(",")))
        for name, kind, labels in rows
    }


def test_every_runtime_series_is_in_design_md():
    catalogue = design_catalogue()
    for name, (kind, labels) in registry_series().items():
        assert name in catalogue, f"{name} emitted but not in DESIGN.md catalogue"
        doc_kind, doc_labels = catalogue[name]
        assert doc_kind == kind, f"{name}: DESIGN.md says {doc_kind}, code says {kind}"
        assert doc_labels == labels, (
            f"{name}: DESIGN.md labels {doc_labels}, code labels {labels}"
        )


def test_every_design_md_series_exists_at_runtime():
    series = registry_series()
    for name, (kind, labels) in design_catalogue().items():
        if name in HOTPATH_SERIES:
            assert labels == HOTPATH_SERIES[name]
            continue  # exposition-time series, checked below
        assert name in series, f"{name} catalogued in DESIGN.md but never emitted"


def test_docstring_catalogue_matches_registry_exactly():
    series = registry_series()
    documented = docstring_catalogue()
    assert set(documented) == set(series)
    for name, (kind, labels) in documented.items():
        real_kind, real_labels = series[name]
        assert kind == real_kind, f"{name}: docstring {kind} vs code {real_kind}"
        assert labels == real_labels


def test_hotpath_series_appear_in_exposition():
    PROFILER.disable()
    PROFILER.reset()
    try:
        db = FungusDB(seed=1)
        tel = db.enable_telemetry(profile=True)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.1))
        for i in range(5):
            db.insert("r", {"v": i})
        db.tick(1)
        db.query("SELECT count(*) FROM r")
        names = {name for name, _ in parse_prometheus(tel.exposition())}
    finally:
        PROFILER.disable()
        PROFILER.reset()
    for name in HOTPATH_SERIES:
        assert name in names, f"{name} catalogued but absent from exposition"


def test_exposition_only_emits_catalogued_series():
    """No series leaves the process that the catalogue doesn't own."""
    catalogue = set(design_catalogue())
    db = FungusDB(seed=1)
    tel = db.enable_telemetry()
    db.enable_forensics(rules=["extent > 1"])
    db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.4))
    for i in range(8):
        db.insert("r", {"v": i})
    db.tick(3)
    db.query("CONSUME SELECT v FROM r WHERE v < 3")
    db.tick(1)
    for name, _ in parse_prometheus(tel.exposition()):
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in catalogue or base in catalogue, (
            f"exposition emits uncatalogued series {name}"
        )
