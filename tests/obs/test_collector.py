"""Tests for repro.obs.collector — the event-bus → metrics bridge."""

import pytest

from repro.core.db import FungusDB
from repro.core.events import RestoreCompleted
from repro.fungi import EGIFungus, LinearDecayFungus
from repro.obs.collector import BusCollector
from repro.storage.schema import Schema


@pytest.fixture
def collected():
    """A one-table db with an attached collector."""
    db = FungusDB(seed=5)
    db.create_table(
        "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.2)
    )
    collector = BusCollector().attach(db)
    return db, collector


class TestCounters:
    def test_inserts_counted_per_table(self, collected):
        db, collector = collected
        for i in range(4):
            db.insert("r", {"v": i})
        assert collector.registry.value("repro_inserts_total", table="r") == 4.0

    def test_decay_and_freshness_mass(self, collected):
        db, collector = collected
        db.insert("r", {"v": 1})
        db.tick(2)
        registry = collector.registry
        assert registry.value(
            "repro_decay_events_total", table="r", fungus="linear"
        ) == 2.0
        assert registry.value(
            "repro_freshness_removed_total", table="r", fungus="linear"
        ) == pytest.approx(0.4)

    def test_eviction_and_tick_metrics(self, collected):
        db, collector = collected
        db.insert("r", {"v": 1})
        db.tick(6)  # rate 0.2 -> exhausted at tick 5, evicted on the 6th
        registry = collector.registry
        assert registry.value("repro_evictions_total", table="r", reason="decay") == 1.0
        assert registry.value("repro_ticks_total", table="r") == 6.0
        assert registry.value("repro_eviction_rate", table="r") > 0.0

    def test_consume_metrics(self, collected):
        db, collector = collected
        for i in range(6):
            db.insert("r", {"v": i})
        db.query("CONSUME SELECT v FROM r WHERE v < 2")
        registry = collector.registry
        assert registry.value("repro_consumed_tuples_total", table="r") == 2.0
        assert registry.value("repro_consume_rate", table="r") > 0.0
        assert registry.value("repro_evictions_total", table="r", reason="consume") == 2.0

    def test_infections_labelled_by_fungus(self):
        db = FungusDB(seed=5)
        db.create_table(
            "r", Schema.of(v="int"), fungus=EGIFungus(seeds_per_cycle=1, decay_rate=0.1)
        )
        collector = BusCollector().attach(db)
        for i in range(10):
            db.insert("r", {"v": i})
        db.tick(3)
        assert collector.registry.value(
            "repro_infections_total", table="r", fungus="egi"
        ) > 0.0


class TestGauges:
    def test_tick_samples_gauges(self, collected):
        db, collector = collected
        for i in range(3):
            db.insert("r", {"v": i})
        db.tick(1)
        registry = collector.registry
        assert registry.value("repro_extent", table="r") == 3.0
        assert registry.value("repro_band_occupancy", table="r", band="fresh") == 3.0

    def test_tombstone_ratio(self, collected):
        db, collector = collected
        for i in range(4):
            db.insert("r", {"v": i})
        db.query("CONSUME SELECT v FROM r WHERE v < 2")
        collector.sample_table("r")
        assert collector.registry.value("repro_tombstone_ratio", table="r") == 0.5

    def test_sample_every_skips_ticks(self):
        db = FungusDB(seed=5)
        db.create_table("r", Schema.of(v="int"))
        collector = BusCollector(sample_every=3).attach(db)
        db.insert("r", {"v": 1})
        db.tick(2)
        # not sampled yet: the extent gauge still holds its zero default
        assert collector.registry.value("repro_extent", table="r") == 0.0
        db.tick(1)
        assert collector.registry.value("repro_extent", table="r") == 1.0


class TestRestoreCompensation:
    def test_restore_event_reclassifies_inserts(self, collected):
        db, collector = collected
        for i in range(5):
            db.insert("r", {"v": i})
        db.bus.publish(RestoreCompleted("r", 0.0, rows=5))
        registry = collector.registry
        assert registry.value("repro_inserts_total", table="r") == 0.0
        assert registry.value("repro_restored_rows_total", table="r") == 5.0


class TestWiring:
    def test_double_attach_rejected(self, collected):
        db, collector = collected
        with pytest.raises(RuntimeError):
            collector.attach(db)

    def test_detach_stops_collection(self, collected):
        db, collector = collected
        db.insert("r", {"v": 1})
        collector.detach()
        db.insert("r", {"v": 2})
        assert collector.registry.value("repro_inserts_total", table="r") == 1.0
        collector.detach()  # second detach is a no-op
