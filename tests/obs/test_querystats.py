"""Tests for repro.obs.querystats — the pg_stat_statements analogue.

Covers fingerprint normalization (literal stripping, constant folding,
INSERT batch collapse, EXPLAIN ANALYZE aggregating with plain runs),
the bounded store (eviction of the coldest fingerprint, verdict
parking), latency quantiles, persistence (dict round-trip and the full
checkpoint path), the ``repro_query_*`` metric families, and the
renderer both shells share.
"""

import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.core.events import QueryExecuted
from repro.obs.collector import BusCollector
from repro.obs.querystats import (
    QueryStatsEntry,
    QueryStatsStore,
    fingerprint,
    normalize_statement,
    render_queries,
)
from repro.query.executor import QueryRecord
from repro.query.parser import parse
from repro.storage.schema import Schema


def record(sql: str, kind: str = "select", **kw) -> QueryRecord:
    defaults = dict(rows=1, rows_consumed=0, seconds=0.001, misestimation=None)
    defaults.update(kw)
    return QueryRecord(statement=parse(sql), kind=kind, **defaults)


class TestFingerprint:
    def test_literals_share_a_shape(self):
        a, _ = fingerprint(parse("SELECT v FROM r WHERE v > 5"))
        b, _ = fingerprint(parse("SELECT v FROM r WHERE v > 99"))
        assert a == b

    def test_constant_folding_before_stripping(self):
        a, _ = fingerprint(parse("SELECT v FROM r WHERE v > 2 + 3"))
        b, _ = fingerprint(parse("SELECT v FROM r WHERE v > 5"))
        assert a == b

    def test_projection_is_part_of_the_shape(self):
        a, _ = fingerprint(parse("SELECT v FROM r WHERE v > 5"))
        b, _ = fingerprint(parse("SELECT t FROM r WHERE v > 5"))
        assert a != b

    def test_limit_separates_fingerprints(self):
        a, _ = fingerprint(parse("SELECT v FROM r LIMIT 5"))
        b, _ = fingerprint(parse("SELECT v FROM r LIMIT 6"))
        assert a != b

    def test_insert_batches_collapse(self):
        one = normalize_statement(parse("INSERT INTO r (v, k) VALUES (1, 'a')"))
        many = normalize_statement(
            parse("INSERT INTO r (v, k) VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        )
        assert one == many == "INSERT INTO r (v, k) VALUES (?, ?)"

    def test_explain_analyze_aggregates_with_plain_runs(self):
        plain, _ = fingerprint(parse("SELECT v FROM r WHERE v > 5"))
        analyzed, _ = fingerprint(parse("EXPLAIN ANALYZE SELECT v FROM r WHERE v > 5"))
        assert plain == analyzed

    def test_consume_is_its_own_shape(self):
        a, _ = fingerprint(parse("SELECT v FROM r WHERE v > 5"))
        b, _ = fingerprint(parse("CONSUME SELECT v FROM r WHERE v > 5"))
        assert a != b

    def test_digest_is_processs_stable(self):
        digest, template = fingerprint(parse("SELECT v FROM r WHERE v > 5"))
        assert len(digest) == 12
        assert template == "SELECT v FROM r WHERE (v > ?)"
        # sha1 of the template, not a salted hash(): pin the value so a
        # checkpoint written by one process resolves in another
        assert digest == fingerprint(parse("SELECT v FROM r WHERE v > 8"))[0]


class TestStore:
    def test_observe_aggregates_per_fingerprint(self):
        store = QueryStatsStore()
        store.observe(record("SELECT v FROM r WHERE v > 1", rows=3), now=1.0)
        store.observe(record("SELECT v FROM r WHERE v > 2", rows=5), now=4.0)
        (entry,) = store.entries()
        assert entry.calls == 2
        assert entry.rows == 8
        assert entry.first_seen == 1.0
        assert entry.last_seen == 4.0

    def test_latency_quantiles(self):
        store = QueryStatsStore()
        for ms in range(1, 101):
            store.observe(
                record("SELECT v FROM r", seconds=ms / 1000.0), now=float(ms)
            )
        (entry,) = store.entries()
        assert entry.p50() == pytest.approx(0.050, rel=0.25)
        assert entry.p95() == pytest.approx(0.095, rel=0.25)

    def test_worst_misestimation_keeps_the_maximum(self):
        store = QueryStatsStore()
        store.observe(record("SELECT v FROM r", misestimation=3.0), now=1.0)
        store.observe(record("SELECT v FROM r", misestimation=2.0), now=2.0)
        store.observe(record("SELECT v FROM r", misestimation=None), now=3.0)
        (entry,) = store.entries()
        assert entry.worst_misestimation == 3.0

    def test_bounded_eviction_of_the_coldest(self):
        store = QueryStatsStore(max_entries=2)
        for _ in range(3):
            store.observe(record("SELECT v FROM r WHERE v > 1"), now=1.0)
        store.observe(record("SELECT t FROM r"), now=2.0)
        observation = store.observe(record("SELECT f FROM r"), now=3.0)
        assert observation.evicted == 1
        assert store.evicted_total == 1
        assert len(store) == 2
        templates = {e.template for e in store.entries()}
        # the hot 3-call entry survives; the cold single-call one died
        assert "SELECT v FROM r WHERE (v > ?)" in templates
        assert "SELECT t FROM r" not in templates

    def test_observation_counts_fingerprints_per_kind(self):
        store = QueryStatsStore()
        store.observe(record("SELECT v FROM r"), now=1.0)
        obs = store.observe(record("SELECT t FROM r"), now=1.0)
        assert obs.tracked_for_kind == 2
        obs = store.observe(record("DELETE FROM r", kind="delete"), now=1.0)
        assert obs.tracked_for_kind == 1

    def test_top_orderings(self):
        store = QueryStatsStore()
        store.observe(record("SELECT v FROM r", rows=100, seconds=0.001), now=1.0)
        for _ in range(5):
            store.observe(record("SELECT t FROM r", rows=1, seconds=0.1), now=1.0)
        assert store.top(1, by="rows")[0].template == "SELECT v FROM r"
        assert store.top(1, by="calls")[0].template == "SELECT t FROM r"
        assert store.top(1, by="seconds")[0].template == "SELECT t FROM r"
        with pytest.raises(ValueError, match="unknown ordering"):
            store.top(1, by="vibes")

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            QueryStatsStore(max_entries=0)


class TestVerdicts:
    SQL = "CONSUME SELECT v FROM r WHERE v > 5"

    def test_verdict_after_observation_applies_directly(self):
        store = QueryStatsStore()
        store.observe(record(self.SQL, kind="consume"), now=1.0)
        store.note_verdict(self.SQL, "partial")
        assert store.entries()[0].last_verdict == "partial"

    def test_verdict_before_observation_is_parked(self):
        # the Tier-B analyzer runs pre-statement, so the verdict can
        # arrive before the execution record exists
        store = QueryStatsStore()
        store.note_verdict(self.SQL, "total")
        assert store.entries() == []
        store.observe(record(self.SQL, kind="consume"), now=1.0)
        assert store.entries()[0].last_verdict == "total"

    def test_unparseable_sql_ignored(self):
        store = QueryStatsStore()
        store.note_verdict("CONSUME SELECT FROM WHERE", "partial")
        assert store.entries() == []

    def test_parked_verdicts_bounded(self):
        store = QueryStatsStore()
        for i in range(80):
            store.note_verdict(f"CONSUME SELECT v FROM r WHERE v > {i} AND t = {i}", "x")
        assert len(store._pending_verdicts) <= 64


class TestPersistence:
    def test_dict_round_trip(self):
        store = QueryStatsStore(max_entries=8)
        for i in range(3):
            store.observe(
                record("SELECT v FROM r WHERE v > 1", seconds=0.01 * (i + 1)),
                now=float(i),
            )
        store.note_verdict("SELECT v FROM r WHERE v > 1", "none")
        restored = QueryStatsStore.from_dict(store.to_dict())
        assert restored.max_entries == 8
        before, after = store.entries()[0], restored.entries()[0]
        assert after.fingerprint == before.fingerprint
        assert after.calls == before.calls
        assert after.last_verdict == "none"
        assert after.p95() == pytest.approx(before.p95())

    def test_checkpoint_round_trip(self, tmp_path):
        db = FungusDB(seed=3)
        db.create_table("r", Schema.of(v="int"))
        db.enable_querystats()
        db.insert("r", {"v": 1})
        for bound in (1, 2, 3):
            db.query(f"SELECT v FROM r WHERE v > {bound}")
        save_checkpoint(db, tmp_path)
        assert (tmp_path / "querystats.json").exists()
        restored = load_checkpoint(tmp_path)
        assert restored.querystats is not None
        (entry,) = restored.querystats.entries()
        assert entry.template == "SELECT v FROM r WHERE (v > ?)"
        assert entry.calls == 3

    def test_checkpoint_without_store_restores_without_store(self, tmp_path):
        db = FungusDB(seed=3)
        db.create_table("r", Schema.of(v="int"))
        save_checkpoint(db, tmp_path)
        assert not (tmp_path / "querystats.json").exists()
        assert load_checkpoint(tmp_path).querystats is None


class TestMetricsFamilies:
    def test_query_families_reach_the_exposition(self):
        db = FungusDB(seed=5)
        db.create_table("r", Schema.of(v="int"))
        db.enable_querystats()
        collector = BusCollector().attach(db)
        db.query("INSERT INTO r (v) VALUES (1), (2), (3)")
        db.query("SELECT v FROM r WHERE v > 1")
        db.query("SELECT v FROM r WHERE v > 2")
        registry = collector.registry
        assert registry.value("repro_query_calls_total", kind="select") == 2.0
        assert registry.value("repro_query_calls_total", kind="insert") == 1.0
        assert registry.value("repro_query_rows_total", kind="select") == 3.0
        assert registry.value("repro_query_fingerprints", kind="select") == 1.0
        from repro.obs.export import render_prometheus

        text = render_prometheus(collector.registry)
        assert "repro_query_seconds_bucket" in text
        assert "repro_query_calls_total" in text

    def test_event_payload_only_built_with_subscribers(self):
        # publish_lazy: the store still observes when nobody listens
        db = FungusDB(seed=5)
        db.create_table("r", Schema.of(v="int"))
        db.enable_querystats()
        db.query("SELECT v FROM r")
        assert len(db.querystats) == 1

    def test_event_carries_table_and_kind(self):
        db = FungusDB(seed=5)
        db.create_table("r", Schema.of(v="int"))
        db.enable_querystats()
        seen = []
        db.bus.subscribe(QueryExecuted, seen.append)
        db.query("CONSUME SELECT v FROM r WHERE v > 99")
        (event,) = seen
        assert event.table == "r"
        assert event.kind == "consume"
        assert event.tracked_for_kind == 1


class TestRenderQueries:
    def test_empty(self):
        assert render_queries([]) == ["no statements recorded"]

    def test_entries_and_summaries_render_identically(self):
        store = QueryStatsStore()
        store.observe(record("SELECT v FROM r WHERE v > 1"), now=1.0)
        entries = store.entries()
        summaries = [e.summary() for e in entries]
        assert render_queries(entries) == render_queries(summaries)

    def test_verdict_suffix(self):
        entry = QueryStatsEntry(
            fingerprint="abc",
            template="CONSUME SELECT v FROM r",
            kind="consume",
            calls=1,
            last_verdict="partial",
        )
        (header, row) = render_queries([entry])
        assert header.endswith("statement")
        assert row.endswith("CONSUME SELECT v FROM r  [partial]")
