"""Tests for repro.obs.metrics."""

import math

import pytest

from repro.errors import ObsError
from repro.obs.metrics import (
    Counter,
    EWMARate,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ObsError):
            Counter().inc(-1)

    def test_uncount_floors_at_zero(self):
        c = Counter()
        c.inc(3)
        c.uncount(5)
        assert c.value == 0.0

    def test_uncount_negative_rejected(self):
        with pytest.raises(ObsError):
            Counter().uncount(-1)


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge()
        g.set(5)
        g.inc(-2)
        assert g.value == 3.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram(buckets=(1, 10, 100))
        for v in (0.5, 5, 5, 50, 5000):
            h.observe(v)
        assert h.counts == [1, 2, 1]  # 5000 is beyond every bound
        assert h.count == 5
        assert h.sum == pytest.approx(5060.5)

    def test_cumulative_ends_with_inf(self):
        h = Histogram(buckets=(1, 10))
        h.observe(0.5)
        h.observe(999)
        pairs = h.cumulative()
        assert pairs == [(1.0, 1), (10.0, 1), (math.inf, 2)]

    def test_empty_buckets_rejected(self):
        with pytest.raises(ObsError):
            Histogram(buckets=())


class TestEWMARate:
    def test_value_is_mass_over_tau(self):
        r = EWMARate(tau=10.0)
        r.mark(5.0, now=0.0)
        assert r.value == pytest.approx(0.5)

    def test_decay_is_deterministic(self):
        r = EWMARate(tau=10.0)
        r.mark(10.0, now=0.0)
        # after 10 ticks of silence the mass has decayed by e^-1
        assert r.value_at(10.0) == pytest.approx(10.0 * math.exp(-1.0) / 10.0)

    def test_marks_accumulate_with_decay(self):
        r = EWMARate(tau=10.0)
        r.mark(1.0, now=0.0)
        r.mark(1.0, now=10.0)
        assert r.value == pytest.approx((math.exp(-1.0) + 1.0) / 10.0)

    def test_unmarked_rate_is_zero(self):
        r = EWMARate(tau=10.0)
        assert r.value == 0.0
        assert r.value_at(100.0) == 0.0

    def test_bad_tau_rejected(self):
        with pytest.raises(ObsError):
            EWMARate(tau=0.0)


class TestRegistry:
    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("rows_total", "rows", ("table",))
        family.labels(table="a").inc(2)
        family.labels(table="b").inc(1)
        assert registry.value("rows_total", table="a") == 2.0
        assert registry.value("rows_total", table="b") == 1.0

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_schema_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("table",))
        with pytest.raises(ObsError):
            registry.gauge("x_total", labelnames=("table",))
        with pytest.raises(ObsError):
            registry.counter("x_total", labelnames=("other",))

    def test_wrong_labels_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labelnames=("table",))
        with pytest.raises(ObsError):
            family.labels(nope="a")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.counter("bad name")
        with pytest.raises(ObsError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_label_free_passthrough(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(2)
        registry.ewma("r", tau=5.0).mark(5.0, now=0.0)
        assert registry.value("c_total") == 3.0
        assert registry.value("g") == 7.0
        assert registry.value("h") == 1.0  # histograms report their count
        assert registry.value("r") == pytest.approx(1.0)

    def test_unknown_metric_value_raises(self):
        with pytest.raises(ObsError):
            MetricsRegistry().value("nope")

    def test_families_sorted_and_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.gauge("a").set(1)
        assert [f.name for f in registry.families()] == ["a", "b_total"]
        snapshot = registry.as_dict()
        assert snapshot["b_total"] == {"": 1.0}
