"""Tests for repro.obs.profile — hot-path profiling hooks."""

import pytest

from repro.core.db import FungusDB
from repro.fungi import EGIFungus
from repro.obs.profile import PROFILER, HotPathProfiler
from repro.storage.schema import Schema


@pytest.fixture(autouse=True)
def _clean_profiler():
    """The PROFILER is process-wide: leave it as we found it."""
    PROFILER.disable()
    PROFILER.reset()
    yield
    PROFILER.disable()
    PROFILER.reset()


class TestHotPathProfiler:
    def test_disabled_by_default(self):
        assert HotPathProfiler().enabled is False

    def test_record_accumulates(self):
        p = HotPathProfiler()
        p.record("x.scan", rows=10, seconds=0.5)
        p.record("x.scan", rows=5, seconds=0.25)
        stats = p.snapshot()["x.scan"]
        assert stats.calls == 2
        assert stats.rows == 15
        assert stats.seconds == pytest.approx(0.75)

    def test_reset_clears_but_keeps_flag(self):
        p = HotPathProfiler()
        p.enable()
        p.record("s")
        p.reset()
        assert p.snapshot() == {}
        assert p.enabled is True

    def test_snapshot_is_a_copy(self):
        p = HotPathProfiler()
        p.record("s", rows=1)
        snap = p.snapshot()
        snap["s"].rows = 999
        assert p.snapshot()["s"].rows == 1

    def test_describe_mentions_sites(self):
        p = HotPathProfiler()
        p.record("egi.cycle", rows=3, seconds=0.001)
        assert "egi.cycle" in p.describe()
        assert "calls=1" in p.describe()


class TestInstrumentedSites:
    def _workload(self):
        db = FungusDB(seed=3)
        db.create_table(
            "r", Schema.of(v="int"), fungus=EGIFungus(seeds_per_cycle=2, decay_rate=0.2)
        )
        for i in range(30):
            db.insert("r", {"v": i})
        db.tick(10)
        db.query("SELECT v FROM r WHERE v > 5")
        return db

    def test_disabled_records_nothing(self):
        self._workload()
        assert PROFILER.snapshot() == {}

    def test_enabled_records_egi_and_scan_sites(self):
        PROFILER.enable()
        self._workload()
        snapshot = PROFILER.snapshot()
        assert snapshot["egi.cycle"].calls == 10
        assert "egi.spread" in snapshot
        assert snapshot["query.scan"].rows > 0
        assert snapshot["egi.cycle"].seconds > 0.0

    def test_table_scan_site(self):
        PROFILER.enable()
        db = self._workload()
        db.table("r").storage.scan(lambda row: row["v"] > 3)
        assert PROFILER.snapshot()["table.scan"].rows > 0
