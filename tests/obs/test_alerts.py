"""Tests for the rot-rate alert engine: rules, streaks, signals.

Covers the declarative rule grammar, for-N streak semantics, the
half-life and ratio signals, and the integration path: AlertFired /
AlertResolved events landing in the metrics registry
(``repro_alert_active``), the alert log, and the dashboard text.
"""

import math

import pytest

from repro.core.db import FungusDB
from repro.errors import ObsError
from repro.fungi import LinearDecayFungus
from repro.obs.forensics import DEFAULT_RULES
from repro.obs.forensics.alerts import AlertEngine, AlertRule, SIGNALS
from repro.storage.schema import Schema


class TestRuleGrammar:
    def test_parse_full_form(self):
        rule = AlertRule.parse("eviction_rate > 2.5 for 5")
        assert rule.signal == "eviction_rate"
        assert rule.op == ">"
        assert rule.threshold == 2.5
        assert rule.for_ticks == 5

    def test_for_defaults_to_one_tick(self):
        assert AlertRule.parse("extent < 100").for_ticks == 1

    def test_whitespace_is_canonicalised(self):
        rule = AlertRule.parse("  extent   <=  3   for  2 ")
        assert rule.text == "extent <= 3 for 2"

    @pytest.mark.parametrize("op", [">", "<", ">=", "<="])
    def test_all_operators(self, op):
        rule = AlertRule.parse(f"extent {op} 1")
        assert rule.op == op

    def test_negative_threshold_allowed(self):
        assert AlertRule.parse("extent > -1").threshold == -1.0

    @pytest.mark.parametrize(
        "bad", ["", "extent", "extent < ", "extent ~ 3", "extent < 3 for"]
    )
    def test_malformed_rules_rejected(self, bad):
        with pytest.raises(ObsError, match="bad alert rule"):
            AlertRule.parse(bad)

    def test_unknown_signal_rejected(self):
        with pytest.raises(ObsError, match="unknown alert signal"):
            AlertRule.parse("humidity > 3")

    def test_zero_for_rejected(self):
        with pytest.raises(ObsError, match="for N"):
            AlertRule.parse("extent > 3 for 0")

    def test_default_rules_all_parse(self):
        for text in DEFAULT_RULES:
            assert AlertRule.parse(text).signal in SIGNALS


def _engine(extents, transitions=None):
    """An engine probing a mutable ``{table: (extent, exhausted)}``."""
    return AlertEngine(
        lambda table: extents.get(table),
        None
        if transitions is None
        else lambda *args: transitions.append(args),
    )


class TestStreaks:
    def test_fires_only_after_n_consecutive_ticks(self):
        extents = {"r": (2, 0)}
        transitions = []
        engine = _engine(extents, transitions)
        engine.add_rule("extent < 5 for 3")
        engine.evaluate("r", 1.0)
        engine.evaluate("r", 2.0)
        assert engine.active() == []
        engine.evaluate("r", 3.0)
        assert engine.active() == [("r", "extent < 5 for 3", 2.0)]
        assert transitions == [(3.0, "r", "extent < 5 for 3", "fired", 2.0)]

    def test_streak_resets_when_condition_breaks(self):
        extents = {"r": (2, 0)}
        engine = _engine(extents)
        engine.add_rule("extent < 5 for 3")
        engine.evaluate("r", 1.0)
        engine.evaluate("r", 2.0)
        extents["r"] = (9, 0)  # condition breaks before the third tick
        engine.evaluate("r", 3.0)
        extents["r"] = (2, 0)
        engine.evaluate("r", 4.0)
        engine.evaluate("r", 5.0)
        assert engine.active() == []  # streak restarted at tick 4

    def test_resolves_and_can_refire(self):
        extents = {"r": (2, 0)}
        transitions = []
        engine = _engine(extents, transitions)
        engine.add_rule("extent < 5")
        engine.evaluate("r", 1.0)
        extents["r"] = (9, 0)
        engine.evaluate("r", 2.0)
        extents["r"] = (1, 0)
        engine.evaluate("r", 3.0)
        actions = [t[3] for t in transitions]
        assert actions == ["fired", "resolved", "fired"]

    def test_add_rule_is_idempotent_and_remove_clears_state(self):
        engine = _engine({"r": (0, 0)})
        engine.add_rule("extent < 5 for 2")
        engine.add_rule("extent  <  5  for 2")  # same canonical text
        assert len(engine.rules) == 1
        engine.evaluate("r", 1.0)
        assert engine.remove_rule("extent < 5 for 2") is True
        assert engine.remove_rule("extent < 5 for 2") is False
        assert engine.states() == []


class TestSignals:
    def test_exhausted_comes_from_the_probe(self):
        engine = _engine({"r": (5, 3)})
        assert engine.signal_value("r", "exhausted", 0.0) == 3.0
        assert engine.signal_value("r", "extent", 0.0) == 5.0

    def test_missing_table_probes_as_empty(self):
        engine = _engine({})
        assert engine.signal_value("gone", "extent", 0.0) == 0.0

    def test_ratio_is_zero_until_the_first_eviction(self):
        engine = _engine({"r": (5, 0)})
        assert engine.signal_value("r", "consume_evict_ratio", 0.0) == 0.0
        engine._table("r").consumed_total = 7
        assert engine.signal_value("r", "consume_evict_ratio", 0.0) == 0.0
        engine._table("r").evicted_total = 2
        assert engine.signal_value("r", "consume_evict_ratio", 0.0) == 3.5

    def test_half_life_is_inf_until_the_first_halving(self):
        extents = {"r": (100, 0)}
        engine = _engine(extents)
        engine.evaluate("r", 1.0)  # records (1, 100)
        assert math.isinf(engine.signal_value("r", "extent_half_life", 2.0))

    def test_half_life_measures_ticks_since_double_extent(self):
        extents = {"r": (100, 0)}
        engine = _engine(extents)
        engine.evaluate("r", 1.0)
        engine.evaluate("r", 2.0)
        extents["r"] = (50, 0)
        # last sample with extent >= 2x current was at tick 2
        assert engine.signal_value("r", "extent_half_life", 3.0) == 1.0

    def test_half_life_of_an_emptied_table(self):
        extents = {"r": (10, 0)}
        engine = _engine(extents)
        engine.evaluate("r", 1.0)
        extents["r"] = (0, 0)
        assert engine.signal_value("r", "extent_half_life", 4.0) == 3.0


class TestIntegration:
    def _db(self, rules):
        db = FungusDB(seed=1)
        db.create_table("r", Schema.of(v="int"))
        db.enable_telemetry()
        db.enable_forensics(rules=rules)
        return db

    def test_fired_alert_reaches_metrics_log_and_text(self):
        db = self._db(["extent > 3"])
        for i in range(5):
            db.insert("r", {"v": i})
        db.tick(1)
        forensics = db.forensics
        assert forensics.active_alerts() == [("r", "extent > 3", 5.0)]
        registry = db.telemetry.registry
        assert registry.value("repro_alert_active", table="r", rule="extent > 3") == 1.0
        assert registry.value("repro_alerts_fired_total", table="r", rule="extent > 3") == 1.0
        assert forensics.store.alert_log[-1].action == "fired"
        assert "extent > 3" in forensics.alerts_text()

    def test_resolved_alert_zeroes_the_gauge(self):
        db = self._db(["extent > 3"])
        for i in range(5):
            db.insert("r", {"v": i})
        db.tick(1)
        db.query("CONSUME SELECT v FROM r")
        db.tick(1)
        forensics = db.forensics
        assert forensics.active_alerts() == []
        registry = db.telemetry.registry
        assert registry.value("repro_alert_active", table="r", rule="extent > 3") == 0.0
        actions = [e.action for e in forensics.store.alert_log]
        assert actions == ["fired", "resolved"]

    def test_eviction_rate_rule_fires_under_heavy_rot(self):
        db = FungusDB(seed=2)
        db.create_table(
            "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5)
        )
        db.enable_forensics(rules=["eviction_rate > 0.5 for 2"])
        for i in range(30):
            db.insert("r", {"v": i})
        db.tick(4)
        fired = [e for e in db.forensics.store.alert_log if e.action == "fired"]
        assert fired
        assert fired[0].rule == "eviction_rate > 0.5 for 2"

    def test_consume_does_not_count_as_eviction_rate(self):
        db = self._db(["eviction_rate > 0.1"])
        for i in range(10):
            db.insert("r", {"v": i})
        db.query("CONSUME SELECT v FROM r")
        db.tick(1)
        assert db.forensics.active_alerts() == []
