"""Tests for repro.obs.tracing."""

import pytest

from repro.errors import ObsError
from repro.obs.tracing import (
    NULL_TRACER,
    JsonlTraceExporter,
    Tracer,
    read_trace,
    validate_spans,
    validate_trace,
)


class TestTracer:
    def test_nesting_links_parent_and_child(self):
        tracer = Tracer()
        with tracer.span("tick") as outer:
            with tracer.span("policy.cycle") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert [s.name for s in tracer.finished] == ["policy.cycle", "tick"]

    def test_sequential_ids_are_deterministic(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [s.span_id for s in tracer.finished]
        traces = [s.trace_id for s in tracer.finished]
        assert ids == [1, 2]
        assert traces == [1, 2]  # siblings at the root start new traces

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("query", kind="select") as span:
            span.set(rows=3)
        record = tracer.to_dicts()[0]
        assert record["attrs"] == {"kind": "select", "rows": 3}
        assert record["status"] == "ok"
        assert record["duration"] >= 0.0

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("tick"):
                raise ValueError("boom")
        record = tracer.to_dicts()[0]
        assert record["status"] == "error"
        assert "ValueError" in record["attrs"]["error"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
        assert tracer.current is None

    def test_leaked_inner_span_is_unwound(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        outer.__enter__()
        tracer.span("leaked").__enter__()  # never exited
        outer.__exit__(None, None, None)
        assert tracer.current is None

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("tick", x=1) as span:
            span.set(rows=5)
        assert NULL_TRACER.enabled is False


class TestJsonlRoundTrip:
    def test_export_read_validate(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(exporter=JsonlTraceExporter(path))
        with tracer.span("tick", clock=1):
            with tracer.span("policy.cycle", table="r"):
                pass
        tracer.close()
        spans = read_trace(path)
        assert len(spans) == 2
        assert validate_spans(spans) == []
        assert validate_trace(path) == []

    def test_exporter_counts_spans(self, tmp_path):
        exporter = JsonlTraceExporter(tmp_path / "t.jsonl")
        tracer = Tracer(exporter=exporter)
        with tracer.span("a"):
            pass
        assert exporter.spans_written == 1
        tracer.close()
        tracer.close()  # idempotent

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a"}\nnot json\n')
        with pytest.raises(ObsError, match="bad JSON"):
            read_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError):
            read_trace(tmp_path / "absent.jsonl")

    def test_empty_trace_is_a_problem(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert validate_trace(path) != []


class TestValidateSpans:
    def _span(self, **over):
        base = {
            "name": "x",
            "trace_id": 1,
            "span_id": 1,
            "parent_id": None,
            "start": 0.0,
            "end": 1.0,
        }
        base.update(over)
        return base

    def test_missing_keys(self):
        assert validate_spans([{"name": "x"}])

    def test_duplicate_span_ids(self):
        spans = [self._span(), self._span()]
        assert any("duplicate" in p for p in validate_spans(spans))

    def test_unknown_parent(self):
        spans = [self._span(span_id=2, parent_id=99)]
        assert any("unknown" in p for p in validate_spans(spans))

    def test_parent_opened_after_child(self):
        spans = [
            self._span(span_id=2, parent_id=None),
            self._span(span_id=1, parent_id=2),
        ]
        assert any("before its parent" in p for p in validate_spans(spans))

    def test_child_escaping_parent_interval(self):
        spans = [
            self._span(span_id=1, start=0.0, end=1.0),
            self._span(span_id=2, parent_id=1, start=0.5, end=2.0),
        ]
        assert any("escapes parent" in p for p in validate_spans(spans))

    def test_cross_trace_parent(self):
        spans = [
            self._span(span_id=1, trace_id=1),
            self._span(span_id=2, parent_id=1, trace_id=2),
        ]
        assert any("crosses traces" in p for p in validate_spans(spans))

    def test_valid_tree_passes(self):
        spans = [
            self._span(span_id=1, start=0.0, end=2.0),
            self._span(span_id=2, parent_id=1, start=0.5, end=1.5),
        ]
        assert validate_spans(spans) == []
