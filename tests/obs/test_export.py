"""Tests for repro.obs.export — Prometheus text round-trips."""

import math

import pytest

from repro.errors import ObsError
from repro.obs.export import parse_prometheus, render_prometheus, sample_value
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    r = MetricsRegistry()
    counter = r.counter("repro_rows_total", "Rows seen.", ("table",))
    counter.labels(table="a").inc(3)
    counter.labels(table="b").inc(1)
    r.gauge("repro_extent", "Live rows.", ("table",)).labels(table="a").set(7)
    hist = r.histogram("repro_batch", "Batch sizes.", buckets=(1, 10))
    hist.observe(0.5)
    hist.observe(99)
    r.ewma("repro_rate", "A rate.", tau=10.0).mark(5.0, now=0.0)
    return r


class TestRender:
    def test_help_and_type_lines(self, registry):
        text = render_prometheus(registry)
        assert "# HELP repro_rows_total Rows seen." in text
        assert "# TYPE repro_rows_total counter" in text
        assert "# TYPE repro_extent gauge" in text
        assert "# TYPE repro_batch histogram" in text
        # ewma is a derived rate: exposed as a plain gauge
        assert "# TYPE repro_rate gauge" in text

    def test_sample_lines(self, registry):
        text = render_prometheus(registry)
        assert 'repro_rows_total{table="a"} 3' in text
        assert 'repro_batch_bucket{le="+Inf"} 2' in text
        assert "repro_batch_count 2" in text

    def test_label_escaping(self):
        r = MetricsRegistry()
        r.gauge("g", "", ("path",)).labels(path='a"b\\c\nd').set(1)
        text = render_prometheus(r)
        assert 'path="a\\"b\\\\c\\nd"' in text
        # and the strict reader can round-trip the escaped value
        parse_prometheus(text)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestRoundTrip:
    def test_parse_recovers_every_sample(self, registry):
        samples = parse_prometheus(render_prometheus(registry))
        assert sample_value(samples, "repro_rows_total", table="a") == 3.0
        assert sample_value(samples, "repro_rows_total", table="b") == 1.0
        assert sample_value(samples, "repro_extent", table="a") == 7.0
        assert sample_value(samples, "repro_batch_bucket", le="1") == 1.0
        assert sample_value(samples, "repro_batch_bucket", le="+Inf") == 2.0
        assert sample_value(samples, "repro_batch_sum") == pytest.approx(99.5)
        assert sample_value(samples, "repro_rate") == pytest.approx(0.5)

    def test_histogram_buckets_are_cumulative(self, registry):
        samples = parse_prometheus(render_prometheus(registry))
        b1 = sample_value(samples, "repro_batch_bucket", le="1")
        binf = sample_value(samples, "repro_batch_bucket", le="+Inf")
        assert b1 <= binf
        assert binf == sample_value(samples, "repro_batch_count")

    def test_missing_sample_raises(self, registry):
        samples = parse_prometheus(render_prometheus(registry))
        with pytest.raises(ObsError):
            sample_value(samples, "repro_rows_total", table="zz")


class TestStrictReader:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ObsError, match="no # TYPE"):
            parse_prometheus("orphan_total 3\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ObsError, match="malformed sample"):
            parse_prometheus("# TYPE x counter\nx{ 3\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ObsError, match="malformed labels"):
            parse_prometheus('# TYPE x counter\nx{bad} 3\n')

    def test_duplicate_sample_rejected(self):
        text = "# TYPE x counter\nx 1\nx 2\n"
        with pytest.raises(ObsError, match="duplicate"):
            parse_prometheus(text)

    def test_special_values(self):
        text = "# TYPE x gauge\nx +Inf\n# TYPE y gauge\ny NaN\n"
        samples = parse_prometheus(text)
        assert samples[("x", ())] == math.inf
        assert math.isnan(samples[("y", ())])
