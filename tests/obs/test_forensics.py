"""Tests for rot forensics: death records, the lineage store, chains.

Covers the forensic vocabulary (causes, infection events), chain
resolution back to seed events, rot-spot reconstruction, the bounded
store, and the end-of-run audit contract the CI replay sweep enforces.
"""

import pytest

from repro.core.db import FungusDB
from repro.errors import ObsError
from repro.fungi import EGIFungus, LinearDecayFungus
from repro.obs.forensics import Forensics
from repro.obs.forensics.records import (
    CAUSES,
    REASON_TO_CAUSE,
    DeathRecord,
    InfectionEvent,
)
from repro.obs.forensics.store import (
    LineageStore,
    TERMINUS_CYCLE,
    TERMINUS_EXPIRED,
    TERMINUS_INSERTED,
    TERMINUS_SEED,
    TERMINUS_TRUNCATED,
)
from repro.storage.schema import Schema


def _egi_db(seed=7, rows=40, rate=0.5, **forensics_kwargs):
    db = FungusDB(seed=seed)
    db.create_table(
        "r",
        Schema.of(v="int"),
        fungus=EGIFungus(seeds_per_cycle=2, decay_rate=rate),
    )
    forensics = db.enable_forensics(**forensics_kwargs)
    for i in range(rows):
        db.insert("r", {"v": i})
    return db, forensics


def _plain_db():
    db = FungusDB(seed=3)
    db.create_table("r", Schema.of(v="int"))
    forensics = db.enable_forensics()
    for i in range(6):
        db.insert("r", {"v": i})
    return db, forensics


class TestVocabulary:
    def test_every_reason_maps_to_a_known_cause(self):
        assert set(REASON_TO_CAUSE.values()) == set(CAUSES)

    def test_enable_is_idempotent(self):
        db = FungusDB(seed=1)
        assert db.enable_forensics() is db.enable_forensics()
        db.disable_forensics()
        assert db.forensics is None
        db.disable_forensics()  # no-op when off

    def test_store_rejects_bad_bounds(self):
        with pytest.raises(ObsError, match="trajectory_len"):
            LineageStore(trajectory_len=0)
        with pytest.raises(ObsError, match="max_deaths"):
            LineageStore(max_deaths=0)


class TestCauses:
    def test_decay_eviction_closes_as_evicted(self):
        db, forensics = _egi_db()
        db.tick(30)
        deaths = forensics.deaths("r")
        assert deaths, "EGI at rate 0.5 should have evicted something"
        evicted = [r for r in deaths if r.cause == "evicted"]
        assert evicted
        for record in evicted:
            assert record.fungus == "egi"
            assert record.origin in ("seed", "spread")

    def test_consume_records_the_query_text(self):
        db, forensics = _plain_db()
        sql = "CONSUME SELECT v FROM r WHERE v < 2"
        db.query(sql)
        consumed = [r for r in forensics.deaths("r") if r.cause == "consumed"]
        assert len(consumed) == 2
        for record in consumed:
            assert record.query == sql

    def test_drop_table_closes_survivors_as_truncated(self):
        db, forensics = _plain_db()
        db.drop_table("r")
        deaths = forensics.deaths("r")
        assert len(deaths) == 6
        assert all(r.cause == "truncated" for r in deaths)

    def test_restored_over_records_fresh_fids_past_watermark(self):
        db, forensics = _plain_db()
        db.tick(1)
        old = FungusDB(seed=9)
        old.create_table("r", Schema.of(v="int"))
        for i in range(3):
            old.insert("r", {"v": i})
        recorded = forensics.record_restored_over(old)
        assert recorded == 3
        overs = [r for r in forensics.deaths("r") if r.cause == "restored-over"]
        assert len(overs) == 3
        live_fids = {life.fid for life in forensics.store._lives["r"].values()}
        assert live_fids.isdisjoint({r.fid for r in overs})


class TestChains:
    def test_every_egi_death_resolves_to_a_seed(self):
        db, forensics = _egi_db()
        db.tick(30)
        deaths = forensics.deaths("r")
        assert deaths
        for record in deaths:
            chain = forensics.store.resolve_chain("r", record)
            assert chain.complete, (record, chain.terminus)
            assert chain.terminus == TERMINUS_SEED
        # EGI spreads along neighbours, so some chains are > 1 hop
        assert any(
            len(forensics.store.resolve_chain("r", r).links) > 1 for r in deaths
        )

    def test_uninfected_death_terminates_at_insertion(self):
        db, forensics = _plain_db()
        db.query("CONSUME SELECT v FROM r WHERE v = 0")
        chain = forensics.why("r", 0)
        assert chain is not None
        assert chain.terminus == TERMINUS_INSERTED
        assert len(chain.links) == 1

    def test_why_live_row_resolves_before_death(self):
        db, forensics = _plain_db()
        chain = forensics.why("r", 4)
        assert chain is not None
        assert chain.links[0].alive is True
        assert chain.terminus == TERMINUS_INSERTED

    def test_why_unknown_reference_is_none(self):
        db, forensics = _plain_db()
        assert forensics.why("r", 999) is None
        assert forensics.why("missing", 0) is None
        assert "no forensic record" in forensics.why_text("r", 999)

    def test_rid_lookup_falls_back_to_most_recent_death(self):
        db, forensics = _plain_db()
        db.query("CONSUME SELECT v FROM r WHERE v = 3")
        chain = forensics.why("r", 3)  # rid 3 is dead now
        assert chain is not None
        assert chain.links[0].record is not None
        assert chain.links[0].record.cause == "consumed"

    def test_expired_ancestor_is_an_explicit_terminus(self):
        store = LineageStore(max_deaths=2)
        store.born("r", 0, 0.0)
        store.infected("r", 0, "egi", "seed", None, 0.0)
        store.born("r", 1, 0.0)
        store.infected("r", 1, "egi", "spread", 0, 1.0)
        store.died("r", 0, "decay", 2.0)
        # push fid 0's record out of the bounded store
        for rid in (10, 11):
            store.born("r", rid, 0.0)
            store.died("r", rid, "decay", 3.0)
        chain = store.why("r", 1)
        assert chain.terminus == TERMINUS_EXPIRED
        assert not chain.complete

    def test_lineage_cycle_is_detected_not_looped(self):
        store = LineageStore()
        store.born("r", 0, 0.0)
        store.born("r", 1, 0.0)
        store.infected("r", 0, "egi", "spread", 1, 1.0)
        store.infected("r", 1, "egi", "spread", 0, 1.0)
        chain = store.why("r", 0)
        assert chain.terminus == TERMINUS_CYCLE


class TestAdoption:
    def test_rows_older_than_forensics_still_get_records(self):
        db = FungusDB(seed=5)
        db.create_table(
            "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5)
        )
        for i in range(4):
            db.insert("r", {"v": i})
        forensics = db.enable_forensics()  # after the inserts
        db.tick(3)
        assert len(forensics.deaths("r")) == 4
        assert forensics.audit() == []


class TestBounds:
    def test_death_records_are_fifo_bounded(self):
        db, forensics = _plain_db()
        db.disable_forensics()
        forensics = db.enable_forensics(max_deaths=4)
        for i in range(6):
            db.insert("r", {"v": 100 + i})
        db.query("CONSUME SELECT v FROM r")
        deaths = forensics.deaths("r")
        assert len(deaths) == 4
        assert forensics.store.deaths_recorded == 12  # 6 old + 6 new rows
        fids = [r.fid for r in deaths]
        assert fids == sorted(fids)  # oldest evicted first, order kept

    def test_trajectory_is_a_ring_buffer(self):
        db = FungusDB(seed=2)
        db.create_table(
            "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.01)
        )
        forensics = db.enable_forensics(trajectory_len=4)
        db.insert("r", {"v": 1})
        db.tick(10)
        life = forensics.store.life("r", 0)
        assert life is not None
        assert len(life.trajectory) == 4
        ticks = [t for t, _ in life.trajectory]
        assert ticks == sorted(ticks)

    def test_alert_log_is_bounded(self):
        from repro.obs.forensics.store import AlertLogEntry

        store = LineageStore(max_alerts=3)
        for i in range(5):
            store.log_alert(AlertLogEntry(float(i), "r", "extent > 0", "fired"))
        assert len(store.alert_log) == 3
        assert store.alert_log[0].tick == 2.0


class TestCompaction:
    def test_fids_survive_rid_renumbering(self):
        db, forensics = _plain_db()
        before = {
            rid: life.fid for rid, life in forensics.store._lives["r"].items()
        }
        db.query("CONSUME SELECT v FROM r WHERE v % 2 = 0")  # tombstones
        table = db.table("r")
        remap = table.compact()
        assert remap, "compaction should have renumbered something"
        for old_rid, new_rid in remap.items():
            if old_rid in before:
                life = forensics.store.life("r", new_rid)
                assert life is not None
                assert life.fid == before[old_rid]
        # dead rows' records kept their fids too
        dead_fids = {r.fid for r in forensics.deaths("r")}
        live_fids = {life.fid for life in forensics.store._lives["r"].values()}
        assert dead_fids.isdisjoint(live_fids)


class TestSpots:
    def test_contiguous_fungus_deaths_group_into_veins(self):
        store = LineageStore()
        for rid in range(12):
            store.born("r", rid, 0.0)
        for rid in (0, 1, 2, 3, 4, 9, 10):
            store.infected("r", rid, "egi", "seed", None, 1.0)
            store.died("r", rid, "decay", 2.0 + rid * 0.5)
        spots = store.spots("r")
        assert [(s.fid_lo, s.fid_hi, s.size) for s in spots] == [
            (0, 4, 5),
            (9, 10, 2),
        ]
        first = spots[0]
        assert first.fungi == ("egi",)
        assert first.birth_tick == 1.0
        assert first.growth[-1][1] == 5  # cumulative count reaches the size
        counts = [n for _, n in first.growth]
        assert counts == sorted(counts)

    def test_non_fungus_deaths_are_not_spots(self):
        db, forensics = _plain_db()
        db.query("CONSUME SELECT v FROM r")
        assert forensics.spots("r") == []
        assert "no rot spots" in forensics.spots_text("r")

    def test_egi_run_reconstructs_at_least_one_spot(self):
        db, forensics = _egi_db(rows=60, rate=0.5)
        db.tick(40)
        spots = forensics.spots("r")
        assert spots
        assert all(s.first_death <= s.last_death for s in spots)
        assert "rot spots in 'r'" in forensics.spots_text("r")


class TestAudit:
    def test_clean_run_audits_clean(self):
        db, forensics = _egi_db()
        db.tick(30)
        db.query("CONSUME SELECT v FROM r WHERE v < 5")
        assert forensics.audit() == []

    def test_unknown_cause_is_flagged(self):
        store = LineageStore()
        store._remember(
            DeathRecord(
                fid=0, table="r", rid=0, cause="mystery",
                born_tick=None, death_tick=1.0,
            )
        )
        problems = store.audit()
        assert any("unknown death cause" in p for p in problems)

    def test_truncated_lineage_is_flagged_except_for_restored_over(self):
        orphan = (InfectionEvent("egi", "spread", None, 1.0),)
        store = LineageStore()
        store._remember(
            DeathRecord(
                fid=0, table="r", rid=0, cause="evicted",
                born_tick=0.0, death_tick=1.0, fungus="egi",
                origin="spread", infections=orphan,
            )
        )
        store._remember(
            DeathRecord(
                fid=1, table="r", rid=1, cause="restored-over",
                born_tick=0.0, death_tick=1.0, fungus="egi",
                origin="spread", infections=orphan,
            )
        )
        problems = store.audit()
        assert len(problems) == 1
        assert "fid 0" in problems[0]


class TestRendering:
    def test_why_text_shows_cause_query_and_terminus(self):
        db, forensics = _plain_db()
        sql = "CONSUME SELECT v FROM r WHERE v = 1"
        db.query(sql)
        text = forensics.why_text("r", 1)
        assert text.startswith("why r rid 1:")
        assert "[consumed" in text
        assert sql in text
        assert "died uninfected" in text

    def test_why_text_renders_spread_hops(self):
        db, forensics = _egi_db()
        db.tick(30)
        spread = next(
            r for r in forensics.deaths("r") if r.origin == "spread"
        )
        text = forensics.why_text("r", spread.fid, by_fid=True)
        assert "spread from fid" in text
        assert "seeded by egi" in text
        assert "chain complete" in text

    def test_trajectory_line_in_why_text(self):
        db = FungusDB(seed=2)
        db.create_table(
            "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.4)
        )
        forensics = db.enable_forensics()
        db.insert("r", {"v": 1})
        db.tick(4)
        text = forensics.why_text("r", 0)
        assert "f trajectory:" in text


class TestAcceptance:
    """The ISSUE's contract: a seeded 200-tick EGI run is fully accounted."""

    def test_every_removed_tuple_has_a_complete_death_record(self):
        db, forensics = _egi_db(seed=42, rows=60, rate=0.25)
        db.tick(200)
        store = forensics.store
        assert forensics.audit() == []
        live_fids = {life.fid for life in store._lives.get("r", {}).values()}
        dead_fids = set(store._deaths.get("r", {}))
        # fids partition the insertion ordinals: every tuple is either
        # still alive or closed into exactly one death record
        assert live_fids.isdisjoint(dead_fids)
        assert live_fids | dead_fids == set(range(store._next_fid["r"]))
        assert len(dead_fids) == 60 - db.extent("r")
        for record in forensics.deaths("r"):
            assert store.resolve_chain("r", record).complete
