"""Tests for repro.core.table (DecayingTable)."""

import random

import pytest

from repro.core.events import TupleDecayed, TupleEvicted, TupleInserted
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.storage import RowSet, Schema


class TestSchemaRules:
    def test_reserved_columns_rejected(self, clock):
        with pytest.raises(DecayError, match="reserved"):
            DecayingTable("r", Schema.of(t="int"), clock)
        with pytest.raises(DecayError, match="reserved"):
            DecayingTable("r", Schema.of(f="float"), clock)

    def test_storage_schema_prepends_t_f(self, decaying):
        assert decaying.storage.schema.names == ("t", "f", "v")

    def test_custom_column_names(self, clock):
        table = DecayingTable(
            "r", Schema.of(t_orig="int"), clock, time_column="ts", freshness_column="fresh"
        )
        rid = table.insert({"t_orig": 1})
        assert table.storage.schema.names[0] == "ts"
        assert table.freshness(rid) == 1.0


class TestInsert:
    def test_stamps_time_and_freshness(self, clock, decaying):
        clock.advance(5)
        rid = decaying.insert({"v": 42})
        assert decaying.inserted_at(rid) == 5.0
        assert decaying.freshness(rid) == 1.0

    def test_age(self, clock, decaying):
        clock.advance(7)
        assert decaying.age(0) == 7.0

    def test_insert_publishes_event(self, decaying):
        seen = []
        decaying.bus.subscribe(TupleInserted, seen.append)
        decaying.insert({"v": 1})
        assert len(seen) == 1

    def test_insert_many(self, decaying):
        rows = decaying.insert_many([{"v": 100}, {"v": 101}])
        assert len(rows) == 2
        assert len(decaying) == 12

    def test_attributes_of(self, decaying):
        assert decaying.attributes_of(3) == {"v": 3}

    def test_row_dict_includes_t_f(self, decaying):
        assert decaying.row_dict(3) == {"t": 0.0, "f": 1.0, "v": 3}


class TestFreshnessMutation:
    def test_decay(self, decaying):
        new = decaying.decay(0, 0.3, "test")
        assert new == pytest.approx(0.7)
        assert decaying.freshness(0) == pytest.approx(0.7)

    def test_decay_negative_rejected(self, decaying):
        with pytest.raises(DecayError):
            decaying.decay(0, -0.1, "test")

    def test_decay_publishes_event(self, decaying):
        seen = []
        decaying.bus.subscribe(TupleDecayed, seen.append)
        decaying.decay(0, 0.3, "spore")
        assert seen[0].fungus == "spore"
        assert seen[0].old_freshness == 1.0

    def test_no_event_when_unchanged(self, decaying):
        seen = []
        decaying.bus.subscribe(TupleDecayed, seen.append)
        decaying.set_freshness(0, 1.0)
        assert seen == []

    def test_exhausted_tracking(self, decaying):
        decaying.decay(0, 1.0, "test")
        assert decaying.exhausted == RowSet([0])
        assert len(decaying) == 10  # still live until evicted

    def test_refresh_leaves_exhausted_set(self, decaying):
        decaying.decay(0, 1.0, "test")
        decaying.set_freshness(0, 0.5, "refresh")
        assert decaying.exhausted == RowSet.empty()

    def test_scale_freshness(self, decaying):
        decaying.scale_freshness(0, 0.5, "test")
        assert decaying.freshness(0) == 0.5

    def test_scale_factor_validated(self, decaying):
        with pytest.raises(DecayError):
            decaying.scale_freshness(0, 1.5, "test")

    def test_freshness_values_order(self, decaying):
        decaying.decay(3, 0.4, "test")
        values = decaying.freshness_values()
        assert values[3] == pytest.approx(0.6)
        assert len(values) == 10


class TestPinning:
    def test_pinned_rows_resist_decay(self, decaying):
        decaying.pin(2)
        decaying.decay(2, 0.9, "test")
        assert decaying.freshness(2) == 1.0

    def test_pinned_rows_can_gain(self, decaying):
        decaying.set_freshness(2, 0.5)
        decaying.pin(2)
        decaying.set_freshness(2, 0.8)
        assert decaying.freshness(2) == 0.8

    def test_unpin_restores_decay(self, decaying):
        decaying.pin(2)
        decaying.unpin(2)
        decaying.decay(2, 0.4, "test")
        assert decaying.freshness(2) == pytest.approx(0.6)

    def test_pin_dead_row_rejected(self, decaying):
        decaying.evict(RowSet([2]), "manual")
        import pytest as _pytest

        with _pytest.raises(Exception):
            decaying.pin(2)

    def test_eviction_clears_pin(self, decaying):
        decaying.pin(2)
        decaying.evict(RowSet([2]), "manual")
        assert len(decaying.pinned) == 0

    def test_is_pinned(self, decaying):
        decaying.pin(2)
        assert decaying.is_pinned(2)
        assert not decaying.is_pinned(3)


class TestEviction:
    def test_evict_returns_rows(self, decaying):
        rows = decaying.evict(RowSet([1, 2]), "decay", collect_values=True)
        assert [r["v"] for r in rows] == [1, 2]
        assert len(decaying) == 8

    def test_evict_return_dicts_are_lazy(self, decaying):
        # nobody subscribes to TupleEvicted here, so the default skips
        # materialising the value dicts entirely
        assert decaying.evict(RowSet([1]), "decay") == []
        assert len(decaying) == 9
        seen = []
        decaying.bus.subscribe(TupleEvicted, seen.append)
        rows = decaying.evict(RowSet([2]), "decay")
        assert [r["v"] for r in rows] == [2]
        assert len(seen) == 1

    def test_evict_publishes_reason(self, decaying):
        seen = []
        decaying.bus.subscribe(TupleEvicted, seen.append)
        decaying.evict(RowSet([1]), "consume")
        assert seen[0].reason == "consume"
        assert seen[0].values[2] == 1  # v column

    def test_external_delete_gets_labelled(self, decaying):
        seen = []
        decaying.bus.subscribe(TupleEvicted, seen.append)
        decaying.set_eviction_reason("consume")
        decaying.storage.delete(4)  # e.g. the query engine
        assert seen[0].reason == "consume"

    def test_external_delete_default_reason(self, decaying):
        seen = []
        decaying.bus.subscribe(TupleEvicted, seen.append)
        decaying.storage.delete(4)
        assert seen[0].reason == "external"

    def test_evict_clears_exhausted(self, decaying):
        decaying.decay(1, 1.0, "test")
        decaying.evict(RowSet([1]), "decay")
        assert decaying.exhausted == RowSet.empty()


class TestNavigationAndSampling:
    def test_neighbours_passthrough(self, decaying):
        assert decaying.neighbours(5) == (4, 6)

    def test_oldest_live(self, decaying):
        assert decaying.oldest_live() == 0
        decaying.evict(RowSet([0, 1]), "decay")
        assert decaying.oldest_live() == 2

    def test_oldest_live_empty(self, clock):
        table = DecayingTable("r", Schema.of(v="int"), clock)
        assert table.oldest_live() is None

    def test_sample_live_size(self, decaying):
        rng = random.Random(1)
        sample = decaying.sample_live(rng, 5)
        assert len(sample) == 5
        assert all(decaying.is_live(rid) for rid in sample)

    def test_sample_live_more_than_live(self, decaying):
        rng = random.Random(1)
        assert len(decaying.sample_live(rng, 100)) == 10

    def test_sample_live_with_many_tombstones(self, decaying):
        decaying.evict(RowSet(range(8)), "decay")
        rng = random.Random(2)
        sample = decaying.sample_live(rng, 2)
        assert sorted(sample) == [8, 9]

    def test_sample_live_empty(self, clock):
        table = DecayingTable("r", Schema.of(v="int"), clock)
        assert table.sample_live(random.Random(1), 3) == []


class TestCompaction:
    def test_compact_remaps_exhausted_and_pinned(self, decaying):
        decaying.decay(5, 1.0, "test")
        decaying.pin(7)
        decaying.evict(RowSet([0, 1]), "decay")
        decaying.compact()
        assert decaying.exhausted == RowSet([3])  # old rid 5
        assert decaying.pinned == RowSet([5])  # old rid 7
