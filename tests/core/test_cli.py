"""Tests for the interactive shell (repro.cli)."""

import pytest

from repro.cli import FungusShell, parse_fungus_spec
from repro.errors import FungusError
from repro.fungi import (
    BlueCheeseFungus,
    EGIFungus,
    ExponentialDecayFungus,
    LinearDecayFungus,
    NullFungus,
    RetentionFungus,
)


@pytest.fixture
def shell():
    return FungusShell(seed=1)


class TestFungusSpecs:
    def test_none(self):
        assert isinstance(parse_fungus_spec("none"), NullFungus)

    def test_egi_defaults_and_args(self):
        fungus = parse_fungus_spec("egi")
        assert isinstance(fungus, EGIFungus)
        fungus = parse_fungus_spec("egi:4,0.5")
        assert fungus.seeds_per_cycle == 4
        assert fungus.decay_rate == 0.5

    def test_retention(self):
        assert isinstance(parse_fungus_spec("retention:20"), RetentionFungus)

    def test_linear(self):
        assert parse_fungus_spec("linear:0.1").rate == 0.1
        assert isinstance(parse_fungus_spec("linear:0.1"), LinearDecayFungus)

    def test_exp(self):
        assert isinstance(parse_fungus_spec("exp:5"), ExponentialDecayFungus)

    def test_bluecheese(self):
        fungus = parse_fungus_spec("bluecheese:2,0.1")
        assert isinstance(fungus, BlueCheeseFungus)
        assert fungus.max_spots == 2

    def test_unknown(self):
        with pytest.raises(FungusError, match="unknown fungus"):
            parse_fungus_spec("mold")

    def test_bad_args(self):
        with pytest.raises(FungusError, match="bad fungus spec"):
            parse_fungus_spec("linear:abc")
        with pytest.raises(FungusError, match="bad fungus spec"):
            parse_fungus_spec("retention")


class TestCommands:
    def test_create_and_tables(self, shell):
        out = shell.execute_line("create r v:int k:str --fungus linear:0.1")
        assert "created" in out
        out = shell.execute_line("tables")
        assert "r: extent=0" in out and "linear" in out

    def test_insert_and_query(self, shell):
        shell.execute_line("create r v:int")
        assert "rid 0" in shell.execute_line("insert r v=5")
        out = shell.execute_line("SELECT v FROM r")
        assert "5" in out and "(1 rows)" in out

    def test_insert_type_coercion(self, shell):
        shell.execute_line("create r x:float b:bool s:str")
        out = shell.execute_line("insert r x=1.5 b=true s=hello")
        assert "rid" in out

    def test_insert_bad_bool(self, shell):
        shell.execute_line("create r b:bool")
        assert "error" in shell.execute_line("insert r b=maybe")

    def test_gen(self, shell):
        shell.execute_line("create r v:int")
        out = shell.execute_line("gen r 20")
        assert "20 random rows" in out

    def test_tick_decays(self, shell):
        shell.execute_line("create r v:int --fungus linear:0.5")
        shell.execute_line("gen r 10")
        out = shell.execute_line("tick 2")
        assert "r=0" in out

    def test_consume_reports_law2(self, shell):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=5")
        out = shell.execute_line("CONSUME SELECT v FROM r WHERE v = 5")
        assert "consumed 1 tuples (Law 2)" in out

    def test_health(self, shell):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=1")
        assert "extent=1" in shell.execute_line("health r")

    def test_summary_empty(self, shell):
        shell.execute_line("create r v:int")
        assert "nothing distilled" in shell.execute_line("summary r")

    def test_summary_after_consume(self, shell):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=5")
        shell.execute_line("CONSUME SELECT v FROM r WHERE v = 5")
        out = shell.execute_line("summary r")
        assert "1 rows" in out

    def test_explain(self, shell):
        shell.execute_line("create r v:int")
        out = shell.execute_line("explain SELECT v FROM r WHERE t >= 2 LIMIT 3")
        assert "scan r" in out and "range" in out and "limit 3" in out

    def test_explain_consume(self, shell):
        shell.execute_line("create r v:int")
        out = shell.execute_line("explain CONSUME SELECT v FROM r")
        assert "Law 2" in out

    def test_explain_usage_and_errors(self, shell):
        assert "usage" in shell.execute_line("explain")
        assert "error" in shell.execute_line("explain SELECT v FROM missing")

    def test_save_and_load(self, shell, tmp_path):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=1")
        assert "saved 1" in shell.execute_line(f"save {tmp_path}")
        assert "loaded 1" in shell.execute_line(f"load {tmp_path}")
        assert shell.db.extent("r") == 1


class TestTraceCommands:
    def test_record_and_replay(self, shell, tmp_path):
        shell.execute_line("create r v:int")
        assert "recording" in shell.execute_line("trace start")
        shell.execute_line("insert r v=1")
        shell.execute_line("tick 2")
        shell.execute_line("SELECT count(*) FROM r")
        path = tmp_path / "t.jsonl"
        assert "4 events" in shell.execute_line(f"trace stop {path}")

        fresh = FungusShell(seed=9)
        fresh.execute_line("create r v:int")
        out = fresh.execute_line(f"trace replay {path}")
        assert "1 inserts" in out and "2 ticks" in out
        assert fresh.db.extent("r") == 1

    def test_double_start_rejected(self, shell):
        shell.execute_line("trace start")
        assert "already recording" in shell.execute_line("trace start")

    def test_stop_without_start(self, shell, tmp_path):
        assert "not recording" in shell.execute_line(f"trace stop {tmp_path / 'x'}")

    def test_replay_missing_file(self, shell, tmp_path):
        shell.execute_line("create r v:int")
        assert "error" in shell.execute_line(f"trace replay {tmp_path / 'missing'}")

    def test_usage(self, shell):
        assert "usage" in shell.execute_line("trace")
        assert "unknown trace action" in shell.execute_line("trace pause")


class TestErrorsAndNoise:
    def test_blank_and_comment_lines(self, shell):
        assert shell.execute_line("") == ""
        assert shell.execute_line("# a comment") == ""

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute_line("frobnicate")

    def test_query_error_reported(self, shell):
        assert "error" in shell.execute_line("SELECT * FROM missing")

    def test_bad_query_syntax(self, shell):
        assert "error" in shell.execute_line("SELECT FROM")

    def test_create_usage(self, shell):
        assert "usage" in shell.execute_line("create r")

    def test_help(self, shell):
        assert "commands:" in shell.execute_line("help")

    def test_unbalanced_quotes(self, shell):
        assert "error" in shell.execute_line("insert r v='unclosed")


class TestForensicsCommands:
    def test_help_lists_why_and_alerts(self, shell):
        out = shell.execute_line("help")
        assert "why <table> <rowid>" in out
        assert "alerts" in out

    def test_why_usage(self, shell):
        assert "usage: why" in shell.execute_line("why")
        assert "usage: why" in shell.execute_line("why r")

    def test_why_unknown_tuple(self, shell):
        shell.execute_line("create r v:int")
        assert "no forensic record" in shell.execute_line("why r 99")

    def test_why_explains_a_consumed_tuple(self, shell):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=5")
        shell.execute_line("CONSUME SELECT v FROM r WHERE v = 5")
        out = shell.execute_line("why r 0")
        assert out.startswith("why r rid 0:")
        assert "[consumed" in out
        assert "CONSUME SELECT v FROM r WHERE v = 5" in out

    def test_why_by_fid(self, shell):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=1")
        assert "why r fid 0:" in shell.execute_line("why r 0 --fid")

    def test_why_explains_fungus_rot(self, shell):
        shell.execute_line("create r v:int --fungus egi:2,0.5")
        shell.execute_line("gen r 20")
        shell.execute_line("tick 20")
        deaths = shell.db.forensics.deaths("r")
        assert deaths
        out = shell.execute_line(f"why r {deaths[0].fid} --fid")
        assert "egi" in out and "chain complete" in out

    def test_alerts_default_shows_armed_rules(self, shell):
        out = shell.execute_line("alerts")
        assert "no alerts firing" in out
        out = shell.execute_line("alerts rules")
        assert "eviction_rate > 2 for 5" in out  # DEFAULT_RULES armed

    def test_alerts_add_and_remove(self, shell):
        assert "armed rule: extent > 3" in shell.execute_line("alerts add extent > 3")
        shell.execute_line("create r v:int")
        for i in range(5):
            shell.execute_line(f"insert r v={i}")
        shell.execute_line("tick 1")
        assert "extent > 3" in shell.execute_line("alerts")
        assert "removed rule" in shell.execute_line("alerts rm extent > 3")
        assert "no such rule" in shell.execute_line("alerts rm extent > 3")

    def test_alerts_add_rejects_garbage(self, shell):
        assert "error" in shell.execute_line("alerts add humidity > 3")

    def test_alerts_spots(self, shell):
        shell.execute_line("create r v:int")
        assert "no rot spots" in shell.execute_line("alerts spots r")
        assert "usage" in shell.execute_line("alerts spots")

    def test_alerts_unknown_action(self, shell):
        assert "unknown alerts action" in shell.execute_line("alerts frob")

    def test_queries_command_aggregates_fingerprints(self, shell):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=1")
        shell.execute_line("SELECT v FROM r WHERE v > 0")
        shell.execute_line("SELECT v FROM r WHERE v > 5")
        out = shell.execute_line("queries")
        assert "SELECT v FROM r WHERE (v > ?)" in out
        assert "calls" in out  # the header row
        row = next(
            line for line in out.splitlines() if "WHERE (v > ?)" in line
        )
        assert row.split()[0] == "2"  # both literals share one shape

    def test_queries_command_empty_and_bad_ordering(self, shell):
        assert "no statements recorded" in shell.execute_line("queries")
        assert "error" in shell.execute_line("queries humidity")
        assert "usage" in shell.execute_line("queries calls 5 extra")

    def test_queries_survive_save_load(self, shell, tmp_path):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=1")
        shell.execute_line("SELECT v FROM r")
        shell.execute_line(f"save {tmp_path}")
        shell.execute_line(f"load {tmp_path}")
        assert "SELECT v FROM r" in shell.execute_line("queries")

    def test_load_records_restored_over(self, shell, tmp_path):
        shell.execute_line("create r v:int")
        shell.execute_line("insert r v=1")
        shell.execute_line(f"save {tmp_path}")
        shell.execute_line("insert r v=2")  # lives only in the session
        out = shell.execute_line(f"load {tmp_path}")
        assert "2 live tuple(s) of the previous session recorded as restored-over" in out
        deaths = shell.db.forensics.deaths("r")
        assert [d.cause for d in deaths] == ["restored-over", "restored-over"]
        assert shell.db.forensics.audit() == []
