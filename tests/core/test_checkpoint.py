"""Tests for repro.core.checkpoint."""

import json

import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.errors import SnapshotError
from repro.fungi import LinearDecayFungus
from repro.storage import Schema


@pytest.fixture
def populated_db():
    db = FungusDB(seed=5)
    db.create_table("a", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.1))
    db.create_table("b", Schema.of(name="str"))
    db.insert("a", {"v": 1})
    db.tick(3)
    db.insert("a", {"v": 2})
    db.insert("b", {"name": "x"})
    return db


class TestSaveLoad:
    def test_roundtrip_rows_and_clock(self, populated_db, tmp_path):
        tables = save_checkpoint(populated_db, tmp_path)
        assert tables == ["a", "b"]
        loaded = load_checkpoint(tmp_path)
        assert loaded.now == 3.0
        assert loaded.extent("a") == 2
        assert loaded.extent("b") == 1

    def test_freshness_and_time_preserved(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        rows = loaded.table("a").rows()
        by_v = {r["v"]: r for r in rows}
        assert by_v[1]["t"] == 0.0
        assert by_v[1]["f"] == pytest.approx(0.7)
        assert by_v[2]["f"] == 1.0

    def test_decay_resumes(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(tmp_path, fungi={"a": LinearDecayFungus(rate=0.1)})
        loaded.tick(8)  # v=1 at f=0.7 dies within 7-8 more ticks
        values = [r["v"] for r in loaded.table("a").rows()]
        assert values == [2]

    def test_exhausted_rows_restored_exhausted(self, tmp_path):
        db = FungusDB(seed=1)
        table = db.create_table("r", Schema.of(v="int"))
        rid = db.insert("r", {"v": 1})
        table.set_freshness(rid, 0.0)
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert len(loaded.table("r").exhausted) == 1

    def test_seed_preserved(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        assert load_checkpoint(tmp_path).seed == 5

    def test_queries_work_after_load(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert loaded.query("SELECT count(*) FROM a").scalar() == 2

    def test_table_options_forwarded(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(
            tmp_path, table_options={"a": {"period": 7}}
        )
        assert loaded.policies["a"].period == 7


class TestSummaryStorePersistence:
    def test_summaries_survive_checkpoint(self, tmp_path):
        db = FungusDB(seed=2)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5))
        db.insert_many("r", [{"v": i} for i in range(6)])
        db.tick(3)  # everything rots and distills
        assert db.merged_summary("r").row_count == 6
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        merged = loaded.merged_summary("r")
        assert merged.row_count == 6
        assert merged.column("v").estimate_mean() == pytest.approx(2.5)

    def test_conservation_after_restore(self, tmp_path):
        db = FungusDB(seed=3)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.4))
        db.insert_many("r", [{"v": i} for i in range(10)])
        db.tick(2)
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path, fungi={"r": LinearDecayFungus(rate=0.4)})
        loaded.tick(5)
        merged = loaded.merged_summary("r")
        assert loaded.extent("r") + merged.row_count == 10

    def test_vault_kind_restored(self, tmp_path):
        from repro.core.vault import SummaryVault

        vault = SummaryVault(half_life=3.0, compost_below=0.4)
        db = FungusDB(seed=4, store=vault)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=1.0))
        db.insert("r", {"v": 1})
        db.tick(10)
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert isinstance(loaded.store, SummaryVault)
        assert loaded.store.composted_summaries == vault.composted_summaries

    def test_corrupt_store_file(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        (tmp_path / "summaries.json").write_text("{oops")
        with pytest.raises(SnapshotError, match="corrupt summary store"):
            load_checkpoint(tmp_path)

    def test_unknown_store_kind(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        (tmp_path / "summaries.json").write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(SnapshotError, match="unknown summary store kind"):
            load_checkpoint(tmp_path)


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError, match="manifest"):
            load_checkpoint(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(SnapshotError, match="corrupt"):
            load_checkpoint(tmp_path)

    def test_wrong_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"manifest_version": 99, "clock": 0, "tables": []})
        )
        with pytest.raises(SnapshotError, match="version"):
            load_checkpoint(tmp_path)

    def test_manifest_written_last(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        assert (tmp_path / "manifest.json").exists()
        assert not (tmp_path / "manifest.json.tmp").exists()
