"""Tests for repro.core.checkpoint."""

import json

import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.core.policy import EvictionMode
from repro.errors import SnapshotError
from repro.fungi import LinearDecayFungus
from repro.storage import Schema
from repro.storage.rowset import RowSet


@pytest.fixture
def populated_db():
    db = FungusDB(seed=5)
    db.create_table("a", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.1))
    db.create_table("b", Schema.of(name="str"))
    db.insert("a", {"v": 1})
    db.tick(3)
    db.insert("a", {"v": 2})
    db.insert("b", {"name": "x"})
    return db


class TestSaveLoad:
    def test_roundtrip_rows_and_clock(self, populated_db, tmp_path):
        tables = save_checkpoint(populated_db, tmp_path)
        assert tables == ["a", "b"]
        loaded = load_checkpoint(tmp_path)
        assert loaded.now == 3.0
        assert loaded.extent("a") == 2
        assert loaded.extent("b") == 1

    def test_freshness_and_time_preserved(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        rows = loaded.table("a").rows()
        by_v = {r["v"]: r for r in rows}
        assert by_v[1]["t"] == 0.0
        assert by_v[1]["f"] == pytest.approx(0.7)
        assert by_v[2]["f"] == 1.0

    def test_decay_resumes(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(tmp_path, fungi={"a": LinearDecayFungus(rate=0.1)})
        loaded.tick(8)  # v=1 at f=0.7 dies within 7-8 more ticks
        values = [r["v"] for r in loaded.table("a").rows()]
        assert values == [2]

    def test_exhausted_rows_restored_exhausted(self, tmp_path):
        db = FungusDB(seed=1)
        table = db.create_table("r", Schema.of(v="int"))
        rid = db.insert("r", {"v": 1})
        table.set_freshness(rid, 0.0)
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert len(loaded.table("r").exhausted) == 1

    def test_seed_preserved(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        assert load_checkpoint(tmp_path).seed == 5

    def test_queries_work_after_load(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert loaded.query("SELECT count(*) FROM a").scalar() == 2

    def test_table_options_forwarded(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        loaded = load_checkpoint(
            tmp_path, table_options={"a": {"period": 7}}
        )
        assert loaded.policies["a"].period == 7


class TestEdgeCases:
    def test_empty_table_roundtrip(self, tmp_path):
        db = FungusDB(seed=1)
        db.create_table("empty", Schema.of(v="int"))
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert loaded.extent("empty") == 0
        assert loaded.query("SELECT count(*) FROM empty").scalar() == 0

    def test_database_with_no_tables(self, tmp_path):
        db = FungusDB(seed=1)
        db.tick(4)
        assert save_checkpoint(db, tmp_path) == []
        loaded = load_checkpoint(tmp_path)
        assert loaded.now == 4.0
        assert list(loaded.tables) == []

    def test_all_tombstone_table_roundtrip(self, tmp_path):
        """A table whose every row rotted away: extent 0, but the
        summaries still remember the departed."""
        db = FungusDB(seed=2)
        db.create_table("gone", Schema.of(v="int"), fungus=LinearDecayFungus(rate=1.0))
        db.insert_many("gone", [{"v": i} for i in range(4)])
        db.tick(1)
        assert db.extent("gone") == 0
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert loaded.extent("gone") == 0
        assert loaded.merged_summary("gone").row_count == 4

    def test_all_exhausted_lazy_table_roundtrip(self, tmp_path):
        """Exhausted-but-not-yet-evicted rows survive with f == 0."""
        db = FungusDB(seed=2)
        db.create_table(
            "limbo",
            Schema.of(v="int"),
            fungus=LinearDecayFungus(rate=1.0),
            eviction=EvictionMode.LAZY,
            lazy_batch=100,
        )
        db.insert_many("limbo", [{"v": i} for i in range(3)])
        db.tick(1)
        assert db.extent("limbo") == 3
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert loaded.extent("limbo") == 3
        assert len(loaded.table("limbo").exhausted) == 3
        assert all(r["f"] == 0.0 for r in loaded.table("limbo").rows())


class TestPinnedRows:
    def test_pins_survive_roundtrip(self, tmp_path):
        db = FungusDB(seed=6)
        table = db.create_table(
            "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.1)
        )
        rids = [db.insert("r", {"v": i}) for i in range(5)]
        table.pin(rids[1])
        table.pin(rids[3])
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        pinned_values = sorted(
            loaded.table("r").row_dict(rid)["v"] for rid in loaded.table("r").pinned
        )
        assert pinned_values == [1, 3]

    def test_pinned_row_still_immune_after_restore(self, tmp_path):
        db = FungusDB(seed=6)
        table = db.create_table(
            "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5)
        )
        keep = db.insert("r", {"v": 7})
        db.insert("r", {"v": 8})
        table.pin(keep)
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path, fungi={"r": LinearDecayFungus(rate=0.5)})
        loaded.tick(4)
        assert [r["v"] for r in loaded.table("r").rows()] == [7]
        assert [r["f"] for r in loaded.table("r").rows()] == [1.0]

    def test_pin_ordinals_ignore_tombstones(self, tmp_path):
        """Row ids shift across restore when tombstones exist; the
        ordinal encoding must still find the same logical row."""
        db = FungusDB(seed=6)
        table = db.create_table("r", Schema.of(v="int"))
        rids = [db.insert("r", {"v": i}) for i in range(6)]
        table.evict(RowSet([rids[0], rids[2]]), "external")
        table.pin(rids[4])
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        pinned = list(loaded.table("r").pinned)
        assert len(pinned) == 1
        assert loaded.table("r").row_dict(pinned[0])["v"] == 4

    def test_manifest_without_pins_still_loads(self, populated_db, tmp_path):
        """Backward compatibility: pre-pin manifests lack the key."""
        save_checkpoint(populated_db, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest.pop("pinned", None)
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_checkpoint(tmp_path)
        assert loaded.extent("a") == 2

    def test_out_of_range_pin_ordinal_rejected(self, tmp_path):
        db = FungusDB(seed=6)
        db.create_table("r", Schema.of(v="int"))
        db.insert("r", {"v": 1})
        save_checkpoint(db, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["pinned"] = {"r": [9]}
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="pins ordinal"):
            load_checkpoint(tmp_path)


class TestSummaryStorePersistence:
    def test_summaries_survive_checkpoint(self, tmp_path):
        db = FungusDB(seed=2)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5))
        db.insert_many("r", [{"v": i} for i in range(6)])
        db.tick(3)  # everything rots and distills
        assert db.merged_summary("r").row_count == 6
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        merged = loaded.merged_summary("r")
        assert merged.row_count == 6
        assert merged.column("v").estimate_mean() == pytest.approx(2.5)

    def test_conservation_after_restore(self, tmp_path):
        db = FungusDB(seed=3)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.4))
        db.insert_many("r", [{"v": i} for i in range(10)])
        db.tick(2)
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path, fungi={"r": LinearDecayFungus(rate=0.4)})
        loaded.tick(5)
        merged = loaded.merged_summary("r")
        assert loaded.extent("r") + merged.row_count == 10

    def test_vault_kind_restored(self, tmp_path):
        from repro.core.vault import SummaryVault

        vault = SummaryVault(half_life=3.0, compost_below=0.4)
        db = FungusDB(seed=4, store=vault)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=1.0))
        db.insert("r", {"v": 1})
        db.tick(10)
        save_checkpoint(db, tmp_path)
        loaded = load_checkpoint(tmp_path)
        assert isinstance(loaded.store, SummaryVault)
        assert loaded.store.composted_summaries == vault.composted_summaries

    def test_corrupt_store_file(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        (tmp_path / "summaries.json").write_text("{oops")
        with pytest.raises(SnapshotError, match="corrupt summary store"):
            load_checkpoint(tmp_path)

    def test_unknown_store_kind(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        (tmp_path / "summaries.json").write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(SnapshotError, match="unknown summary store kind"):
            load_checkpoint(tmp_path)


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError, match="manifest"):
            load_checkpoint(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(SnapshotError, match="corrupt"):
            load_checkpoint(tmp_path)

    def test_wrong_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"manifest_version": 99, "clock": 0, "tables": []})
        )
        with pytest.raises(SnapshotError, match="version"):
            load_checkpoint(tmp_path)

    def test_manifest_written_last(self, populated_db, tmp_path):
        save_checkpoint(populated_db, tmp_path)
        assert (tmp_path / "manifest.json").exists()
        assert not (tmp_path / "manifest.json.tmp").exists()
