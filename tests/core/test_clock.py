"""Tests for repro.core.clock."""

import pytest

from repro.core.clock import DecayClock
from repro.errors import DecayError


class TestDecayClock:
    def test_starts_at_zero(self):
        assert DecayClock().now == 0.0

    def test_custom_start(self):
        assert DecayClock(start=5.0).now == 5.0

    def test_advance(self):
        clock = DecayClock()
        clock.advance(3)
        assert clock.now == 3.0

    def test_advance_zero_is_noop(self):
        clock = DecayClock()
        clock.advance(0)
        assert clock.now == 0.0

    def test_backwards_rejected(self):
        with pytest.raises(DecayError):
            DecayClock().advance(-1)

    def test_subscribers_fire_per_tick(self):
        clock = DecayClock()
        ticks = []
        clock.subscribe(ticks.append)
        clock.advance(3)
        assert ticks == [1, 2, 3]

    def test_subscriber_order(self):
        clock = DecayClock()
        order = []
        clock.subscribe(lambda t: order.append("a"))
        clock.subscribe(lambda t: order.append("b"))
        clock.advance(1)
        assert order == ["a", "b"]

    def test_unsubscribe(self):
        clock = DecayClock()
        ticks = []
        handler = ticks.append
        clock.subscribe(handler)
        clock.unsubscribe(handler)
        clock.advance(2)
        assert ticks == []

    def test_unsubscribe_absent_is_noop(self):
        DecayClock().unsubscribe(lambda t: None)


class TestSubscriberFailures:
    def test_plain_exception_wrapped_in_decay_error(self):
        clock = DecayClock()

        def bad(tick):
            raise RuntimeError("boom")

        clock.subscribe(bad)
        with pytest.raises(DecayError, match="subscriber"):
            clock.advance(1)

    def test_cause_chain_preserved(self):
        clock = DecayClock()
        original = RuntimeError("boom")

        def bad(tick):
            raise original

        clock.subscribe(bad)
        with pytest.raises(DecayError) as excinfo:
            clock.advance(1)
        assert excinfo.value.__cause__ is original

    def test_decay_error_propagates_unwrapped(self):
        clock = DecayClock()
        original = DecayError("already typed")

        def bad(tick):
            raise original

        clock.subscribe(bad)
        with pytest.raises(DecayError) as excinfo:
            clock.advance(1)
        assert excinfo.value is original
        assert excinfo.value.__cause__ is None

    def test_failed_tick_stays_on_clock(self):
        clock = DecayClock()
        clock.subscribe(lambda t: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.raises(DecayError):
            clock.advance(3)
        assert clock.now == 1.0  # first tick committed before the failure

    def test_later_subscribers_skipped_after_failure(self):
        clock = DecayClock()
        seen = []

        def bad(tick):
            raise ValueError("x")

        clock.subscribe(bad)
        clock.subscribe(seen.append)
        with pytest.raises(DecayError):
            clock.advance(2)
        assert seen == []

    def test_message_names_tick(self):
        clock = DecayClock(start=4.0)

        def bad(tick):
            raise RuntimeError("x")

        clock.subscribe(bad)
        with pytest.raises(DecayError, match="tick 5"):
            clock.advance(1)


class TestReentrantSubscription:
    def test_subscribe_during_tick_does_not_explode(self):
        clock = DecayClock()
        late = []

        def adder(tick):
            clock.subscribe(late.append)

        clock.subscribe(adder)
        clock.advance(1)  # snapshot iteration: no mutation-during-iteration
        clock.unsubscribe(adder)
        clock.advance(1)
        assert late == [2]

    def test_unsubscribe_self_during_tick(self):
        clock = DecayClock()
        fired = []

        def once(tick):
            fired.append(tick)
            clock.unsubscribe(once)

        clock.subscribe(once)
        clock.advance(3)
        assert fired == [1]
