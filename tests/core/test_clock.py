"""Tests for repro.core.clock."""

import pytest

from repro.core.clock import DecayClock
from repro.errors import DecayError


class TestDecayClock:
    def test_starts_at_zero(self):
        assert DecayClock().now == 0.0

    def test_custom_start(self):
        assert DecayClock(start=5.0).now == 5.0

    def test_advance(self):
        clock = DecayClock()
        clock.advance(3)
        assert clock.now == 3.0

    def test_advance_zero_is_noop(self):
        clock = DecayClock()
        clock.advance(0)
        assert clock.now == 0.0

    def test_backwards_rejected(self):
        with pytest.raises(DecayError):
            DecayClock().advance(-1)

    def test_subscribers_fire_per_tick(self):
        clock = DecayClock()
        ticks = []
        clock.subscribe(ticks.append)
        clock.advance(3)
        assert ticks == [1, 2, 3]

    def test_subscriber_order(self):
        clock = DecayClock()
        order = []
        clock.subscribe(lambda t: order.append("a"))
        clock.subscribe(lambda t: order.append("b"))
        clock.advance(1)
        assert order == ["a", "b"]

    def test_unsubscribe(self):
        clock = DecayClock()
        ticks = []
        handler = ticks.append
        clock.subscribe(handler)
        clock.unsubscribe(handler)
        clock.advance(2)
        assert ticks == []

    def test_unsubscribe_absent_is_noop(self):
        DecayClock().unsubscribe(lambda t: None)
