"""Tests for repro.core.events."""

from repro.core.events import (
    EventBus,
    TupleDecayed,
    TupleEvicted,
    TupleInserted,
)


class TestEventBus:
    def test_publish_to_matching_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TupleInserted, seen.append)
        event = TupleInserted("r", 0.0, rid=1)
        bus.publish(event)
        assert seen == [event]

    def test_other_types_not_delivered(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TupleInserted, seen.append)
        bus.publish(TupleEvicted("r", 0.0, rid=1, reason="decay"))
        assert seen == []

    def test_counts_all_published(self):
        bus = EventBus()
        bus.publish(TupleInserted("r", 0.0, rid=1))
        bus.publish(TupleInserted("r", 0.0, rid=2))
        bus.publish(TupleEvicted("r", 0.0, rid=1, reason="decay"))
        assert bus.counts["TupleInserted"] == 2
        assert bus.counts["TupleEvicted"] == 1

    def test_multiple_handlers(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe(TupleDecayed, a.append)
        bus.subscribe(TupleDecayed, b.append)
        bus.publish(TupleDecayed("r", 0.0, rid=1, old_freshness=1.0, new_freshness=0.5, fungus="x"))
        assert len(a) == len(b) == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TupleInserted, seen.append)
        bus.unsubscribe(TupleInserted, seen.append)
        bus.publish(TupleInserted("r", 0.0, rid=1))
        assert seen == []

    def test_unsubscribe_absent_is_noop(self):
        EventBus().unsubscribe(TupleInserted, lambda e: None)

    def test_events_are_frozen(self):
        event = TupleInserted("r", 0.0, rid=1)
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            event.rid = 2
