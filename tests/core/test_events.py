"""Tests for repro.core.events."""

from repro.core.events import (
    EventBus,
    TupleDecayed,
    TupleEvicted,
    TupleInserted,
)


class TestEventBus:
    def test_publish_to_matching_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TupleInserted, seen.append)
        event = TupleInserted("r", 0.0, rid=1)
        bus.publish(event)
        assert seen == [event]

    def test_other_types_not_delivered(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TupleInserted, seen.append)
        bus.publish(TupleEvicted("r", 0.0, rid=1, reason="decay"))
        assert seen == []

    def test_counts_all_published(self):
        bus = EventBus()
        bus.publish(TupleInserted("r", 0.0, rid=1))
        bus.publish(TupleInserted("r", 0.0, rid=2))
        bus.publish(TupleEvicted("r", 0.0, rid=1, reason="decay"))
        assert bus.counts["TupleInserted"] == 2
        assert bus.counts["TupleEvicted"] == 1

    def test_multiple_handlers(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe(TupleDecayed, a.append)
        bus.subscribe(TupleDecayed, b.append)
        bus.publish(TupleDecayed("r", 0.0, rid=1, old_freshness=1.0, new_freshness=0.5, fungus="x"))
        assert len(a) == len(b) == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TupleInserted, seen.append)
        bus.unsubscribe(TupleInserted, seen.append)
        bus.publish(TupleInserted("r", 0.0, rid=1))
        assert seen == []

    def test_unsubscribe_absent_is_noop(self):
        EventBus().unsubscribe(TupleInserted, lambda e: None)

    def test_events_are_frozen(self):
        event = TupleInserted("r", 0.0, rid=1)
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            event.rid = 2


class TestCompleteFanout:
    """A raising subscriber must not starve handlers behind it."""

    def _crash(self, event):
        raise RuntimeError("subscriber died")

    def test_later_handlers_still_run(self):
        import pytest

        bus = EventBus()
        seen = []
        bus.subscribe(TupleInserted, self._crash)
        bus.subscribe(TupleInserted, seen.append)
        event = TupleInserted("r", 0.0, rid=1)
        with pytest.raises(RuntimeError, match="subscriber died"):
            bus.publish(event)
        assert seen == [event]

    def test_single_failure_reraises_original(self):
        import pytest

        bus = EventBus()
        bus.subscribe(TupleInserted, self._crash)
        bus.subscribe(TupleInserted, lambda e: None)
        with pytest.raises(RuntimeError, match="subscriber died"):
            bus.publish(TupleInserted("r", 0.0, rid=1))

    def test_multiple_failures_raise_fanout_error(self):
        import pytest

        from repro.errors import EventFanoutError

        bus = EventBus()
        seen = []

        def crash_too(event):
            raise ValueError("second casualty")

        bus.subscribe(TupleInserted, self._crash)
        bus.subscribe(TupleInserted, seen.append)
        bus.subscribe(TupleInserted, crash_too)
        with pytest.raises(EventFanoutError) as excinfo:
            bus.publish(TupleInserted("r", 0.0, rid=1))
        assert len(seen) == 1  # the healthy middle handler was reached
        assert len(excinfo.value.failures) == 2
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_counts_increment_even_when_handler_raises(self):
        import pytest

        bus = EventBus()
        bus.subscribe(TupleInserted, self._crash)
        with pytest.raises(RuntimeError):
            bus.publish(TupleInserted("r", 0.0, rid=1))
        assert bus.counts["TupleInserted"] == 1
