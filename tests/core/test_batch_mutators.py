"""DecayingTable batch mutators: outcomes, coalesced events, routing."""

import pytest

import repro.core.table as core_table
from repro.core.events import TupleDecayed, TupleDecayedBatch
from repro.core.table import BatchOutcome, DecayingTable
from repro.errors import StorageError
from repro.storage import Schema


@pytest.fixture
def table(clock) -> DecayingTable:
    t = DecayingTable("r", Schema.of(v="int"), clock)
    for i in range(8):
        t.insert({"v": i})
    return t


class TestDecayMany:
    def test_outcome_accounting(self, table):
        out = table.decay_many([0, 1, 2], 0.25, "t")
        assert isinstance(out, BatchOutcome)
        assert out.processed == 3
        assert out.changed == 3
        assert out.newly_exhausted == 0
        assert out.removed == pytest.approx(0.75)
        assert all(table.freshness(rid) == 0.75 for rid in (0, 1, 2))

    def test_exhaustion_tracked(self, table):
        out = table.decay_many([0, 1], 1.0, "t")
        assert out.newly_exhausted == 2
        assert sorted(table.exhausted) == [0, 1]
        assert table.freshness(0) == 0.0

    def test_revival_clears_exhausted(self, table):
        table.decay_many([0], 1.0, "t")
        table.set_freshness_many([0], [0.5], "t")
        assert sorted(table.exhausted) == []

    def test_empty_batch_is_noop(self, table):
        out = table.decay_many([], 0.5, "t")
        assert out.processed == 0
        assert table.bus.counts["TupleDecayedBatch"] == 0

    def test_dead_rid_raises(self, table):
        from repro.storage import RowSet

        table.evict(RowSet([3]), reason="manual")
        with pytest.raises(StorageError):
            table.decay_many([2, 3], 0.1, "t")

    def test_pinned_rows_skip_lowering(self, table):
        table.pin(1)
        table.decay_many([0, 1, 2], 0.4, "t")
        assert table.freshness(1) == 1.0
        assert table.freshness(0) == 0.6

    def test_scale_many_validates_factor(self, table):
        with pytest.raises(Exception):
            table.scale_many([0], 1.5, "t")
        table.scale_many([0], 0.5, "t")
        assert table.freshness(0) == 0.5


class TestCoalescedEvents:
    def test_one_batch_event_changed_rows_only(self, table):
        events = []
        table.bus.subscribe(TupleDecayedBatch, events.append)
        table.decay_many([0], 1.0, "t")  # row 0 -> 0.0
        events.clear()
        # row 0 is dead-fresh already: decaying it again changes nothing
        table.set_freshness_many([0, 1, 2], [0.0, 0.4, 1.0], "t")
        (event,) = events
        assert event.rids == (1,)
        assert event.old_freshness == (1.0,)
        assert event.new_freshness == (0.4,)
        assert event.fungus == "t"

    def test_expand_matches_scalar_event_shape(self, table):
        batches, scalars = [], []
        table.bus.subscribe(TupleDecayedBatch, batches.append)
        table.bus.subscribe(TupleDecayed, scalars.append)
        table.decay_many([2, 5], 0.25, "t")
        (batch,) = batches
        expanded = list(batch.expand())
        assert [e.rid for e in expanded] == [2, 5]
        assert all(isinstance(e, TupleDecayed) for e in expanded)
        # the scalar mutator publishes the same per-row payload
        table.decay(6, 0.25, "t")
        (scalar,) = scalars
        assert (scalar.old_freshness, scalar.new_freshness) == (1.0, 0.75)

    def test_counts_ledger_without_subscribers(self, table):
        """publish_lazy skips payload construction but still counts."""
        table.decay_many([0, 1], 0.1, "t")
        assert table.bus.counts["TupleDecayedBatch"] == 1

    def test_event_rids_stay_ascending_after_filtering(self, table):
        """Callers pass ascending rids; the changed-rows filter keeps
        that order even when interior rows are dropped from the event."""
        table.pin(3)
        events = []
        table.bus.subscribe(TupleDecayedBatch, events.append)
        table.decay_many([1, 3, 5], 0.2, "t")
        assert events[0].rids == (1, 5)


class TestKernelRouting:
    def test_small_batches_route_to_scalar_kernel(self, table, monkeypatch):
        """Below _SMALL_BATCH the python kernel runs even with numpy."""
        calls = []
        orig = DecayingTable._apply_batch_py
        monkeypatch.setattr(
            DecayingTable,
            "_apply_batch_py",
            lambda self, *a: calls.append(1) or orig(self, *a),
        )
        table.decay_many([0, 1], 0.1, "t")
        if table.supports_kernels:
            assert calls, "small batch should use the scalar kernel"

    def test_threshold_zero_forces_vector_kernel(self, table, monkeypatch):
        if not table.supports_kernels:
            pytest.skip("scalar-only backend")
        monkeypatch.setattr(core_table, "_SMALL_BATCH", 0)
        calls = []
        orig = DecayingTable._apply_batch_vec
        monkeypatch.setattr(
            DecayingTable,
            "_apply_batch_vec",
            lambda self, *a: calls.append(1) or orig(self, *a),
        )
        table.decay_many([0, 1], 0.1, "t")
        assert calls, "threshold 0 should force the vector kernel"

    def test_backends_agree_on_a_simple_batch(self, clock):
        tables = []
        for kernels in (None, False):
            t = DecayingTable("r", Schema.of(v="int"), clock, kernels=kernels)
            for i in range(40):
                t.insert({"v": i})
            t.decay_many(list(range(40)), 0.125, "t")
            tables.append([t.freshness(r) for r in range(40)])
        assert tables[0] == tables[1]


class TestEvictExhaustedBatch:
    def test_evicts_all_exhausted(self, table):
        table.decay_many([0, 4, 7], 1.0, "t")
        count = table.evict_exhausted_batch(reason="decay")
        assert count == 3
        assert sorted(table.exhausted) == []
        assert not table.storage.is_live(0)
        assert table.extent == 5

    def test_noop_when_none_exhausted(self, table):
        assert table.evict_exhausted_batch() == 0
