"""Tests for repro.core.fungus (the protocol and report plumbing)."""

import random

import pytest

from repro.core.fungus import DecayReport, Fungus


class TestDecayReport:
    def test_merge_sums_counters(self):
        a = DecayReport("a", 1.0, seeded=1, spread=2, decayed=3, freshness_removed=0.5)
        b = DecayReport("b", 2.0, seeded=4, spread=5, decayed=6, freshness_removed=1.5,
                        newly_exhausted=2)
        merged = a.merge(b)
        assert merged.fungus == "a+b"
        assert merged.tick == 2.0
        assert merged.seeded == 5
        assert merged.spread == 7
        assert merged.decayed == 9
        assert merged.freshness_removed == 2.0
        assert merged.newly_exhausted == 2


class TestFungusBase:
    def test_cycle_is_abstract(self, decaying):
        with pytest.raises(NotImplementedError):
            Fungus().cycle(decaying, random.Random(0))

    def test_default_hooks_are_noops(self):
        fungus = Fungus()
        fungus.on_evicted(1)
        fungus.on_compacted({1: 0})
        fungus.reset()

    def test_decay_helper_accounting(self, decaying):
        fungus = Fungus()
        report = DecayReport("x", 0.0)
        fungus._decay(decaying, 0, 0.4, report)
        assert report.decayed == 1
        assert report.freshness_removed == pytest.approx(0.4)
        assert report.newly_exhausted == 0
        fungus._decay(decaying, 0, 1.0, report)
        assert report.newly_exhausted == 1
        assert report.freshness_removed == pytest.approx(1.0)  # clamped at 0

    def test_decay_helper_respects_pinning(self, decaying):
        fungus = Fungus()
        report = DecayReport("x", 0.0)
        decaying.pin(0)
        fungus._decay(decaying, 0, 0.4, report)
        assert decaying.freshness(0) == 1.0
        assert report.freshness_removed == 0.0
