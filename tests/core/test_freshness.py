"""Tests for repro.core.freshness."""

import pytest

from repro.core.freshness import (
    FRESH_THRESHOLD,
    ROTTEN_THRESHOLD,
    FreshnessBand,
    band_of,
    clamp_freshness,
    is_edible,
)
from repro.errors import DecayError


class TestClamp:
    def test_in_range_passthrough(self):
        assert clamp_freshness(0.5) == 0.5

    def test_clamps_low_and_high(self):
        assert clamp_freshness(-0.3) == 0.0
        assert clamp_freshness(1.7) == 1.0

    def test_int_becomes_float(self):
        assert clamp_freshness(1) == 1.0
        assert isinstance(clamp_freshness(1), float)

    def test_rejects_non_numbers(self):
        with pytest.raises(DecayError):
            clamp_freshness("fresh")
        with pytest.raises(DecayError):
            clamp_freshness(True)


class TestBands:
    def test_fresh(self):
        assert band_of(1.0) is FreshnessBand.FRESH
        assert band_of(FRESH_THRESHOLD) is FreshnessBand.FRESH

    def test_stale(self):
        assert band_of(0.5) is FreshnessBand.STALE
        assert band_of(ROTTEN_THRESHOLD) is FreshnessBand.STALE

    def test_rotten(self):
        assert band_of(0.1) is FreshnessBand.ROTTEN
        assert band_of(0.0) is FreshnessBand.ROTTEN

    def test_is_edible(self):
        assert is_edible(1.0)
        assert is_edible(0.5)
        assert not is_edible(0.1)
