"""Tests for repro.core.health."""

import pytest

from repro.core.health import measure_health
from repro.storage import RowSet


class TestMeasureHealth:
    def test_fresh_table(self, decaying):
        health = measure_health(decaying)
        assert health.extent == 10
        assert health.fresh_count == 10
        assert health.rotten_count == 0
        assert health.edible_fraction == 1.0
        assert health.mean_freshness == 1.0
        assert health.rot_spots == ()
        assert health.holes == ()

    def test_empty_table(self, decaying):
        decaying.evict(RowSet(range(10)), "manual")
        health = measure_health(decaying)
        assert health.extent == 0
        assert health.mean_freshness is None
        assert health.edible_fraction == 1.0
        assert health.holes == ((0, 10),)

    def test_bands_counted(self, decaying):
        decaying.set_freshness(0, 0.1)  # rotten
        decaying.set_freshness(1, 0.5)  # stale
        health = measure_health(decaying)
        assert (health.fresh_count, health.stale_count, health.rotten_count) == (8, 1, 1)
        assert health.edible_fraction == pytest.approx(0.9)

    def test_rot_spot_detection(self, decaying):
        for rid in (3, 4, 5):
            decaying.set_freshness(rid, 0.1)
        decaying.set_freshness(8, 0.05)
        health = measure_health(decaying)
        assert health.rot_spots == ((3, 6), (8, 9))
        assert health.largest_rot_spot == 3

    def test_hole_detection(self, decaying):
        decaying.evict(RowSet([2, 3, 7]), "decay")
        health = measure_health(decaying)
        assert health.holes == ((2, 4), (7, 8))
        assert health.largest_hole == 2

    def test_trailing_hole(self, decaying):
        decaying.evict(RowSet([8, 9]), "decay")
        assert measure_health(decaying).holes == ((8, 10),)

    def test_exhausted_and_pinned_counts(self, decaying):
        decaying.decay(0, 1.0, "x")
        decaying.pin(5)
        health = measure_health(decaying)
        assert health.exhausted == 1
        assert health.pinned == 1

    def test_min_freshness(self, decaying):
        decaying.set_freshness(4, 0.2)
        assert measure_health(decaying).min_freshness == pytest.approx(0.2)

    def test_describe_format(self, decaying):
        text = measure_health(decaying).describe()
        assert "extent=10" in text
        assert "edible=100.0%" in text

    def test_describe_empty(self, decaying):
        decaying.evict(RowSet(range(10)), "manual")
        assert "n/a" in measure_health(decaying).describe()


class TestHealthEdgeCases:
    """Degenerate tables the dashboard must render without surprises."""

    def test_never_inserted_table(self, clock):
        from repro.core.table import DecayingTable
        from repro.storage import Schema

        table = DecayingTable("empty", Schema.of(v="int"), clock)
        health = measure_health(table)
        assert health.extent == 0
        assert health.allocated == 0
        assert health.tombstones == 0
        assert health.mean_freshness is None
        assert health.min_freshness is None
        assert health.edible_fraction == 1.0
        assert health.rot_spots == ()
        assert health.holes == ()
        assert health.largest_rot_spot == 0
        assert health.largest_hole == 0

    def test_all_pinned_table(self, decaying):
        for rid in range(10):
            decaying.pin(rid)
        decaying.set_freshness(3, 0.0)  # lowering a pinned row is ignored
        health = measure_health(decaying)
        assert health.pinned == 10
        assert health.extent == 10
        assert health.fresh_count == 10
        assert health.rotten_count == 0
        assert health.mean_freshness == 1.0
        assert health.rot_spots == ()
        assert health.holes == ()

    def test_full_tombstone_table(self, decaying):
        decaying.evict(RowSet(range(10)), "decay")
        health = measure_health(decaying)
        assert health.extent == 0
        assert health.tombstones == 10
        assert health.allocated == 10
        # one hole spanning the whole allocated rid space
        assert health.holes == ((0, 10),)
        assert health.largest_hole == 10
        assert health.rot_spots == ()
        assert health.edible_fraction == 1.0
        assert health.mean_freshness is None
