"""Tests for repro.core.db (FungusDB) — the integration surface."""

import pytest

from repro.core.events import TupleConsumed, TupleEvicted
from repro.core.policy import EvictionMode
from repro.errors import CatalogError, DecayError
from repro.fungi import AccessRefreshFungus, EGIFungus, LinearDecayFungus
from repro.storage import Schema


@pytest.fixture
def logs_db(db):
    db.create_table("logs", Schema.of(url="str", status="int"), fungus=None)
    for i in range(20):
        db.insert("logs", {"url": f"/p{i % 4}", "status": 200 if i % 5 else 500})
    return db


class TestSchemaManagement:
    def test_create_duplicate_rejected(self, db):
        db.create_table("r", Schema.of(v="int"))
        with pytest.raises(CatalogError):
            db.create_table("r", Schema.of(v="int"))

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.table("nope")
        with pytest.raises(CatalogError):
            db.insert("nope", {})

    def test_drop_table(self, logs_db):
        logs_db.drop_table("logs")
        with pytest.raises(CatalogError):
            logs_db.extent("logs")

    def test_drop_keeps_summaries(self, logs_db):
        logs_db.query("CONSUME SELECT * FROM logs WHERE status = 500")
        logs_db.drop_table("logs")
        assert len(logs_db.summaries("logs")) == 1

    def test_time_index_created_by_default(self, db):
        db.create_table("r", Schema.of(v="int"))
        assert db.catalog.sorted_index("r", "t") is not None

    def test_time_index_optional(self, db):
        db.create_table("r", Schema.of(v="int"), time_index=False)
        assert db.catalog.sorted_index("r", "t") is None


class TestLaw1:
    def test_tick_advances_and_decays(self, db):
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.25))
        db.insert("r", {"v": 1})
        db.tick(4)
        assert db.now == 4.0
        assert db.extent("r") == 0  # 4 ticks x 0.25 = fully decayed

    def test_negative_tick_rejected(self, db):
        with pytest.raises(DecayError):
            db.tick(-1)

    def test_per_table_policies_independent(self, db):
        db.create_table("fast", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5))
        db.create_table("slow", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.05))
        db.insert("fast", {"v": 1})
        db.insert("slow", {"v": 1})
        db.tick(3)
        assert db.extent("fast") == 0
        assert db.extent("slow") == 1

    def test_period_respected(self, db):
        db.create_table(
            "r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=1.0), period=5
        )
        db.insert("r", {"v": 1})
        db.tick(4)
        assert db.extent("r") == 1  # fungus has not run yet
        db.tick(1)
        assert db.extent("r") == 0

    def test_eviction_distills_by_default(self, db):
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=1.0))
        db.insert("r", {"v": 7})
        db.tick(1)
        merged = db.merged_summary("r")
        assert merged.row_count == 1

    def test_distill_on_evict_disabled(self, db):
        db.create_table(
            "r",
            Schema.of(v="int"),
            fungus=LinearDecayFungus(rate=1.0),
            distill_on_evict=False,
        )
        db.insert("r", {"v": 7})
        db.tick(1)
        assert db.merged_summary("r") is None


class TestLaw2:
    def test_consume_reduces_extent(self, logs_db):
        res = logs_db.query("CONSUME SELECT url FROM logs WHERE status = 500")
        assert len(res) == 4
        assert logs_db.extent("logs") == 16

    def test_conservation(self, logs_db):
        before = logs_db.extent("logs")
        res = logs_db.query("CONSUME SELECT * FROM logs WHERE status = 500")
        assert logs_db.extent("logs") + len(res.consumed) == before

    def test_consume_distills_by_default(self, logs_db):
        logs_db.query("CONSUME SELECT * FROM logs WHERE status = 500")
        summaries = logs_db.summaries("logs")
        assert len(summaries) == 1
        assert summaries[0].reason == "consume"
        assert summaries[0].row_count == 4

    def test_consume_distill_disabled(self, db):
        db.create_table("r", Schema.of(v="int"), distill_on_consume=False)
        db.insert("r", {"v": 1})
        db.query("CONSUME SELECT * FROM r")
        assert db.summaries("r") == []

    def test_consume_publishes_events(self, logs_db):
        consumed, evicted = [], []
        logs_db.bus.subscribe(TupleConsumed, consumed.append)
        logs_db.bus.subscribe(TupleEvicted, evicted.append)
        logs_db.query("CONSUME SELECT * FROM logs WHERE status = 500")
        assert len(consumed) == 4
        assert all(e.reason == "consume" for e in evicted)

    def test_consume_guard_helper(self, logs_db):
        with pytest.raises(DecayError):
            logs_db.consume("SELECT * FROM logs")

    def test_consume_helper_passes_consuming_query(self, logs_db):
        res = logs_db.consume("CONSUME SELECT * FROM logs WHERE status = 500")
        assert res.stats.rows_consumed == 4

    def test_fungus_state_survives_consume(self, db):
        fungus = EGIFungus(seeds_per_cycle=2, decay_rate=0.1)
        db.create_table("r", Schema.of(v="int"), fungus=fungus)
        for i in range(30):
            db.insert("r", {"v": i})
        db.tick(3)
        db.query("CONSUME SELECT * FROM r WHERE v < 15")
        assert all(db.table("r").is_live(rid) for rid in fungus.infected)


class TestQueries:
    def test_freshness_column_queryable(self, db):
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.3))
        db.insert("r", {"v": 1})
        db.tick(1)
        db.insert("r", {"v": 2})
        res = db.query("SELECT v FROM r WHERE f < 1.0")
        assert res.column("v") == [1]

    def test_time_column_queryable(self, db):
        db.create_table("r", Schema.of(v="int"))
        db.insert("r", {"v": 1})
        db.tick(5)
        db.insert("r", {"v": 2})
        res = db.query("SELECT v FROM r WHERE t >= 5")
        assert res.column("v") == [2]

    def test_access_refresh_through_queries(self, db):
        fungus = AccessRefreshFungus(LinearDecayFungus(rate=0.2), boost=1.0)
        db.create_table("r", Schema.of(v="int"), fungus=fungus)
        db.insert("r", {"v": 1})  # watched
        db.insert("r", {"v": 2})  # unwatched
        for _ in range(4):
            db.query("SELECT v FROM r WHERE v = 1")
            db.tick(1)
        table = db.table("r")
        live = [table.attributes_of(rid)["v"] for rid in table.live_rows()]
        assert 1 in live  # the watched row got refreshed
        freshness = {
            table.attributes_of(rid)["v"]: table.freshness(rid)
            for rid in table.live_rows()
        }
        if 2 in freshness:
            assert freshness[1] > freshness[2]


class TestIntrospection:
    def test_health(self, logs_db):
        health = logs_db.health("logs")
        assert health.extent == 20

    def test_extent(self, logs_db):
        assert logs_db.extent("logs") == 20

    def test_merged_summary_none_initially(self, logs_db):
        assert logs_db.merged_summary("logs") is None
