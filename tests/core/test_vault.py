"""Tests for repro.core.vault (SummaryVault)."""

import pytest

from repro.core.distill import Distiller
from repro.core.vault import SummaryVault
from repro.errors import DistillError
from repro.storage import RowSet


@pytest.fixture
def vault():
    return SummaryVault(half_life=2.0, compost_below=0.4)


@pytest.fixture
def distiller(vault):
    return Distiller(vault)


class TestValidation:
    def test_half_life_positive(self):
        with pytest.raises(DistillError):
            SummaryVault(half_life=0)

    def test_compost_threshold_range(self):
        with pytest.raises(DistillError):
            SummaryVault(compost_below=1.0)


class TestDecay:
    def test_entries_start_fresh(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0]), reason="decay")
        assert vault.freshness_of("r") == [1.0]
        assert vault.fresh_count("r") == 1

    def test_freshness_halves_per_half_life(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0]), reason="decay")
        vault.on_tick(1)
        vault.on_tick(2)
        assert vault.freshness_of("r")[0] == pytest.approx(0.5)

    def test_composting_below_threshold(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0, 1]), reason="decay")
        composted = 0
        for tick in range(1, 10):
            composted += vault.on_tick(tick)
            if composted:
                break
        assert composted == 1
        assert vault.fresh_count("r") == 0
        assert vault.compost("r") is not None
        assert vault.composted_summaries == 1

    def test_compost_accumulates(self, vault, distiller, decaying):
        for rid in range(4):
            distiller.distill_rowset(decaying, RowSet([rid]), reason="decay")
        for tick in range(1, 20):
            vault.on_tick(tick)
        assert vault.fresh_count("r") == 0
        assert vault.compost("r").row_count == 4

    def test_no_decay_without_ticks(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0]), reason="decay")
        assert vault.freshness_of("r") == [1.0]


class TestConservation:
    def test_merged_includes_compost(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0, 1, 2]), reason="a")
        for tick in range(1, 8):
            vault.on_tick(tick)
        distiller.distill_rowset(decaying, RowSet([3]), reason="b")
        merged = vault.merged("r")
        assert merged.row_count == 4

    def test_for_table_orders_compost_first(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0]), reason="old")
        for tick in range(1, 8):
            vault.on_tick(tick)
        distiller.distill_rowset(decaying, RowSet([1]), reason="new")
        summaries = vault.for_table("r")
        assert len(summaries) == 2
        assert summaries[0] is vault.compost("r")

    def test_total_rows_summarised(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0, 1]), reason="a")
        assert vault.total_rows_summarised == 2

    def test_empty_table_merged_none(self, vault):
        assert vault.merged("nothing") is None

    def test_tables_listing(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0]), reason="a")
        assert list(vault.tables()) == ["r"]

    def test_memory_cells_counts_compost(self, vault, distiller, decaying):
        distiller.distill_rowset(decaying, RowSet([0]), reason="a")
        before = vault.memory_cells()
        for tick in range(1, 10):
            vault.on_tick(tick)
        assert vault.memory_cells() > 0
        assert before > 0


class TestFungusDbIntegration:
    def test_db_ticks_vault(self, decaying):
        from repro import FungusDB, LinearDecayFungus, Schema

        vault = SummaryVault(half_life=1.0, compost_below=0.6)
        db = FungusDB(seed=1, store=vault)
        db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.5))
        db.insert("r", {"v": 1})
        db.tick(6)
        assert vault.composted_summaries >= 1
        assert db.merged_summary("r").row_count == 1
