"""Tests for repro.core.distill."""

import pytest

from repro.core.distill import Distiller, SummaryStore
from repro.core.events import SummaryCreated
from repro.errors import DistillError
from repro.storage import RowSet


class TestSummaryStore:
    def test_negative_budget_rejected(self):
        with pytest.raises(DistillError):
            SummaryStore(max_per_table=-1)

    def test_add_and_fetch(self, decaying):
        store = SummaryStore()
        distiller = Distiller(store)
        distiller.distill_rowset(decaying, RowSet([0, 1]), reason="test")
        assert len(store.for_table("r")) == 1
        assert store.total_rows_summarised == 2

    def test_unknown_table_empty(self):
        assert SummaryStore().for_table("nope") == []
        assert SummaryStore().merged("nope") is None

    def test_budget_merges_oldest_pair(self, decaying):
        store = SummaryStore(max_per_table=2)
        distiller = Distiller(store)
        for rid in range(6):
            distiller.distill_rowset(decaying, RowSet([rid]), reason=f"r{rid}")
        summaries = store.for_table("r")
        assert len(summaries) == 2
        assert store.merges == 4
        # no rows were lost in the folding
        assert sum(s.row_count for s in summaries) == 6

    def test_merged_covers_everything(self, decaying):
        store = SummaryStore()
        distiller = Distiller(store)
        distiller.distill_rowset(decaying, RowSet([0, 1]), reason="a")
        distiller.distill_rowset(decaying, RowSet([2]), reason="b")
        merged = store.merged("r")
        assert merged.row_count == 3

    def test_tables_listing(self, decaying):
        store = SummaryStore()
        Distiller(store).distill_rowset(decaying, RowSet([0]), reason="x")
        assert list(store.tables()) == ["r"]

    def test_memory_cells(self, decaying):
        store = SummaryStore()
        Distiller(store).distill_rowset(decaying, RowSet([0]), reason="x")
        assert store.memory_cells() > 0


class TestDistiller:
    def test_rowset_summary_contents(self, decaying):
        distiller = Distiller()
        summary = distiller.distill_rowset(decaying, RowSet([0, 1, 2]), reason="decay")
        assert summary.row_count == 3
        assert summary.spans == [(0, 3)]
        assert summary.time_range == (0.0, 0.0)
        assert summary.column("v").estimate_mean() == pytest.approx(1.0)

    def test_rowset_event_published(self, decaying):
        seen = []
        decaying.bus.subscribe(SummaryCreated, seen.append)
        Distiller().distill_rowset(decaying, RowSet([0]), reason="decay")
        assert seen[0].rows == 1
        assert seen[0].reason == "decay"

    def test_distill_dicts(self, decaying):
        distiller = Distiller()
        rows = [{"t": 0.0, "f": 0.0, "v": 7}, {"t": 1.0, "f": 0.0, "v": 9}]
        summary = distiller.distill_dicts(decaying, rows, reason="post-hoc")
        assert summary.row_count == 2
        assert summary.column("v").estimate_mean() == pytest.approx(8.0)

    def test_summaries_include_freshness_column(self, decaying):
        decaying.decay(0, 0.4, "x")
        summary = Distiller().distill_rowset(decaying, RowSet([0]), reason="decay")
        assert summary.column("f").estimate_mean() == pytest.approx(0.6)
