"""Tests for repro.core.policy."""

import pytest

from repro.core.distill import Distiller, SummaryStore
from repro.core.events import TickCompleted
from repro.core.policy import DecayPolicy, EvictionMode
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.fungi import EGIFungus, LinearDecayFungus, NullFungus
from repro.storage import RowSet, Schema


def make_policy(decaying, fungus=None, **kwargs):
    return DecayPolicy(decaying, fungus or LinearDecayFungus(rate=0.5), **kwargs)


class TestValidation:
    def test_period_positive(self, decaying):
        with pytest.raises(DecayError):
            make_policy(decaying, period=0)

    def test_lazy_batch_positive(self, decaying):
        with pytest.raises(DecayError):
            make_policy(decaying, lazy_batch=0)

    def test_compact_every_non_negative(self, decaying):
        with pytest.raises(DecayError):
            make_policy(decaying, compact_every=-1)


class TestPeriod:
    def test_fungus_runs_on_period_multiples(self, clock, decaying):
        policy = make_policy(decaying, period=3)
        assert policy.run_tick(1) is None
        assert policy.run_tick(2) is None
        assert policy.run_tick(3) is not None
        assert policy.stats.cycles_run == 1

    def test_every_tick_with_period_one(self, decaying):
        policy = make_policy(decaying)
        assert policy.run_tick(1) is not None
        assert policy.run_tick(2) is not None


class TestEviction:
    def test_eager_evicts_same_tick(self, clock, decaying):
        policy = make_policy(decaying, fungus=LinearDecayFungus(rate=1.0))
        clock.advance(1)
        policy.run_tick(1)
        assert len(decaying) == 0
        assert policy.stats.tuples_evicted == 10

    def test_lazy_waits_for_batch(self, clock, decaying):
        policy = make_policy(
            decaying,
            fungus=LinearDecayFungus(rate=1.0),
            eviction=EvictionMode.LAZY,
            lazy_batch=64,
        )
        clock.advance(1)
        policy.run_tick(1)
        # all 10 exhausted but batch threshold (64) not reached
        assert len(decaying) == 10
        assert len(decaying.exhausted) == 10

    def test_lazy_evicts_at_threshold(self, clock, decaying):
        policy = make_policy(
            decaying,
            fungus=LinearDecayFungus(rate=1.0),
            eviction=EvictionMode.LAZY,
            lazy_batch=5,
        )
        clock.advance(1)
        policy.run_tick(1)
        assert len(decaying) == 0

    def test_flush_forces_lazy_eviction(self, clock, decaying):
        policy = make_policy(
            decaying,
            fungus=LinearDecayFungus(rate=1.0),
            eviction=EvictionMode.LAZY,
        )
        clock.advance(1)
        policy.run_tick(1)
        assert policy.flush() == 10
        assert len(decaying) == 0

    def test_flush_on_empty(self, decaying):
        assert make_policy(decaying).flush() == 0


class TestDistillation:
    def test_distiller_receives_evictions(self, clock, decaying):
        store = SummaryStore()
        policy = make_policy(
            decaying,
            fungus=LinearDecayFungus(rate=1.0),
            distiller=Distiller(store),
        )
        clock.advance(1)
        policy.run_tick(1)
        assert store.total_rows_summarised == 10
        assert policy.stats.tuples_distilled == 10

    def test_no_distiller_no_summaries(self, clock, decaying):
        policy = make_policy(decaying, fungus=LinearDecayFungus(rate=1.0))
        clock.advance(1)
        policy.run_tick(1)
        assert policy.stats.tuples_distilled == 0


class TestCompaction:
    def test_compacts_on_cadence(self, clock, decaying):
        policy = make_policy(
            decaying, fungus=LinearDecayFungus(rate=0.5), compact_every=2
        )
        clock.advance(1)
        policy.run_tick(1)
        clock.advance(1)
        policy.run_tick(2)  # everything exhausted+evicted, then compacted
        assert decaying.storage.tombstones == 0
        assert policy.stats.compactions == 1

    def test_fungus_state_remapped_on_compaction(self, clock, decaying):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.01)
        policy = DecayPolicy(decaying, fungus, compact_every=1, seed=3)
        decaying.evict(RowSet([0, 1]), "manual")
        clock.advance(1)
        policy.run_tick(1)
        assert all(decaying.is_live(rid) for rid in fungus.infected)


class TestEvents:
    def test_tick_completed_published(self, clock, decaying):
        seen = []
        decaying.bus.subscribe(TickCompleted, seen.append)
        policy = make_policy(decaying, fungus=LinearDecayFungus(rate=1.0))
        clock.advance(1)
        policy.run_tick(1)
        assert len(seen) == 1
        assert seen[0].evicted == 10

    def test_fungus_notified_of_external_evictions(self, decaying):
        fungus = EGIFungus(seeds_per_cycle=1, decay_rate=0.1)
        DecayPolicy(decaying, fungus, seed=1)
        fungus._spots.add(4)
        decaying.evict(RowSet([4]), "consume")
        assert 4 not in fungus.infected

    def test_keep_reports(self, clock, decaying):
        policy = make_policy(decaying, keep_reports=True)
        clock.advance(1)
        policy.run_tick(1)
        assert len(policy.stats.reports) == 1

    def test_null_policy_never_evicts(self, clock, decaying):
        policy = make_policy(decaying, fungus=NullFungus())
        clock.advance(5)
        for tick in range(1, 6):
            policy.run_tick(tick)
        assert len(decaying) == 10
        assert policy.stats.tuples_evicted == 0
