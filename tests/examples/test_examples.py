"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; a broken example is a
broken release. Each main() runs in-process with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_at_least_five_examples_exist():
    assert len(EXAMPLES) >= 5
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # it actually demonstrated something
