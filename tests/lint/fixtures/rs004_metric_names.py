"""Known-bad fixture: metric names outside the catalogue contract.

Every registry call below violates RS004 a different way: dynamic
name, wrong namespace, repro_* but undocumented in DESIGN.md.
"""


def register_metrics(registry, suffix: str) -> None:
    registry.counter("repro_" + suffix, "dynamic name", ("table",))  # flagged
    registry.gauge("app_extent", "wrong namespace", ("table",))  # flagged
    registry.counter(
        "repro_totally_undocumented_total",  # flagged: not in DESIGN.md
        "missing from the catalogue table",
        ("table",),
    )
    registry.counter(  # fine: literal, namespaced, catalogued
        "repro_inserts_total", "Tuples inserted.", ("table",)
    )
