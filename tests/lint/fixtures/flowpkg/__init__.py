"""Golden call-graph fixture: tests assert this package's exact edges."""
