"""Every call-graph feature in one module: methods, async defs,
decorated defs, nested defs, inheritance, a classmethod factory."""

import asyncio


def helper():
    return 1


def outer():
    def inner():
        return helper()

    return inner()


async def fetch():
    await asyncio.sleep(0)
    return helper()


def logged(fn):
    return fn


@logged
def decorated():
    return helper()


class Widget:
    def __init__(self, size):
        self.size = size

    def area(self):
        return self.size * self.size

    def doubled(self):
        return self.area() + self.area()

    @classmethod
    def unit(cls):
        return Widget(1)


class NamedWidget(Widget):
    def describe(self):
        return self.area()
