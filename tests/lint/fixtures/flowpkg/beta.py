"""Cross-module edges: imported names, module-attribute calls,
constructor-typed locals."""

from flowpkg import alpha
from flowpkg.alpha import Widget, decorated, helper


def build():
    w = Widget(3)
    return w.doubled()


def run():
    return build() + helper() + decorated()


async def drive():
    return await alpha.fetch()
