"""Known-bad fixture: an event constructed but never published.

A dropped event is an invisible state change — metrics, forensics and
probes all miss it.
"""

from repro.core.events import TupleEvicted, TupleInserted


def evict(bus, table: str, tick: float, rid: int) -> None:
    TupleEvicted(table, tick, rid=rid, reason="decay")  # flagged: dropped
    event = TupleInserted(table, tick, rid=rid)  # flagged: never published
    del event


def evict_published(bus, table: str, tick: float, rid: int) -> None:
    bus.publish(TupleEvicted(table, tick, rid=rid, reason="decay"))  # fine
    pending = TupleInserted(table, tick, rid=rid)  # fine: published below
    bus.publish(pending)


def make_event(table: str, tick: float, rid: int) -> TupleInserted:
    return TupleInserted(table, tick, rid=rid)  # fine: escapes to caller
