"""Known-bad fixture: module-level random usage.

The shared generator makes fungal spread depend on import order; only
injected seeded ``random.Random`` instances are allowed.
"""

import random
from random import choice  # flagged: binds the module-level generator

GOOD_RNG = random.Random(42)  # fine: explicit seeded instance


def pick_victim(rids: list) -> object:
    if random.random() < 0.5:  # flagged
        return random.choice(rids)  # flagged
    return choice(rids)
