"""Known-bad fixture: RS013 must fire here.

``_evict`` mutates the guarded dict without taking the lock but is
only ever called from inside ``put``'s ``with self._lock:`` block, so
the lock-held-on-entry fixpoint keeps it clean. ``size_unsafe`` reads
the dict with no lock at all, and ``_bump`` is reachable through the
unlocked ``racy_bump`` — both are findings.
"""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded by _lock
        self.size_hint = 0

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._evict()

    def _evict(self):
        while len(self._items) > 4:
            self._items.popitem()

    def size_unsafe(self):
        return len(self._items)

    def racy_bump(self, key):
        self._bump(key)

    def _bump(self, key):
        self._items[key] = self._items.get(key, 0) + 1
