"""Known-bad fixture: repro_query_* references the catalogue disowns.

Plain assignments and lookups only — no registry registration calls —
so RS004 stays silent and every finding below belongs to RS010.
"""


def read_panel(registry, kind: str):
    good = registry.value("repro_query_calls_total", kind=kind)  # fine
    series = "repro_query_seconds_bucket"  # fine: exposition suffix
    bad = registry.value("repro_query_latency_total", kind=kind)  # flagged
    dynamic = "repro_query_" + kind  # flagged: concatenation
    shaped = f"repro_query_{kind}_total"  # flagged: f-string
    return good, series, bad, dynamic, shaped
