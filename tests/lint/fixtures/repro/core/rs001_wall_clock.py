"""Known-bad fixture: wall-clock reads in a decay-critical package.

The path (``repro/core/``) puts this file inside RS001's restricted
scope; every timestamp below must be flagged.
"""

import time
from datetime import datetime
from time import monotonic  # flagged: exposes wall-clock via import


def decay_tick() -> float:
    started = time.time()  # flagged
    stamp = datetime.now()  # flagged
    time.sleep(0.1)  # flagged
    return started + stamp.timestamp() + monotonic()
