"""Known-bad fixture: RS012 must fire here.

``retry_delay`` is determinism-critical (fixture ``repro.core``) and
calls a noncritical helper whose body reads the wall clock — the taint
crosses the zone boundary at that call edge. ``churn`` iterates a set
expression directly, the intraprocedural hazard.
"""

from repro.entropy import backoff_seconds


def retry_delay(attempt):
    return backoff_seconds(attempt)


def churn(keys):
    total = 0
    for key in {k for k in keys}:
        total += key
    return total
