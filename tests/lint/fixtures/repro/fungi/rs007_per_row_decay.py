"""Known-bad fixture: per-row freshness loops in a fungus.

The path (``repro/fungi/``) puts this file inside RS007's scope; both
scalar-mutator loops below must be flagged. The batch call at the end
is the sanctioned shape and must pass.
"""


def cycle(table, members):
    for rid in members:
        table.set_freshness(rid, 0.5, "fixture")  # flagged: per-row loop
    drained = [table.decay(rid, 0.1, "fixture") for rid in members]  # flagged
    table.decay_many(members, 0.1, "fixture")  # sanctioned batch mutator
    return drained


def seed(table, rid):
    # a scalar call outside any loop is fine (one-off administrative use)
    table.set_freshness(rid, 1.0, "fixture")
