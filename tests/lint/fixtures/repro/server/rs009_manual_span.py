"""Known-bad fixture for RS009: spans opened outside ``with``.

Every opener call (``span`` / ``root_span`` / ``stage_span`` /
``anchor_span``) that is not the context expression of a ``with``
must fire; the ``with``-wrapped and ``record_span`` uses must not.
"""


def leaky_root(tracer):
    span = tracer.root_span("server.request")  # RS009: never closed on raise
    span.__enter__()
    return span


def leaky_stage(tracer, parent):
    child = tracer.stage_span("reply", parent)  # RS009: manual enter/exit
    child.__enter__()
    child.__exit__(None, None, None)
    return child


def leaky_anchor(tracer, parent):
    opened = tracer.anchor_span("worker.exec", parent)  # RS009
    opened.__enter__()
    return opened


def leaky_stack_span(tracer):
    return tracer.span("query")  # RS009: returned open, caller may leak it


def fine_with_block(tracer):
    with tracer.span("query") as span:
        span.set(rows=1)


def fine_explicit_parents(tracer, parent):
    with tracer.root_span("server.request") as root:
        with tracer.stage_span("frame.decode", root):
            pass
        with tracer.anchor_span("worker.exec", root):
            pass


def fine_record(tracer, parent):
    # one-shot: record_span returns an already-finished span
    return tracer.record_span("admission.wait", parent, 0.0, 0.01)
