"""Known-bad fixture: RS011 must fire here.

``handle`` is an async def in a (fixture) server module, so it runs on
the event loop; it mutates tracked engine state directly and through a
sync helper. The executor-submitted ``job`` mutates the same state but
only ever from the worker context, so it stays clean — and because
``handle`` *also* reaches ``FungusDB.insert``, the method body's own
tracked touch is flagged too (the state is reachable from two
contexts).
"""


class FungusDB:
    def __init__(self):
        self.tables = {}

    def insert(self, table, row):
        self.tables[table].append(row)


class BadServer:
    def __init__(self, db: FungusDB):
        self.db = db

    async def handle(self, row):
        self.db.insert("r", row)
        return self._hot_read()

    def _hot_read(self):
        return len(self.db.tables)

    def _submit(self, loop, row):
        def job():
            self.db.insert("r", row)

        loop.run_in_executor(None, job)
