"""Known-bad fixture for RS008: blocking I/O inside ``async def``.

Lives under a ``repro/server/`` path on purpose — the rule is scoped
to the asyncio front-end, where one blocked coroutine stalls every
connection on the loop.
"""

import asyncio
import socket
import time
from pathlib import Path


async def handle_frame(path: Path) -> bytes:
    time.sleep(0.1)  # BAD: stalls the event loop
    conn = socket.create_connection(("127.0.0.1", 7474))  # BAD: sync socket
    with open("/tmp/rot.log") as fh:  # BAD: blocking file open
        fh.read()
    payload = path.read_bytes()  # BAD: blocking pathlib I/O
    conn.close()
    return payload


async def polite_handler(loop: asyncio.AbstractEventLoop, path: Path) -> bytes:
    await asyncio.sleep(0.1)  # fine: yields to the loop
    return await loop.run_in_executor(None, path.read_bytes)  # fine: off-loop


async def with_sync_helper() -> None:
    def drain_to_disk(blob: bytes) -> None:
        # fine: a nested sync def runs on whichever thread calls it
        Path("/tmp/spool").write_bytes(blob)

    await asyncio.get_running_loop().run_in_executor(None, drain_to_disk, b"x")


def sync_setup(path: Path) -> str:
    # fine: not async — module setup may block
    time.sleep(0.0)
    return path.read_text()
