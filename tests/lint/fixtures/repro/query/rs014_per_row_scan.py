"""Known-bad fixture: row-at-a-time scans on a query hot path.

The path (``repro/query/``) puts this file inside RS014's scope; both
per-row materializations below must be flagged. The bulk gather at the
end is the sanctioned shape and must pass.
"""


def filter_rows(table, rids, wanted):
    kept = []
    for rid in rids:
        if table.row_dict(rid)["v"] in wanted:  # flagged: dict per row
            kept.append(rid)
    values = [table.row(rid) for rid in kept]  # flagged: comprehension
    columns = table.gather("v", kept)  # sanctioned bulk materialization
    return values, columns


def peek(table, rid):
    # a one-off administrative read outside any loop is fine
    return table.row_dict(rid)
