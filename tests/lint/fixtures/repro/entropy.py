"""Noncritical helper carrying a nondeterminism source (RS012 bait).

This module lives outside the determinism-critical packages, so the
``time.time()`` read is legal *here* — the finding fires on the call
edge through which critical code reaches it.
"""

import time


def backoff_seconds(attempt):
    return (time.time() % 1.0) / (attempt + 1)
