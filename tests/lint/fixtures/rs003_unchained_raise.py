"""Known-bad fixture: raise inside except without ``from``.

Rot forensics walks ``__cause__`` chains; the unchained raise below
severs the trail. The chained and re-raise forms are fine.
"""


class AppError(Exception):
    pass


def convert(value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise AppError(f"bad value {value!r}")  # flagged: no 'from'


def convert_chained(value: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise AppError(f"bad value {value!r}") from exc  # fine


def convert_reraise(value: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise exc  # fine: same exception keeps its provenance
