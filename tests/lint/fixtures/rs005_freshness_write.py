"""Known-bad fixture: direct freshness writes outside core/table.py.

Raw storage writes skip the [0, 1] clamp and the decay events the
sanctioned mutators provide.
"""


def rot_faster(table, rid: int) -> None:
    table.storage.update(rid, "f", -3.0)  # flagged: raw write, bad domain
    table.storage.update(rid, table.freshness_column, 0.5)  # flagged
    table.storage.update(rid, "v", 7)  # fine: not the freshness column
