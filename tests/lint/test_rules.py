"""Tier-A rule engine: mutation-style self-tests.

Each RS rule must fire on its known-bad fixture (a linter that stays
silent on planted violations is worthless), per-line ``noqa``
suppressions must work, and the shipped source tree must lint clean
with **zero** suppressions — that last test is the baseline the rules
enforce going forward.
"""

from pathlib import Path

import pytest

from repro.lint.engine import LintEngine, ModuleSource, SYNTAX_RULE_ID
from repro.lint.rules import (
    BatchMutatorRule,
    BlockingAsyncRule,
    CataloguedMetricRule,
    ChainedRaiseRule,
    NoWallClockRule,
    PublishedEventRule,
    QueryMetricReferenceRule,
    RowAtATimeScanRule,
    SanctionedFreshnessRule,
    SeededRandomRule,
    SpanContextManagerRule,
    default_rules,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

FIXTURE_BY_RULE = {
    "RS001": FIXTURES / "repro" / "core" / "rs001_wall_clock.py",
    "RS002": FIXTURES / "rs002_module_random.py",
    "RS003": FIXTURES / "rs003_unchained_raise.py",
    "RS004": FIXTURES / "rs004_metric_names.py",
    "RS005": FIXTURES / "rs005_freshness_write.py",
    "RS006": FIXTURES / "rs006_dropped_event.py",
    "RS007": FIXTURES / "repro" / "fungi" / "rs007_per_row_decay.py",
    "RS008": FIXTURES / "repro" / "server" / "rs008_blocking_async.py",
    "RS009": FIXTURES / "repro" / "server" / "rs009_manual_span.py",
    "RS010": FIXTURES / "rs010_query_metric_refs.py",
    "RS014": FIXTURES / "repro" / "query" / "rs014_per_row_scan.py",
}

EXPECTED_COUNTS = {
    "RS001": 4,  # two calls, sleep, and the banned import
    "RS002": 3,  # two module-level calls and the import
    "RS003": 1,  # only the unchained raise; chained/re-raise pass
    "RS004": 3,  # dynamic, wrong namespace, undocumented
    "RS005": 2,  # literal "f" and table.freshness_column
    "RS006": 2,  # dropped expression and never-published assignment
    "RS007": 2,  # for-loop set_freshness and comprehension decay
    "RS008": 4,  # sleep, sync socket, open(), pathlib read; helpers pass
    "RS009": 4,  # root/stage/anchor/span sans with; with + record_span pass
    "RS010": 3,  # undocumented name, concatenation, f-string; suffix passes
    "RS014": 2,  # for-loop row_dict and comprehension row; gather passes
}


class TestRulesFireOnFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_BY_RULE))
    def test_rule_fires_on_its_fixture(self, rule_id):
        report = LintEngine().lint_paths([FIXTURE_BY_RULE[rule_id]])
        fired = [f for f in report.findings if f.rule == rule_id]
        assert len(fired) == EXPECTED_COUNTS[rule_id], report.human()

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_BY_RULE))
    def test_fixture_is_otherwise_clean(self, rule_id):
        """A fixture must demonstrate exactly one rule."""
        report = LintEngine().lint_paths([FIXTURE_BY_RULE[rule_id]])
        assert {f.rule for f in report.findings} == {rule_id}, report.human()

    def test_findings_carry_location_and_message(self):
        report = LintEngine().lint_paths([FIXTURE_BY_RULE["RS003"]])
        (finding,) = report.findings
        assert finding.path.endswith("rs003_unchained_raise.py")
        assert finding.line > 1
        assert "from" in finding.message
        assert str(finding.line) in finding.format()


class TestSuppressions:
    def test_noqa_suppresses_on_the_flagged_line(self):
        source = FIXTURE_BY_RULE["RS005"].read_text()
        patched = source.replace(
            'table.storage.update(rid, "f", -3.0)',
            'table.storage.update(rid, "f", -3.0)  # repro: noqa[RS005]',
        )
        findings, suppressed = LintEngine().lint_source(
            Path("rs005_patched.py"), patched
        )
        assert suppressed == 1
        assert len([f for f in findings if f.rule == "RS005"]) == 1

    def test_noqa_is_rule_specific(self):
        source = 'import random\nx = random.random()  # repro: noqa[RS001]\n'
        findings, suppressed = LintEngine().lint_source(Path("x.py"), source)
        assert suppressed == 0  # wrong rule id: nothing suppressed
        assert [f.rule for f in findings] == ["RS002"]

    def test_noqa_accepts_a_rule_list(self):
        source = 'import random\nx = random.random()  # repro: noqa[RS001, RS002]\n'
        findings, suppressed = LintEngine().lint_source(Path("x.py"), source)
        assert suppressed == 1
        assert findings == []


class TestEngine:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings, _ = LintEngine().lint_source(Path("broken.py"), "def f(:\n")
        assert [f.rule for f in findings] == [SYNTAX_RULE_ID]

    def test_scoped_rules_skip_unrestricted_paths(self):
        """RS001 only bites inside the decay-critical packages."""
        rule = NoWallClockRule()
        assert rule.applies_to(Path("src/repro/core/db.py"))
        assert rule.applies_to(Path("src/repro/fungi/egi.py"))
        assert not rule.applies_to(Path("src/repro/obs/profile.py"))
        assert not rule.applies_to(Path("src/repro/bench/run.py"))

    def test_report_json_round_trips(self):
        import json

        report = LintEngine().lint_paths([FIXTURE_BY_RULE["RS002"]])
        payload = json.loads(report.to_json())
        assert payload["files"] == 1
        assert len(payload["findings"]) == EXPECTED_COUNTS["RS002"]
        assert {"rule", "path", "line", "col", "message"} <= set(
            payload["findings"][0]
        )

    def test_default_rules_cover_the_catalogue(self):
        ids = [rule.id for rule in default_rules()]
        assert ids == [
            "RS001",
            "RS002",
            "RS003",
            "RS004",
            "RS005",
            "RS006",
            "RS007",
            "RS008",
            "RS009",
            "RS010",
            "RS014",
        ]
        for rule in default_rules():
            assert rule.title and rule.rationale

    def test_rule_metadata_types(self):
        for rule_cls in (
            NoWallClockRule,
            SeededRandomRule,
            ChainedRaiseRule,
            CataloguedMetricRule,
            SanctionedFreshnessRule,
            PublishedEventRule,
            BatchMutatorRule,
            BlockingAsyncRule,
            SpanContextManagerRule,
            QueryMetricReferenceRule,
            RowAtATimeScanRule,
        ):
            assert rule_cls.id.startswith("RS")


class TestShippedTreeIsClean:
    def test_src_lints_clean_with_zero_suppressions(self):
        """The baseline: no findings AND no suppression escape hatches."""
        report = LintEngine().lint_paths([REPO / "src"])
        assert report.findings == [], report.human()
        assert report.suppressed == 0
        assert report.files > 100  # the whole tree was actually walked


class TestRS008Scope:
    def test_only_bites_under_the_server_package(self):
        rule = BlockingAsyncRule()
        assert rule.applies_to(Path("src/repro/server/server.py"))
        assert not rule.applies_to(Path("src/repro/core/db.py"))
        assert not rule.applies_to(Path("src/repro/obs/export.py"))

    def test_sync_defs_and_asyncio_sleep_pass(self):
        source = (
            "import asyncio, time\n"
            "async def ok():\n"
            "    await asyncio.sleep(0.1)\n"
            "def setup():\n"
            "    time.sleep(0.1)\n"
        )
        findings, _ = LintEngine(rules=[BlockingAsyncRule()]).lint_source(
            Path("repro/server/x.py"), source
        )
        assert findings == []

    def test_time_sleep_in_async_def_fails(self):
        source = "import time\nasync def bad():\n    time.sleep(1)\n"
        findings, _ = LintEngine(rules=[BlockingAsyncRule()]).lint_source(
            Path("repro/server/x.py"), source
        )
        assert [f.rule for f in findings] == ["RS008"]
        assert "asyncio.sleep" in findings[0].message


class TestRS009Scope:
    def test_bites_under_server_and_obs_only(self):
        rule = SpanContextManagerRule()
        assert rule.applies_to(Path("src/repro/server/server.py"))
        assert rule.applies_to(Path("src/repro/obs/tracing.py"))
        assert not rule.applies_to(Path("src/repro/core/db.py"))
        assert not rule.applies_to(Path("src/repro/sim/driver.py"))

    def test_with_wrapped_and_record_span_pass(self):
        source = (
            "def f(tracer, parent):\n"
            "    with tracer.root_span('server.request') as root:\n"
            "        with tracer.stage_span('reply', root):\n"
            "            pass\n"
            "    tracer.record_span('admission.wait', parent, 0.0, 0.1)\n"
        )
        findings, _ = LintEngine(rules=[SpanContextManagerRule()]).lint_source(
            Path("repro/server/x.py"), source
        )
        assert findings == []

    def test_bare_opener_fails(self):
        source = "def f(tracer):\n    s = tracer.span('query')\n    return s\n"
        findings, _ = LintEngine(rules=[SpanContextManagerRule()]).lint_source(
            Path("repro/obs/x.py"), source
        )
        assert [f.rule for f in findings] == ["RS009"]
        assert "with" in findings[0].message


class TestRS014Scope:
    def test_only_bites_under_the_query_package(self):
        rule = RowAtATimeScanRule()
        assert rule.applies_to(Path("src/repro/query/operators.py"))
        assert not rule.applies_to(Path("src/repro/storage/table.py"))
        assert not rule.applies_to(Path("src/repro/core/db.py"))

    def test_bulk_gather_and_one_off_reads_pass(self):
        source = (
            "def f(table, rids):\n"
            "    values = table.gather('v', rids)\n"
            "    first = table.row_dict(rids[0])\n"
            "    return values, first\n"
        )
        findings, _ = LintEngine(rules=[RowAtATimeScanRule()]).lint_source(
            Path("repro/query/x.py"), source
        )
        assert findings == []

    def test_per_row_loop_fails(self):
        source = (
            "def f(table, rids):\n"
            "    return [table.row(rid) for rid in rids]\n"
        )
        findings, _ = LintEngine(rules=[RowAtATimeScanRule()]).lint_source(
            Path("repro/query/x.py"), source
        )
        assert [f.rule for f in findings] == ["RS014"]
        assert "gather" in findings[0].message


class TestRS006Patterns:
    def test_publish_arg_and_assignment_paths_pass(self):
        source = (
            "from repro.core.events import TupleInserted\n"
            "def f(bus):\n"
            "    bus.publish(TupleInserted('r', 1.0, rid=1))\n"
            "    e = TupleInserted('r', 2.0, rid=2)\n"
            "    bus.publish(e)\n"
        )
        findings, _ = LintEngine(
            rules=[PublishedEventRule()]
        ).lint_source(Path("ok.py"), source)
        assert findings == []

    def test_returned_event_passes(self):
        source = (
            "from repro.core.events import TupleInserted\n"
            "def f():\n"
            "    return TupleInserted('r', 1.0, rid=1)\n"
        )
        findings, _ = LintEngine(
            rules=[PublishedEventRule()]
        ).lint_source(Path("ok.py"), source)
        assert findings == []

    def test_dropped_event_fails(self):
        source = (
            "from repro.core.events import TupleInserted\n"
            "def f():\n"
            "    TupleInserted('r', 1.0, rid=1)\n"
        )
        findings, _ = LintEngine(
            rules=[PublishedEventRule()]
        ).lint_source(Path("bad.py"), source)
        assert [f.rule for f in findings] == ["RS006"]
