"""``python -m repro.lint sql`` — embedded consume scanning."""

from pathlib import Path

from repro.lint import sqlscan
from repro.lint.__main__ import main as lint_main

REPO = Path(__file__).resolve().parents[2]


def write(tmp_path: Path, name: str, text: str) -> Path:
    target = tmp_path / name
    target.write_text(text)
    return target


class TestExtraction:
    def test_finds_literal_consumes(self, tmp_path):
        write(
            tmp_path,
            "job.py",
            'SQL = "CONSUME SELECT v FROM r WHERE v > 3"\n'
            'OTHER = "SELECT v FROM r"\n',
        )
        found = list(sqlscan.iter_embedded([tmp_path]))
        assert len(found) == 1
        assert found[0].sql == "CONSUME SELECT v FROM r WHERE v > 3"
        assert found[0].line == 1

    def test_fstring_consume_is_dynamic_not_duplicated(self, tmp_path):
        write(
            tmp_path,
            "job.py",
            'def q(t):\n    return f"CONSUME SELECT v FROM r WHERE v > {t}"\n',
        )
        found = list(sqlscan.iter_embedded([tmp_path]))
        assert len(found) == 1
        assert found[0].sql is None
        assert found[0].verdict == "dynamic"

    def test_prose_mentioning_consume_is_ignored(self, tmp_path):
        write(
            tmp_path,
            "doc.py",
            '"""The 500s are CONSUMEd during review; see CONSUME docs."""\n',
        )
        assert list(sqlscan.iter_embedded([tmp_path])) == []


class TestVerdicts:
    def test_total_consume_fails_the_scan(self, tmp_path, capsys):
        write(tmp_path, "bad.py", 'SQL = "CONSUME SELECT v FROM r"\n')
        assert lint_main(["sql", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "total" in out

    def test_tautology_consume_fails_schemaless(self, tmp_path):
        write(
            tmp_path,
            "bad.py",
            'SQL = "CONSUME SELECT v FROM r WHERE 1 = 1"\n',
        )
        results = sqlscan.scan([tmp_path])
        assert [r.verdict for r in results] == ["total"]

    def test_partial_consume_passes(self, tmp_path, capsys):
        write(
            tmp_path,
            "good.py",
            'SQL = "CONSUME SELECT v FROM r WHERE v > 3"\n',
        )
        assert lint_main(["sql", str(tmp_path)]) == 0
        assert "partial" in capsys.readouterr().out

    def test_contradiction_is_reported_none(self, tmp_path):
        write(
            tmp_path,
            "noop.py",
            'SQL = "CONSUME SELECT v FROM r WHERE v > 5 AND v < 2"\n',
        )
        results = sqlscan.scan([tmp_path])
        assert [r.verdict for r in results] == ["none"]


class TestExplainCheck:
    def test_every_statement_kind_is_picked_up(self, tmp_path):
        write(
            tmp_path,
            "job.py",
            'A = "SELECT v FROM r WHERE v > 3"\n'
            'B = "CONSUME SELECT v FROM r WHERE v > 3"\n'
            'C = "DELETE FROM r WHERE v > 3"\n'
            'D = "INSERT INTO r (v) VALUES (1)"\n'
            'E = "EXPLAIN ANALYZE SELECT v FROM r WHERE v > 3"\n'
            'PROSE = "SELECT committee minutes are in the drive"\n',
        )
        outcomes = sqlscan.explain_check([tmp_path])
        assert [o.status for o in outcomes] == ["ok", "ok", "ok", "insert", "ok"]

    def test_schema_inference_types_string_comparisons(self, tmp_path):
        """key = 'a' must infer a str column, not choke on float."""
        write(
            tmp_path,
            "job.py",
            "SQL = \"SELECT v FROM r WHERE key = 'a' AND v > 2\"\n",
        )
        (outcome,) = sqlscan.explain_check([tmp_path])
        assert outcome.status == "ok", outcome.detail

    def test_join_and_in_list_statements_explain(self, tmp_path):
        write(
            tmp_path,
            "job.py",
            'SQL = ("SELECT r.v FROM r JOIN s ON r.key = s.k "\n'
            "       \"WHERE s.label IN ('X', 'Y')\")\n",
        )
        found = [o for o in sqlscan.explain_check([tmp_path]) if o.sql]
        assert [o.status for o in found] == ["ok"], [o.detail for o in found]

    def test_renderer_error_fails_the_check(self, tmp_path, capsys):
        write(
            tmp_path,
            "bad.py",
            'SQL = "SELECT v FROM r WHERE v >"\n',  # parse error
        )
        assert lint_main(["sql", "--explain", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE failed" in out
        assert "1 failed" in out

    def test_dynamic_statements_do_not_fail(self, tmp_path):
        write(
            tmp_path,
            "job.py",
            'def q(t):\n    return f"SELECT v FROM r WHERE v > {t}"\n',
        )
        (outcome,) = sqlscan.explain_check([tmp_path])
        assert outcome.status == "dynamic"
        assert not outcome.failed


class TestRepoExamples:
    def test_shipped_examples_have_no_total_consumes(self, capsys):
        """The CI smoke contract: every example consume is bounded."""
        assert lint_main(["sql", str(REPO / "examples")]) == 0
        out = capsys.readouterr().out
        assert "0 statically total" in out

    def test_shipped_examples_actually_contain_consumes(self):
        results = sqlscan.scan([REPO / "examples"])
        assert len([r for r in results if r.sql is not None]) >= 4

    def test_shipped_examples_all_explain(self, capsys):
        """The CI contract: every example statement renders a plan."""
        assert lint_main(["sql", "--explain", str(REPO / "examples")]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out
        explained = int(out.splitlines()[-1].split()[0])
        assert explained >= 10
