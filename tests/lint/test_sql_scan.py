"""``python -m repro.lint sql`` — embedded consume scanning."""

from pathlib import Path

from repro.lint import sqlscan
from repro.lint.__main__ import main as lint_main

REPO = Path(__file__).resolve().parents[2]


def write(tmp_path: Path, name: str, text: str) -> Path:
    target = tmp_path / name
    target.write_text(text)
    return target


class TestExtraction:
    def test_finds_literal_consumes(self, tmp_path):
        write(
            tmp_path,
            "job.py",
            'SQL = "CONSUME SELECT v FROM r WHERE v > 3"\n'
            'OTHER = "SELECT v FROM r"\n',
        )
        found = list(sqlscan.iter_embedded([tmp_path]))
        assert len(found) == 1
        assert found[0].sql == "CONSUME SELECT v FROM r WHERE v > 3"
        assert found[0].line == 1

    def test_fstring_consume_is_dynamic_not_duplicated(self, tmp_path):
        write(
            tmp_path,
            "job.py",
            'def q(t):\n    return f"CONSUME SELECT v FROM r WHERE v > {t}"\n',
        )
        found = list(sqlscan.iter_embedded([tmp_path]))
        assert len(found) == 1
        assert found[0].sql is None
        assert found[0].verdict == "dynamic"

    def test_prose_mentioning_consume_is_ignored(self, tmp_path):
        write(
            tmp_path,
            "doc.py",
            '"""The 500s are CONSUMEd during review; see CONSUME docs."""\n',
        )
        assert list(sqlscan.iter_embedded([tmp_path])) == []


class TestVerdicts:
    def test_total_consume_fails_the_scan(self, tmp_path, capsys):
        write(tmp_path, "bad.py", 'SQL = "CONSUME SELECT v FROM r"\n')
        assert lint_main(["sql", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "total" in out

    def test_tautology_consume_fails_schemaless(self, tmp_path):
        write(
            tmp_path,
            "bad.py",
            'SQL = "CONSUME SELECT v FROM r WHERE 1 = 1"\n',
        )
        results = sqlscan.scan([tmp_path])
        assert [r.verdict for r in results] == ["total"]

    def test_partial_consume_passes(self, tmp_path, capsys):
        write(
            tmp_path,
            "good.py",
            'SQL = "CONSUME SELECT v FROM r WHERE v > 3"\n',
        )
        assert lint_main(["sql", str(tmp_path)]) == 0
        assert "partial" in capsys.readouterr().out

    def test_contradiction_is_reported_none(self, tmp_path):
        write(
            tmp_path,
            "noop.py",
            'SQL = "CONSUME SELECT v FROM r WHERE v > 5 AND v < 2"\n',
        )
        results = sqlscan.scan([tmp_path])
        assert [r.verdict for r in results] == ["none"]


class TestRepoExamples:
    def test_shipped_examples_have_no_total_consumes(self, capsys):
        """The CI smoke contract: every example consume is bounded."""
        assert lint_main(["sql", str(REPO / "examples")]) == 0
        out = capsys.readouterr().out
        assert "0 statically total" in out

    def test_shipped_examples_actually_contain_consumes(self):
        results = sqlscan.scan([REPO / "examples"])
        assert len([r for r in results if r.sql is not None]) >= 4
