"""The stale-suppression audit (RS900) and per-rule hit counting."""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import STALE_NOQA_RULE_ID, LintEngine

BAD_CLOCK = "import time\n\ndef f():\n    return time.time()\n"
PATH = Path("repro/core/x.py")


class TestStaleNoqaAudit:
    def test_live_suppression_is_not_stale(self):
        source = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: noqa[RS001]\n"
        )
        findings, suppressed = LintEngine(audit_noqa=True).lint_source(
            PATH, source
        )
        assert findings == []
        assert suppressed == 1

    def test_stale_suppression_is_a_finding(self):
        source = "import time\n\ndef f():\n    return 1  # repro: noqa[RS001]\n"
        findings, _ = LintEngine(audit_noqa=True).lint_source(PATH, source)
        assert [f.rule for f in findings] == [STALE_NOQA_RULE_ID]
        assert "RS001" in findings[0].message
        assert findings[0].line == 4

    def test_partially_stale_list_flags_only_the_dead_id(self):
        source = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: noqa[RS001, RS004]\n"
        )
        findings, suppressed = LintEngine(audit_noqa=True).lint_source(
            PATH, source
        )
        assert [f.rule for f in findings] == [STALE_NOQA_RULE_ID]
        assert "RS004" in findings[0].message
        assert suppressed == 1

    def test_audit_is_opt_in(self):
        """Library callers keep the old contract unless they ask."""
        source = "def f():\n    return 1  # repro: noqa[RS001]\n"
        findings, _ = LintEngine().lint_source(PATH, source)
        assert findings == []

    def test_stale_noqa_cannot_suppress_itself(self):
        source = "def f():\n    return 1  # repro: noqa[RS001, RS900]\n"
        findings, _ = LintEngine(audit_noqa=True).lint_source(PATH, source)
        assert STALE_NOQA_RULE_ID in [f.rule for f in findings]


class TestRuleCounts:
    def test_report_counts_by_rule(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(BAD_CLOCK + "\ndef g():\n    return time.time()\n")
        report = LintEngine().lint_paths([bad])
        assert report.rule_counts() == {"RS001": 2}
        assert "RS001" in report.stats()
        assert '"counts"' in report.to_json()

    def test_clean_tree_stats_render(self):
        report = LintEngine().lint_paths([])
        assert report.rule_counts() == {}
        assert "no findings" in report.stats()
