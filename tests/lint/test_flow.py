"""Tier-C flow analysis: the call graph, the RS011–RS013 rules, and
the shipped tree's cleanliness.

The golden-package test pins the builder's exact output — every edge
kind the interprocedural rules depend on (method resolution through
``self``, async defs, decorated defs, nested defs, inheritance,
classmethod factories, cross-module imports) asserted pair by pair, so
a resolution regression fails loudly instead of silently shrinking the
rules' reach.
"""

from __future__ import annotations

import ast
from collections import Counter
from pathlib import Path

from repro.lint.engine import Finding
from repro.lint.flow import (
    FlowEngine,
    build_callgraph,
    module_name_for,
)
from repro.lint.flow.callgraph import expand_paths

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _rules(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]


class TestCallGraphGolden:
    """The flowpkg fixture's graph, asserted edge by edge."""

    EXPECTED_EDGES = {
        ("flowpkg.alpha.NamedWidget.describe", "flowpkg.alpha.Widget.area"),
        ("flowpkg.alpha.Widget.doubled", "flowpkg.alpha.Widget.area"),
        ("flowpkg.alpha.Widget.unit", "flowpkg.alpha.Widget.__init__"),
        ("flowpkg.alpha.decorated", "flowpkg.alpha.helper"),
        ("flowpkg.alpha.fetch", "flowpkg.alpha.helper"),
        ("flowpkg.alpha.outer", "flowpkg.alpha.outer.<locals>.inner"),
        ("flowpkg.alpha.outer.<locals>.inner", "flowpkg.alpha.helper"),
        ("flowpkg.beta.build", "flowpkg.alpha.Widget.__init__"),
        ("flowpkg.beta.build", "flowpkg.alpha.Widget.doubled"),
        ("flowpkg.beta.drive", "flowpkg.alpha.fetch"),
        ("flowpkg.beta.run", "flowpkg.alpha.decorated"),
        ("flowpkg.beta.run", "flowpkg.alpha.helper"),
        ("flowpkg.beta.run", "flowpkg.beta.build"),
    }

    def test_exact_edges(self):
        graph = build_callgraph([FIXTURES / "flowpkg"])
        assert set(graph.edge_pairs()) == self.EXPECTED_EDGES

    def test_every_def_is_a_node(self):
        graph = build_callgraph([FIXTURES / "flowpkg"])
        dotted = {node.dotted for node in graph.nodes.values()}
        assert "flowpkg.alpha.Widget.unit" in dotted  # classmethod
        assert "flowpkg.alpha.fetch" in dotted  # async def
        assert "flowpkg.alpha.decorated" in dotted  # decorated def
        assert "flowpkg.alpha.outer.<locals>.inner" in dotted  # nested
        fetch = next(n for n in graph.nodes.values() if n.name == "fetch")
        assert fetch.is_async
        decorated = next(
            n for n in graph.nodes.values() if n.name == "decorated"
        )
        assert "logged" in decorated.decorators

    def test_stdlib_calls_stay_unresolved_not_invented(self):
        graph = build_callgraph([FIXTURES / "flowpkg"])
        unresolved = {
            name
            for calls in graph.unresolved.values()
            for name, _line in calls
        }
        assert "asyncio.sleep" in unresolved


class TestModuleNaming:
    def test_fixture_server_paths_analyze_like_shipped_code(self):
        path = FIXTURES / "repro" / "server" / "rs011_rot_race.py"
        assert module_name_for(path) == "repro.server.rs011_rot_race"

    def test_package_walkup_without_repro_component(self):
        assert module_name_for(FIXTURES / "flowpkg" / "alpha.py") == (
            "flowpkg.alpha"
        )


class TestRS011RotRace:
    def test_known_bad_fixture_fires(self):
        report = FlowEngine().analyze_paths(
            [FIXTURES / "repro" / "server" / "rs011_rot_race.py"]
        )
        assert _rules(report.findings) == ["RS011", "RS011", "RS011"]
        lines = sorted(f.line for f in report.findings)
        # insert's body, handle's direct call, _hot_read's attr touch
        assert lines == [18, 26, 30]
        assert all("loop" in f.message for f in report.findings)

    def test_worker_only_mutation_is_clean(self):
        report = FlowEngine().analyze_paths(
            [FIXTURES / "repro" / "server" / "rs011_rot_race.py"]
        )
        # the executor-submitted job (line 34) must never be flagged
        assert all(f.line != 34 for f in report.findings)


class TestRS012DeterminismTaint:
    PATHS = [
        FIXTURES / "repro" / "core" / "rs012_taint.py",
        FIXTURES / "repro" / "entropy.py",
    ]

    def test_known_bad_fixture_fires(self):
        report = FlowEngine().analyze_paths(self.PATHS)
        assert _rules(report.findings) == ["RS012", "RS012"]
        edge, set_iter = report.findings
        assert "time.time()" in edge.message
        assert "repro.entropy.backoff_seconds" in edge.message
        assert "sorted(" in set_iter.message

    def test_source_module_itself_is_not_flagged(self):
        report = FlowEngine().analyze_paths(self.PATHS)
        assert all("entropy.py" not in f.path for f in report.findings)


class TestRS013LockDiscipline:
    def test_known_bad_fixture_fires(self):
        report = FlowEngine().analyze_paths(
            [FIXTURES / "rs013_lock_discipline.py"]
        )
        assert _rules(report.findings) == ["RS013", "RS013", "RS013"]
        lines = sorted(f.line for f in report.findings)
        # size_unsafe's read, _bump's two touches; _evict (lock held on
        # entry via put) and __init__ stay clean
        assert lines == [29, 35, 35]
        assert any("racy_bump" in f.message for f in report.findings)

    def test_lock_held_on_entry_keeps_evict_clean(self):
        report = FlowEngine().analyze_paths(
            [FIXTURES / "rs013_lock_discipline.py"]
        )
        assert all(f.line not in (25, 26) for f in report.findings)


class TestGraphCoversWholeTree:
    def test_every_src_def_appears_exactly_once(self):
        """Property: one node per function/async def, lambdas excluded."""
        targets = expand_paths([REPO / "src"])
        graph = build_callgraph(targets)
        keys = {(node.path, node.lineno) for node in graph.nodes.values()}
        assert len(keys) == len(graph.nodes)
        per_path = Counter(node.path for node in graph.nodes.values())
        for path in targets:
            tree = ast.parse(path.read_text(encoding="utf-8"))
            defs = sum(
                isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                for n in ast.walk(tree)
            )
            assert per_path.get(str(path), 0) == defs, path


class TestShippedTreeIsFlowClean:
    def test_src_flows_clean_with_zero_suppressions(self):
        report = FlowEngine().analyze_paths([REPO / "src"])
        assert report.findings == [], report.human()
        assert report.suppressed == 0
        assert report.files > 100
        assert report.functions > 1000
        assert report.edges > 1000


class TestFlowCli:
    def test_flow_subcommand_json_and_graph(self, capsys):
        import json

        from repro.lint.__main__ import main

        code = main(
            ["flow", str(FIXTURES / "flowpkg"), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["findings"] == []
        assert payload["functions"] == 14

    def test_flow_subcommand_exits_one_on_findings(self, capsys):
        from repro.lint.__main__ import main

        code = main(
            ["flow", str(FIXTURES / "rs013_lock_discipline.py"), "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "RS013" in out
