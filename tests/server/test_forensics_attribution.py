"""Death provenance over the network names the consuming session.

When a consume arrives through the server, the worker sets
``engine.current_actor`` to the session id for the duration of the
statement, and ``_before_consume`` appends `` @<session-id>`` to the
recorded query text — so ``why`` can answer not just *which* statement
carried a tuple away, but *who* sent it.
"""

from __future__ import annotations

import asyncio

from tests.server.harness import connect, running_server, seeded_db


def test_consumed_death_records_carry_the_session_id():
    async def scenario():
        db = seeded_db(seed=9)
        forensics = db.enable_forensics()
        async with running_server(db) as server:
            first = await connect(server)   # s1
            second = await connect(server)  # s2
            try:
                for k in range(4):
                    await first.insert("r", {"k": k, "v": k})
                sql = "CONSUME SELECT k FROM r WHERE v < 2"
                await second.query(sql)
            finally:
                await first.close()
                await second.close()
        consumed = [r for r in forensics.deaths("r") if r.cause == "consumed"]
        assert len(consumed) == 2
        for record in consumed:
            assert record.query == f"{sql} @s2", record.query

    asyncio.run(scenario())


def test_embedded_consumes_stay_unattributed():
    """Without a session the query text is recorded verbatim — the
    attribution suffix is strictly a network-boundary annotation."""
    db = seeded_db(seed=9)
    forensics = db.enable_forensics()
    for k in range(2):
        db.insert("r", {"k": k, "v": k})
    sql = "CONSUME SELECT k FROM r WHERE v < 1"
    db.query(sql)
    consumed = [r for r in forensics.deaths("r") if r.cause == "consumed"]
    assert len(consumed) == 1
    assert consumed[0].query == sql
