"""Concurrency guarantees of the network front-end.

Three promises, each with a test that would catch its violation:

1. **Per-client ordering** — a connection's responses come back in
   request order, even when many connections are interleaving and the
   engine worker is reordering *across* clients.
2. **No torn reads** — a snapshot read never observes a decay tick
   half-applied: every row inserted at the same tick shows the same
   freshness, always.
3. **Serializability** — the server's final state is bit-identical to
   a single-threaded replay of its merged op log into a fresh engine
   with the same seed; and for the deterministic fungi, both agree
   with the sim suite's closed-form :class:`~repro.sim.oracle.Oracle`.
"""

from __future__ import annotations

import asyncio
import random

from repro.server.protocol import read_frame, write_frame
from repro.sim.oracle import FungusSpec, Oracle

from tests.server.harness import (
    connect,
    raw_connection,
    replay_oplog,
    running_server,
    seeded_db,
    table_state,
)


class TestPerClientOrdering:
    def test_pipelined_frames_answer_in_order(self):
        """Write a burst of frames, then read: ids echo in send order."""

        async def scenario():
            db = seeded_db()
            async with running_server(db) as server:

                async def one_client(cid: int) -> None:
                    reader, writer = await raw_connection(server.port)
                    try:
                        await write_frame(writer, {"op": "hello", "id": "h"})
                        hello = await read_frame(reader)
                        assert hello is not None and hello["ok"]
                        sent = []
                        for j in range(25):
                            frame_id = f"c{cid}-{j}"
                            sent.append(frame_id)
                            if j % 3 == 0:
                                payload = {
                                    "op": "insert",
                                    "table": "r",
                                    "row": {"k": cid * 1000 + j, "v": j},
                                    "id": frame_id,
                                }
                            else:
                                payload = {
                                    "op": "query",
                                    "sql": "SELECT k FROM r",
                                    "id": frame_id,
                                }
                            await write_frame(writer, payload)
                        got = []
                        for _ in sent:
                            response = await read_frame(reader)
                            assert response is not None and response["ok"]
                            got.append(response["id"])
                        assert got == sent
                    finally:
                        writer.close()
                        await writer.wait_closed()

                await asyncio.gather(*(one_client(cid) for cid in range(8)))

        asyncio.run(scenario())


class TestNoTornReads:
    def test_snapshot_freshness_is_never_mixed(self):
        """Rows born at the same tick decay in lockstep, to every reader.

        All rows go in at tick 0, so at any *boundary* they share one
        freshness value. A reader overlapping a mid-flight tick on the
        live arrays would see a mix; the snapshot must never show one.
        """

        async def scenario():
            from repro.core.db import FungusDB
            from repro.fungi import LinearDecayFungus
            from repro.storage.schema import Schema

            db = FungusDB(seed=3)
            db.create_table(
                "r",
                Schema.of(k="int"),
                fungus=LinearDecayFungus(rate=0.002),
            )
            for k in range(400):
                db.insert("r", {"k": k})
            async with running_server(db, tick_interval=0.003) as server:

                async def reader_client() -> int:
                    client = await connect(server)
                    nonempty = 0
                    try:
                        for _ in range(40):
                            response = await client.query(
                                "SELECT f FROM r", consistency="snapshot"
                            )
                            values = {row[0] for row in response["rows"]}
                            assert len(values) <= 1, (
                                f"torn snapshot read: {sorted(values)}"
                            )
                            if values:
                                nonempty += 1
                    finally:
                        await client.close()
                    return nonempty

                counts = await asyncio.gather(*(reader_client() for _ in range(4)))
                # the assertion above is vacuous on empty results; make
                # sure the readers actually raced live decay
                assert sum(counts) > 0
                assert server.metrics.ticks.labels().value > 0

        asyncio.run(scenario())


def _run_mixed_workload(seed: int, fungus: str) -> tuple:
    """Drive a server with interleaved clients; return (oplog, state, clock).

    Four workers insert/select/consume concurrently while a fifth
    advances the decay clock; every strong op lands in the op log in
    worker execution order.
    """

    async def scenario():
        db = seeded_db(seed=seed, fungus=fungus)
        async with running_server(db) as server:

            async def worker(cid: int) -> None:
                rng = random.Random(seed * 100 + cid)
                client = await connect(server)
                try:
                    for j in range(30):
                        roll = rng.random()
                        if roll < 0.5:
                            await client.insert(
                                "r",
                                {"k": cid * 1000 + j, "v": rng.randrange(100)},
                            )
                        elif roll < 0.85:
                            await client.query("SELECT k, v FROM r WHERE v >= 50")
                        else:
                            await client.query(
                                "CONSUME SELECT k FROM r WHERE v < 25"
                            )
                finally:
                    await client.close()

            async def ticker() -> None:
                client = await connect(server)
                try:
                    for _ in range(12):
                        await client.tick(1)
                        await asyncio.sleep(0.001)
                finally:
                    await client.close()

            await asyncio.gather(*(worker(cid) for cid in range(4)), ticker())
            oplog = list(server.oplog)
            state = table_state(server.db, "r")
            clock = server.db.clock.now
        return oplog, state, clock

    return asyncio.run(scenario())


class TestReplayOracle:
    def test_final_state_matches_single_threaded_replay(self):
        """Across 5 seeds and both deterministic fungi: bit-identical."""
        for seed, fungus in [
            (11, "linear"),
            (12, "exponential"),
            (13, "linear"),
            (14, "exponential"),
            (15, "linear"),
        ]:
            oplog, state, clock = _run_mixed_workload(seed, fungus)
            assert any(entry[0] == "query" for entry in oplog)
            assert any(entry[0] == "tick" for entry in oplog)
            replayed = replay_oplog(oplog, seed=seed, fungus=fungus)
            assert replayed.clock.now == clock
            assert table_state(replayed, "r") == state, (
                f"seed {seed} ({fungus}): replay diverged"
            )

    def test_replay_agrees_with_sim_oracle(self):
        """Third leg: the closed-form model reaches the same live set.

        The oracle models Laws 1 and 2 as naive lists with the exact
        same float operations — replaying the server's op log into it
        must produce the same surviving keys with the same freshness.
        """
        oplog, state, _ = _run_mixed_workload(21, "linear")

        oracle = Oracle()
        oracle.create_table("r", FungusSpec("linear", rate=0.1))
        for entry in oplog:
            if entry[0] == "insert":
                _, _, row = entry
                oracle.insert("r", key=row["k"], attrs={"v": row["v"]})
            elif entry[0] == "tick":
                oracle.tick(entry[1])
            elif entry[1].startswith("CONSUME"):
                # the workload's one consume shape: WHERE v < 25
                oracle.consume("r", lambda row: row.attrs["v"] < 25)

        model = [(row.key, row.f) for row in oracle.tables["r"].rows]
        # server state rows are (t, f, k, v) in schema order
        served = [(row[2], row[1]) for row in state]
        assert served == model
