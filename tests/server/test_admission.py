"""Admission control: BUSY is fast, a promise is a promise.

The deterministic lever is the ``debug_sleep`` op (enabled via
``ServerConfig.debug_ops``): it parks the engine worker in a plain
``time.sleep`` so the loop keeps answering while the queue provably
cannot drain. With the worker pinned, admission outcomes stop being
racy — the first ``queue_limit`` strong ops are admitted, the next is
``BUSY`` within a deadline, and draining completes exactly the
admitted ones.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.server import AdmissionController, Code
from repro.server.protocol import read_frame, write_frame

from tests.server.harness import connect, raw_connection, running_server, seeded_db

DEADLINE = 5.0


class TestController:
    def test_limit_is_enforced(self):
        controller = AdmissionController(limit=2)
        assert controller.try_admit() and controller.try_admit()
        assert not controller.try_admit()
        assert controller.rejected_total == 1
        controller.release()
        assert controller.try_admit()

    def test_drain_refuses_new_only(self):
        controller = AdmissionController(limit=4)
        assert controller.try_admit()
        controller.start_drain()
        assert controller.draining
        assert not controller.idle
        controller.release()
        assert controller.idle

    def test_rejects_nonsense_limits(self):
        with pytest.raises(ValueError):
            AdmissionController(limit=0)


def _pin_worker(client_writer, seconds: float):
    """Frame that parks the engine worker (no response awaited here)."""
    return write_frame(
        client_writer, {"op": "debug_sleep", "seconds": seconds, "id": "nap"}
    )


class TestBackpressure:
    def test_busy_within_deadline_and_counted(self):
        """Queue full → BUSY in well under a second, metric incremented."""

        async def scenario():
            db = seeded_db()
            async with running_server(
                db, queue_limit=2, debug_ops=True
            ) as server:
                # two connections whose strong ops will sit on the
                # pinned worker, occupying the whole queue
                sleepers = []
                for _ in range(2):
                    reader, writer = await raw_connection(server.port)
                    await write_frame(writer, {"op": "hello"})
                    assert (await read_frame(reader))["ok"]
                    await _pin_worker(writer, 0.5)
                    sleepers.append((reader, writer))
                # give the loop a moment to admit both
                for _ in range(100):
                    if server.admission.in_flight == 2:
                        break
                    await asyncio.sleep(0.005)
                assert server.admission.in_flight == 2

                probe = await connect(server)
                started = time.perf_counter()
                raw = await asyncio.wait_for(
                    probe.request_raw(
                        {"op": "insert", "table": "r", "row": {"k": 1, "v": 1}}
                    ),
                    DEADLINE,
                )
                elapsed = time.perf_counter() - started
                assert raw["ok"] is False
                assert raw["code"] == Code.BUSY
                assert elapsed < 0.4, f"BUSY took {elapsed:.3f}s"
                assert (
                    server.metrics.rejected.labels(reason="busy").value >= 1
                )
                assert server.admission.rejected_total >= 1

                # snapshot reads bypass admission: still answered
                snap = await probe.query("SELECT k FROM r", consistency="snapshot")
                assert snap["consistency"] == "snapshot"

                # and once the worker wakes, the sleepers' answers arrive
                for reader, writer in sleepers:
                    response = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert response["ok"] and response["id"] == "nap"
                    writer.close()
                    await writer.wait_closed()
                await probe.close()

        asyncio.run(scenario())

    def test_drain_finishes_admitted_work_and_refuses_new(self):
        """Backpressure promise: admitted ops complete across a drain."""

        async def scenario():
            db = seeded_db()
            async with running_server(
                db, queue_limit=4, debug_ops=True
            ) as server:
                # one connection handles frames sequentially, so the
                # pinned nap and the queued insert need separate
                # connections to both be *admitted* before the drain
                reader, writer = await raw_connection(server.port)
                await write_frame(writer, {"op": "hello"})
                assert (await read_frame(reader))["ok"]
                await _pin_worker(writer, 0.3)
                ins_reader, ins_writer = await raw_connection(server.port)
                await write_frame(ins_writer, {"op": "hello"})
                assert (await read_frame(ins_reader))["ok"]
                await write_frame(
                    ins_writer,
                    {"op": "insert", "table": "r", "row": {"k": 7, "v": 7}, "id": "i"},
                )
                for _ in range(100):
                    if server.admission.in_flight >= 2:
                        break
                    await asyncio.sleep(0.005)
                assert server.admission.in_flight >= 2

                admin = await connect(server)
                drain_task = asyncio.ensure_future(
                    admin.request({"op": "drain"})
                )
                await asyncio.sleep(0.01)

                # new strong work is refused while draining...
                probe = await connect(server)
                raw = await probe.request_raw(
                    {"op": "insert", "table": "r", "row": {"k": 8, "v": 8}}
                )
                assert raw["ok"] is False
                assert raw["code"] == Code.DRAINING
                assert (
                    server.metrics.rejected.labels(reason="draining").value >= 1
                )

                # ...but the admitted insert still lands
                nap = await asyncio.wait_for(read_frame(reader), DEADLINE)
                assert nap["ok"] and nap["id"] == "nap"
                inserted = await asyncio.wait_for(read_frame(ins_reader), DEADLINE)
                assert inserted["ok"] and inserted["id"] == "i"
                await asyncio.wait_for(drain_task, DEADLINE)
                assert any(
                    entry == ("insert", "r", {"k": 7, "v": 7})
                    for entry in server.oplog
                )

                writer.close()
                await writer.wait_closed()
                ins_writer.close()
                await ins_writer.wait_closed()
                await probe.close()
                await admin.close()

        asyncio.run(scenario())

    def test_recovered_server_admits_again(self):
        """After the pinned burst drains, fresh work flows normally."""

        async def scenario():
            db = seeded_db()
            async with running_server(
                db, queue_limit=1, debug_ops=True
            ) as server:
                reader, writer = await raw_connection(server.port)
                await write_frame(writer, {"op": "hello"})
                assert (await read_frame(reader))["ok"]
                await _pin_worker(writer, 0.2)
                for _ in range(100):
                    if server.admission.in_flight == 1:
                        break
                    await asyncio.sleep(0.005)

                probe = await connect(server)
                busy = await probe.request_raw(
                    {"op": "insert", "table": "r", "row": {"k": 1, "v": 1}}
                )
                assert busy["code"] == Code.BUSY

                # wait out the nap; the same connection then succeeds
                nap = await asyncio.wait_for(read_frame(reader), DEADLINE)
                assert nap["ok"]
                rid = await probe.insert("r", {"k": 2, "v": 2})
                assert rid >= 0
                assert server.admission.idle

                writer.close()
                await writer.wait_closed()
                await probe.close()

        asyncio.run(scenario())
