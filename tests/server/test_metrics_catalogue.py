"""DESIGN.md's "Server metric catalogue" table must match the registry.

Same contract as ``tests/obs/test_catalog_consistency.py`` holds for
the engine series, in both directions: a ``repro_server_*`` family
registered in code without a catalogue row fails, and so does a row
whose family no longer exists. The lint layer's RS004 additionally
requires every registered name to appear in *some* catalogue table,
so this test and the linter convict the same drift.
"""

import re
from pathlib import Path

from repro.obs.export import parse_prometheus
from repro.server.metrics import ServerMetrics

REPO = Path(__file__).resolve().parents[2]


def registry_series() -> dict[str, tuple[str, tuple[str, ...]]]:
    return {
        family.name: (family.kind, tuple(family.labelnames))
        for family in ServerMetrics().registry.families()
    }


def design_catalogue() -> dict[str, tuple[str, tuple[str, ...]]]:
    text = (REPO / "DESIGN.md").read_text()
    section = text.split("### Server metric catalogue", 1)[1]
    section = section.split("\n## ", 1)[0]
    rows = re.findall(
        r"^\|\s*`(repro_server_[a-z_]+)`\s*\|\s*([^|]+?)\s*\|\s*([^|]+?)\s*\|",
        section,
        flags=re.M,
    )
    assert rows, "DESIGN.md server metric catalogue table not found"
    catalogue: dict[str, tuple[str, tuple[str, ...]]] = {}
    for name, kind, labels in rows:
        if labels.strip() in ("—", "-"):
            label_tuple: tuple[str, ...] = ()
        else:
            label_tuple = tuple(l.strip() for l in labels.split(",") if l.strip())
        catalogue[name] = (kind, label_tuple)
    return catalogue


def test_catalogue_matches_registry_exactly():
    assert design_catalogue() == registry_series()


def test_docstring_names_the_same_series():
    """The in-code catalogue (the module docstring) must not drift."""
    doc = __import__("repro.server.metrics", fromlist=["x"]).__doc__
    documented = set(re.findall(r"``(repro_server_[a-z_]+)``", doc))
    assert documented == set(registry_series())


def test_exposition_is_valid_and_complete():
    """One touched child per family → every family present once parsed."""
    metrics = ServerMetrics()
    metrics.connections.inc()
    metrics.sessions_active.set(1)
    metrics.request("query", "ok")
    metrics.reject("busy")
    metrics.queue_depth.set(0)
    metrics.ticks.inc()
    metrics.snapshot_reads.inc()
    metrics.stage("query", "worker.exec", 0.01)
    metrics.ticker_lag.set(0.0)
    metrics.slow_requests.labels(op="query").inc()
    parsed = parse_prometheus(metrics.exposition())
    # histogram families surface as _bucket/_sum/_count samples; strip
    # the suffix back to the family name before comparing
    bases = {
        re.sub(r"_(bucket|sum|count)$", "", name) for name, _ in parsed
    }
    assert bases == set(registry_series())
