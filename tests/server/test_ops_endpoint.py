"""The ops plane speaks real HTTP and never lies to the scraper.

Every test talks to the embedded :class:`~repro.server.ops.OpsServer`
through a raw socket — actual request lines, actual headers — because
that is exactly what a Prometheus scraper or a load balancer's health
check will do. ``/metrics`` must round-trip through the strict
:func:`~repro.obs.export.parse_prometheus` oracle; ``/readyz`` must
flip to 503 the moment a drain starts.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.export import parse_prometheus

from tests.server.harness import HOST, connect, running_server, seeded_db


async def http_request(
    port: int, path: str, method: str = "GET"
) -> tuple[int, dict[str, str], str]:
    """One raw HTTP/1.0 exchange; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(HOST, port)
    writer.write(
        f"{method} {path} HTTP/1.0\r\nHost: test\r\nAccept: */*\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8")


class TestOpsEndpoint:
    def test_metrics_round_trips_the_strict_parser(self):
        async def scenario():
            db = seeded_db()
            async with running_server(db, ops_port=0) as server:
                client = await connect(server)
                try:
                    await client.insert("r", {"k": 1, "v": 1})
                    await client.query("SELECT k FROM r")
                finally:
                    await client.close()
                return await http_request(server.ops_port, "/metrics")

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert headers["content-length"] == str(len(body.encode()))
        samples = parse_prometheus(body)  # strict: raises on any bad line
        names = {name for name, _ in samples}
        assert "repro_server_requests_total" in names
        assert "repro_server_stage_seconds_count" in names
        assert (
            samples[("repro_server_requests_total", (("op", "query"), ("status", "ok")))]
            >= 1
        )

    def test_healthz_and_readyz(self):
        async def scenario():
            db = seeded_db()
            async with running_server(db, ops_port=0) as server:
                health = await http_request(server.ops_port, "/healthz")
                ready_before = await http_request(server.ops_port, "/readyz")
                await server.drain()
                ready_after = await http_request(server.ops_port, "/readyz")
                return health, ready_before, ready_after

        health, ready_before, ready_after = asyncio.run(scenario())
        assert health[0] == 200 and health[2] == "ok\n"
        assert ready_before[0] == 200 and ready_before[2] == "ready\n"
        assert ready_after[0] == 503 and ready_after[2] == "draining\n"

    def test_debug_sessions_reports_the_live_table(self):
        async def scenario():
            db = seeded_db()
            async with running_server(db, ops_port=0) as server:
                client = await connect(server)
                try:
                    await client.insert("r", {"k": 1, "v": 1})
                    await client.query("SELECT k FROM r")
                    return (
                        client.session,
                        await http_request(server.ops_port, "/debug/sessions"),
                    )
                finally:
                    await client.close()

        session_id, (status, headers, body) = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == "application/json"
        payload = json.loads(body)
        (mine,) = [s for s in payload["sessions"] if s["id"] == session_id]
        assert mine["ops"] == {"insert": 1, "query": 1}
        assert mine["in_flight"] == 0
        admission = payload["admission"]
        assert admission["limit"] == 64
        assert admission["in_flight"] == 0
        assert admission["admitted_total"] >= 2
        assert admission["draining"] is False

    def test_debug_slow_serves_the_ring(self):
        async def scenario():
            db = seeded_db()
            async with running_server(
                db, ops_port=0, slow_threshold=0.0
            ) as server:
                client = await connect(server)
                try:
                    await client.query("SELECT k FROM r")
                finally:
                    await client.close()
                return await http_request(server.ops_port, "/debug/slow")

        status, _, body = asyncio.run(scenario())
        assert status == 200
        payload = json.loads(body)
        assert payload["threshold_s"] == 0.0
        assert payload["total"] >= 1
        assert any(e["sql"] == "SELECT k FROM r" for e in payload["entries"])

    def test_debug_queries_serves_fingerprint_aggregates(self):
        async def scenario():
            db = seeded_db()
            async with running_server(db, ops_port=0) as server:
                client = await connect(server)
                try:
                    await client.query("SELECT k FROM r WHERE v > 1")
                    await client.query("SELECT k FROM r WHERE v > 2")
                    await client.query("SELECT count(*) FROM r")
                finally:
                    await client.close()
                return await http_request(server.ops_port, "/debug/queries")

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == "application/json"
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["fingerprints"] == len(payload["queries"]) >= 2
        by_template = {q["template"]: q for q in payload["queries"]}
        shared = by_template["SELECT k FROM r WHERE (v > ?)"]
        assert shared["calls"] == 2
        assert shared["kind"] == "select"
        assert shared["p95_ms"] is not None

    def test_stats_op_carries_querystats_for_admins(self):
        from repro.server.auth import AuthRegistry, Grant

        registry = AuthRegistry()
        registry.issue("t-root", Grant.of("root", admin=True))

        async def scenario():
            db = seeded_db()
            async with running_server(db, auth=registry) as server:
                client = await connect(server, token="t-root")
                try:
                    await client.query("SELECT k FROM r")
                    return await client.request({"op": "stats"})
                finally:
                    await client.close()

        response = asyncio.run(scenario())
        querystats = response["stats"]["querystats"]
        assert querystats["fingerprints"] >= 1
        assert any(
            q["template"] == "SELECT k FROM r" for q in querystats["queries"]
        )

    def test_unknown_path_and_method(self):
        async def scenario():
            db = seeded_db()
            async with running_server(db, ops_port=0) as server:
                missing = await http_request(server.ops_port, "/nope")
                posted = await http_request(server.ops_port, "/metrics", method="POST")
                return missing, posted

        missing, posted = asyncio.run(scenario())
        assert missing[0] == 404
        assert posted[0] == 405

    def test_no_ops_port_means_no_listener(self):
        async def scenario():
            db = seeded_db()
            async with running_server(db) as server:
                return server._ops

        assert asyncio.run(scenario()) is None
