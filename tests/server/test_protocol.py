"""Wire-protocol robustness and the auth decision matrix.

The framing contract: any byte sequence thrown at the listener yields
either a structured ``{"ok": false, "code": ...}`` error or a clean
close — never a traceback in the response, never a hung connection.
Hypothesis supplies the garbage; a hard ``asyncio.wait_for`` deadline
on every read is what turns "hung connection" into a test failure
instead of a hung suite.
"""

from __future__ import annotations

import asyncio
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import AuthRegistry, Code, Grant
from repro.server.protocol import (
    MAX_FRAME,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

from tests.server.harness import connect, raw_connection, running_server, seeded_db

DEADLINE = 5.0


async def _exchange_bytes(port: int, blob: bytes) -> dict | None:
    """Send raw bytes, half-close, and read the server's one answer.

    Returns the decoded error frame, or ``None`` if the server chose a
    clean close. Anything else — junk bytes back, no close — raises.
    """
    reader, writer = await raw_connection(port)
    try:
        writer.write(blob)
        await writer.drain()
        writer.write_eof()
        response = await asyncio.wait_for(read_frame(reader), DEADLINE)
        if response is not None:
            assert response["ok"] is False
            assert response["code"]
            assert "Traceback" not in response["error"]
            # and after answering a poisoned stream the server closes
            assert await asyncio.wait_for(reader.read(), DEADLINE) == b""
        return response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestMalformedFrames:
    """Deterministic probes for each documented refusal."""

    def _roundtrip(self, blob: bytes) -> dict | None:
        async def scenario():
            async with running_server(seeded_db()) as server:
                return await _exchange_bytes(server.port, blob)

        return asyncio.run(scenario())

    def test_oversized_declared_length_is_refused_from_the_header(self):
        response = self._roundtrip(struct.pack(">I", MAX_FRAME + 1))
        assert response is not None and response["code"] == Code.OVERSIZED

    def test_body_that_is_not_json(self):
        body = b"\xff\xfe not json"
        response = self._roundtrip(struct.pack(">I", len(body)) + body)
        assert response is not None and response["code"] == Code.BAD_FRAME

    def test_body_that_is_json_but_not_an_object(self):
        body = b"[1, 2, 3]"
        response = self._roundtrip(struct.pack(">I", len(body)) + body)
        assert response is not None and response["code"] == Code.BAD_FRAME

    def test_disconnect_mid_header(self):
        response = self._roundtrip(b"\x00\x00")
        assert response is not None and response["code"] == Code.BAD_FRAME

    def test_disconnect_mid_body(self):
        response = self._roundtrip(struct.pack(">I", 100) + b'{"op": "ping"')
        assert response is not None and response["code"] == Code.BAD_FRAME

    def test_object_without_an_op(self):
        response = self._roundtrip(encode_frame({"hello": "world"}))
        assert response is not None and response["code"] == Code.BAD_REQUEST

    def test_unknown_op_after_hello(self):
        async def scenario():
            async with running_server(seeded_db()) as server:
                reader, writer = await raw_connection(server.port)
                try:
                    await write_frame(writer, {"op": "hello"})
                    hello = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert hello is not None and hello["ok"]
                    await write_frame(writer, {"op": "sporulate"})
                    response = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert response is not None
                    assert response["code"] == Code.BAD_REQUEST
                    # the connection survives a merely-bad request
                    await write_frame(writer, {"op": "ping"})
                    pong = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert pong is not None and pong["ok"]
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())


class TestFuzzedFrames:
    """Hypothesis garbage: one server, many hostile connections."""

    @settings(max_examples=30, deadline=None)
    @given(blob=st.binary(min_size=0, max_size=64))
    def test_arbitrary_bytes_never_hang_or_traceback(self, blob):
        async def scenario():
            async with running_server(seeded_db()) as server:
                await _exchange_bytes(server.port, blob)

        asyncio.run(scenario())

    @settings(max_examples=30, deadline=None)
    @given(
        payload=st.dictionaries(
            st.sampled_from(["op", "sql", "table", "row", "token", "n", "id"]),
            st.one_of(
                st.none(),
                st.integers(),
                st.text(max_size=20),
                st.lists(st.integers(), max_size=3),
            ),
            max_size=4,
        )
    )
    def test_arbitrary_json_objects_get_structured_answers(self, payload):
        async def scenario():
            async with running_server(seeded_db()) as server:
                reader, writer = await raw_connection(server.port)
                try:
                    await write_frame(writer, payload)
                    response = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert response is not None
                    if not response.get("ok"):
                        assert response["code"]
                        assert "Traceback" not in response["error"]
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())

    # the full ping frame is 17 bytes; every strictly shorter prefix
    # is a truncation
    @settings(max_examples=20, deadline=None)
    @given(cut=st.integers(min_value=1, max_value=16))
    def test_truncated_valid_frame_at_every_offset(self, cut):
        full = encode_frame({"op": "ping"})
        assert cut < len(full)
        blob = full[:cut]

        async def scenario():
            async with running_server(seeded_db()) as server:
                response = await _exchange_bytes(server.port, blob)
                # a cut inside the frame must produce BAD_FRAME; a cut
                # exactly at the header boundary (empty body declared? no —
                # cut < full length always truncates) never parses clean
                if response is not None:
                    assert response["code"] == Code.BAD_FRAME

        asyncio.run(scenario())


class TestCodec:
    def test_roundtrip(self):
        payload = {"op": "query", "sql": "SELECT 1", "id": "x"}
        assert decode_frame(encode_frame(payload)[4:]) == payload

    def test_encode_refuses_oversized_bodies(self):
        with pytest.raises(FrameError) as excinfo:
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})
        assert excinfo.value.code == Code.OVERSIZED

    def test_oversized_response_is_caught_server_side(self):
        """A result too big for one frame is an error, not a dead pipe."""

        async def scenario():
            db = seeded_db()
            blob = "y" * 2048
            for k in range(1024):
                db.insert("r", {"k": k, "v": 1})
            async with running_server(db) as server:
                client = await connect(server)
                try:
                    # the response (1024 rows) fits; this checks big-but-ok
                    response = await client.query("SELECT k FROM r")
                    assert len(response["rows"]) == 1024
                finally:
                    await client.close()

        asyncio.run(scenario())


def _auth_db():
    db = seeded_db(seed=5)
    db.insert("r", {"k": 1, "v": 10})
    return db


def _registry() -> AuthRegistry:
    registry = AuthRegistry()
    registry.issue("t-reader", Grant.of("reader", r="read"))
    registry.issue("t-eater", Grant.of("eater", r="read,insert,consume"))
    registry.issue("t-admin", Grant.of("root", admin=True))
    registry.issue(
        "t-expired", Grant.of("ghost", r="read,consume", expires_at=0.0)
    )
    return registry


class TestAuthMatrix:
    """token × operation → exact structured outcome."""

    CASES = [
        # (token, op payload, expected code or None for ok)
        (None, {"op": "query", "sql": "SELECT k FROM r"}, Code.AUTH_REQUIRED),
        ("t-bogus", {"op": "query", "sql": "SELECT k FROM r"}, Code.AUTH_FAILED),
        ("t-expired", {"op": "query", "sql": "SELECT k FROM r"}, Code.AUTH_EXPIRED),
        ("t-reader", {"op": "query", "sql": "SELECT k FROM r"}, None),
        (
            "t-reader",
            {"op": "query", "sql": "SELECT k FROM r", "consistency": "snapshot"},
            None,
        ),
        (
            "t-reader",
            {"op": "insert", "table": "r", "row": {"k": 9, "v": 9}},
            Code.DENIED,
        ),
        (
            "t-reader",
            {"op": "query", "sql": "CONSUME SELECT k FROM r WHERE v < 5"},
            Code.DENIED,
        ),
        ("t-reader", {"op": "tick"}, Code.DENIED),
        ("t-eater", {"op": "query", "sql": "CONSUME SELECT k FROM r WHERE v < 5"}, None),
        (
            # total consume needs admin, not just consume rights
            "t-eater",
            {"op": "query", "sql": "CONSUME SELECT k FROM r"},
            Code.DENIED,
        ),
        ("t-eater", {"op": "sessions"}, Code.DENIED),
        ("t-admin", {"op": "query", "sql": "CONSUME SELECT k FROM r"}, None),
        ("t-admin", {"op": "tick"}, None),
        ("t-admin", {"op": "sessions"}, None),
        (
            # a bare DELETE wipes the extent: same admin bar as a
            # total consume, not just the per-table consume right
            "t-eater",
            {"op": "query", "sql": "DELETE FROM r"},
            Code.DENIED,
        ),
        ("t-eater", {"op": "query", "sql": "DELETE FROM r WHERE v < 5"}, None),
        ("t-admin", {"op": "query", "sql": "DELETE FROM r"}, None),
        # stats exposes every statement shape the server has run, so it
        # sits behind the same admin bar as the session table
        ("t-reader", {"op": "stats"}, Code.DENIED),
        ("t-eater", {"op": "stats"}, Code.DENIED),
        ("t-admin", {"op": "stats"}, None),
    ]

    def test_matrix(self):
        async def scenario():
            for token, payload, expected in self.CASES:
                async with running_server(_auth_db(), auth=_registry()) as server:
                    reader, writer = await raw_connection(server.port)
                    try:
                        hello: dict = {"op": "hello"}
                        if token is not None:
                            hello["token"] = token
                        await write_frame(writer, hello)
                        response = await asyncio.wait_for(
                            read_frame(reader), DEADLINE
                        )
                        assert response is not None
                        if response["ok"]:
                            await write_frame(writer, payload)
                            response = await asyncio.wait_for(
                                read_frame(reader), DEADLINE
                            )
                            assert response is not None
                        if expected is None:
                            assert response["ok"], (token, payload, response)
                        else:
                            assert response["ok"] is False, (token, payload)
                            assert response["code"] == expected, (
                                token,
                                payload,
                                response,
                            )
                    finally:
                        writer.close()
                        await writer.wait_closed()

        asyncio.run(scenario())

    def test_expiry_is_checked_at_use_time_not_hello(self):
        """A token that dies mid-session loses rights on the next frame."""

        async def scenario():
            registry = AuthRegistry()
            registry.issue(
                "t-brief", Grant.of("brief", r="read", admin=False, expires_at=2.0)
            )
            registry.issue("t-admin", Grant.of("root", admin=True))
            async with running_server(_auth_db(), auth=registry) as server:
                client = await connect(server, token="t-brief")
                admin = await connect(server, token="t-admin")
                try:
                    ok_response = await client.query("SELECT k FROM r")
                    assert ok_response["ok"]
                    await admin.tick(2)  # clock reaches the expiry tick
                    raw = await client.request_raw(
                        {"op": "query", "sql": "SELECT k FROM r"}
                    )
                    assert raw["ok"] is False
                    assert raw["code"] == Code.AUTH_EXPIRED
                finally:
                    await client.close()
                    await admin.close()

        asyncio.run(scenario())

    def test_denied_consume_leaves_no_trace_in_the_engine(self):
        """Plan-time refusal means refusal *before* execution."""

        async def scenario():
            db = _auth_db()
            async with running_server(db, auth=_registry()) as server:
                client = await connect(server, token="t-reader")
                try:
                    raw = await client.request_raw(
                        {"op": "query", "sql": "CONSUME SELECT k FROM r WHERE v < 99"}
                    )
                    assert raw["code"] == Code.DENIED
                finally:
                    await client.close()
                assert len(db.tables["r"]) == 1  # the row is still there
                assert all(entry[0] != "query" for entry in server.oplog)

        asyncio.run(scenario())

    def test_invalid_consume_is_refused_by_the_analyzer(self):
        """The Tier-B gate: an unsatisfiable consume never executes."""

        async def scenario():
            db = _auth_db()
            async with running_server(db, auth=_registry()) as server:
                client = await connect(server, token="t-eater")
                try:
                    raw = await client.request_raw(
                        {
                            "op": "query",
                            # type mismatch parses and plans fine, so
                            # only the Tier-B analyzer can convict it
                            "sql": "CONSUME SELECT k FROM r WHERE v > 'ten'",
                        }
                    )
                    assert raw["ok"] is False
                    assert raw["code"] == Code.QUERY_ERROR
                    assert "analyzer refused" in raw["error"]
                finally:
                    await client.close()

        asyncio.run(scenario())


class TestTotalDeleteGate:
    """DELETE is held to the total-extent bar, same as CONSUME."""

    def test_bare_delete_is_refused_before_execution(self):
        async def scenario():
            db = _auth_db()
            async with running_server(db, auth=_registry()) as server:
                client = await connect(server, token="t-eater")
                try:
                    raw = await client.request_raw(
                        {"op": "query", "sql": "DELETE FROM r"}
                    )
                    assert raw["ok"] is False
                    assert raw["code"] == Code.DENIED
                    assert "admin grant" in raw["error"]
                finally:
                    await client.close()
                assert len(db.tables["r"]) == 1  # nothing was deleted
                assert all(entry[0] != "query" for entry in server.oplog)

        asyncio.run(scenario())

    def test_tautological_where_is_still_total(self):
        """f ∈ [0, 1] is an invariant, so ``f >= 0.0`` matches every row.

        The classifier, not just the missing WHERE clause, is what
        convicts a delete — a tautology disguised as a restriction gets
        the same refusal as the bare statement.
        """

        async def scenario():
            db = _auth_db()
            async with running_server(db, auth=_registry()) as server:
                client = await connect(server, token="t-eater")
                try:
                    raw = await client.request_raw(
                        {"op": "query", "sql": "DELETE FROM r WHERE f >= 0.0"}
                    )
                    assert raw["ok"] is False
                    assert raw["code"] == Code.DENIED
                finally:
                    await client.close()
                assert len(db.tables["r"]) == 1

        asyncio.run(scenario())

    def test_partial_delete_needs_only_consume_rights(self):
        async def scenario():
            db = _auth_db()
            async with running_server(db, auth=_registry()) as server:
                client = await connect(server, token="t-eater")
                try:
                    response = await client.query("DELETE FROM r WHERE v = 10")
                    assert response["ok"]
                finally:
                    await client.close()
                assert len(db.tables["r"]) == 0

        asyncio.run(scenario())

    def test_admin_may_run_a_total_delete(self):
        async def scenario():
            db = _auth_db()
            async with running_server(db, auth=_registry()) as server:
                client = await connect(server, token="t-admin")
                try:
                    response = await client.query("DELETE FROM r")
                    assert response["ok"]
                finally:
                    await client.close()
                assert len(db.tables["r"]) == 0

        asyncio.run(scenario())


class TestOversizedResponse:
    """A result too big for max_frame yields OVERSIZED, not a dead pipe."""

    def test_structured_error_and_surviving_connection(self):
        async def scenario():
            db = seeded_db()
            for k in range(600):
                db.insert("r", {"k": k, "v": k})
            async with running_server(db, max_frame=2048) as server:
                client = await connect(server)
                try:
                    raw = await client.request_raw(
                        {"op": "query", "sql": "SELECT k, v FROM r"}
                    )
                    assert raw["ok"] is False
                    assert raw["code"] == Code.OVERSIZED
                    assert "Traceback" not in raw["error"]
                    # the connection survives the oversized answer
                    pong = await client.request({"op": "ping"})
                    assert pong["ok"]
                finally:
                    await client.close()

        asyncio.run(scenario())


class TestRehello:
    """A second hello replaces the session instead of leaking the first."""

    def test_second_hello_closes_the_first_session(self):
        async def scenario():
            async with running_server(seeded_db()) as server:
                reader, writer = await raw_connection(server.port)
                try:
                    await write_frame(writer, {"op": "hello"})
                    first = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert first is not None and first["ok"]
                    await write_frame(writer, {"op": "hello"})
                    second = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert second is not None and second["ok"]
                    assert second["session"] != first["session"]
                    assert server.sessions.active == 1
                    live = [s["id"] for s in server.sessions.describe()]
                    assert live == [second["session"]]
                finally:
                    writer.close()
                    await writer.wait_closed()
                for _ in range(200):  # the close path reaps the survivor
                    if server.sessions.active == 0:
                        break
                    await asyncio.sleep(0.01)
                assert server.sessions.active == 0

        asyncio.run(scenario())

    def test_failed_rehello_keeps_the_old_session(self):
        async def scenario():
            async with running_server(_auth_db(), auth=_registry()) as server:
                reader, writer = await raw_connection(server.port)
                try:
                    await write_frame(writer, {"op": "hello", "token": "t-reader"})
                    first = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert first is not None and first["ok"]
                    await write_frame(writer, {"op": "hello", "token": "t-wrong"})
                    second = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert second is not None and second["ok"] is False
                    assert second["code"] == Code.AUTH_FAILED
                    assert server.sessions.active == 1
                    # and the original session still answers
                    await write_frame(
                        writer, {"op": "query", "sql": "SELECT k FROM r"}
                    )
                    answer = await asyncio.wait_for(read_frame(reader), DEADLINE)
                    assert answer is not None and answer["ok"]
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())


class TestGrantSpecParsing:
    """--grant right names are validated at startup, not at use time."""

    def test_typoed_right_fails_at_startup(self):
        from repro.serve import _parse_grant

        with pytest.raises(SystemExit) as excinfo:
            _parse_grant("tok:ana:orders=raed+consume")
        assert "raed" in str(excinfo.value)

    def test_valid_spec_round_trips(self):
        from repro.serve import _parse_grant

        token, grant = _parse_grant("tok:ana:orders=read+consume:admin:expires=9")
        assert token == "tok"
        assert grant.principal == "ana"
        assert grant.rights["orders"] == frozenset({"read", "consume"})
        assert grant.admin
        assert grant.expires_at == 9.0
