"""Load-generator smoke: the benchmark harness itself must not rot.

A short closed-loop run (small connection count, ~a second) proves the
full path — in-process server, client mix, latency capture, snapshot
write — and that the emitted ``BENCH_server.json`` speaks the exact
payload dialect ``repro.bench regress`` gates on. The 1k-connection
number lives in CI's ``server-smoke`` job and the committed baseline,
not here; a unit suite has no business pinning ulimits.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.bench.regression import compare
from repro.bench.snapshots import SNAPSHOT_VERSION
from repro.obs.tracing import validate_trace
from repro.server.loadgen import LoadgenConfig, LoadgenReport, run_loadgen


def _short_run() -> LoadgenReport:
    return asyncio.run(
        run_loadgen(
            LoadgenConfig(
                connections=16,
                duration=1.0,
                tick_interval=0.1,
                seed_rows=100,
            )
        )
    )


class TestLoadgen:
    def test_smoke_run_completes_cleanly(self):
        report = _short_run()
        assert report.requests > 0
        assert report.errors == 0
        assert report.qps > 0
        assert 0 < report.p50_s <= report.p95_s <= report.p99_s
        # the background ticker really drove Law 1 during the run
        assert report.ticks > 0

    def test_snapshot_payload_feeds_the_regression_gate(self, tmp_path):
        report = _short_run()
        current = tmp_path / "current"
        path = report.write_snapshot(current)
        payload = json.loads(path.read_text())
        assert payload["version"] == SNAPSHOT_VERSION
        assert payload["suite"] == "server"
        (entry,) = payload["benchmarks"]
        assert entry["fullname"] == "bench_server.py::test_server_request_latency"
        assert entry["p50_s"] > 0
        assert entry["connections"] == 16

        # self-compare: same file as baseline and current → no regression
        baseline = tmp_path / "baseline"
        report.write_snapshot(baseline)
        result = compare(baseline, current)
        assert not result.regressions
        assert not result.added and not result.removed


@pytest.fixture(scope="module")
def traced_report() -> LoadgenReport:
    """One shared traced run (with the mid-run scrape) for the class."""
    return asyncio.run(
        run_loadgen(
            LoadgenConfig(
                connections=16,
                duration=1.0,
                tick_interval=0.1,
                seed_rows=100,
                trace=True,
                trace_sample=1.0,
                scrape_ops=True,
            )
        )
    )


class TestTracedLoadgen:
    def test_stage_quantiles_cover_the_request_path(self, traced_report):
        assert traced_report.errors == 0
        stages = traced_report.stages
        for stage in ("decode", "admission.wait", "policy.analyze", "worker.exec", "reply"):
            assert stage in stages, stage
            assert stages[stage]["count"] >= 1
            assert 0 <= stages[stage]["p50_s"] <= stages[stage]["p99_s"]
        # the mid-run scrape went through the strict parser
        assert traced_report.scraped_samples > 0
        # ... and /debug/queries saw the mix's statement fingerprints
        assert traced_report.scraped_fingerprints > 0

    def test_bench_entries_gain_per_stage_rows(self, traced_report):
        entries = {e["fullname"]: e for e in traced_report.bench_entries()}
        assert "bench_server.py::test_server_request_latency" in entries
        wait = entries["bench_server.py::test_server_stage_admission_wait"]
        assert wait["p50_s"] >= 0
        assert wait["rounds"] >= 1
        assert "bench_server.py::test_server_stage_worker_exec" in entries

    def test_trace_jsonl_is_structurally_valid(self, traced_report, tmp_path):
        path = tmp_path / "TRACE_server.jsonl"
        written = traced_report.write_trace(path)
        assert written > 0
        assert validate_trace(path) == []
        # every strong-op trace carries the full five-stage tree
        spans = [json.loads(line) for line in path.read_text().splitlines()]
        by_trace: dict = {}
        for span in spans:
            by_trace.setdefault(span["trace_id"], []).append(span)
        strong = [
            group
            for group in by_trace.values()
            if any(s["name"] == "worker.exec" for s in group)
        ]
        assert strong, "no strong-op traces sampled"
        for group in strong:
            names = {s["name"] for s in group}
            assert {
                "frame.decode",
                "admission.wait",
                "policy.analyze",
                "worker.exec",
                "reply",
            } <= names
            assert sum(1 for s in group if s["parent_id"] is None) == 1

    def test_untraced_run_keeps_the_single_legacy_entry(self):
        report = _short_run()
        assert report.stages == {}
        assert report.trace_spans == []
        assert report.scraped_samples == -1
        assert report.scraped_fingerprints == -1
        (entry,) = report.bench_entries()
        assert entry["fullname"] == "bench_server.py::test_server_request_latency"
