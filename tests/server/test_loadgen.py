"""Load-generator smoke: the benchmark harness itself must not rot.

A short closed-loop run (small connection count, ~a second) proves the
full path — in-process server, client mix, latency capture, snapshot
write — and that the emitted ``BENCH_server.json`` speaks the exact
payload dialect ``repro.bench regress`` gates on. The 1k-connection
number lives in CI's ``server-smoke`` job and the committed baseline,
not here; a unit suite has no business pinning ulimits.
"""

from __future__ import annotations

import asyncio
import json

from repro.bench.regression import compare
from repro.bench.snapshots import SNAPSHOT_VERSION
from repro.server.loadgen import LoadgenConfig, LoadgenReport, run_loadgen


def _short_run() -> LoadgenReport:
    return asyncio.run(
        run_loadgen(
            LoadgenConfig(
                connections=16,
                duration=1.0,
                tick_interval=0.1,
                seed_rows=100,
            )
        )
    )


class TestLoadgen:
    def test_smoke_run_completes_cleanly(self):
        report = _short_run()
        assert report.requests > 0
        assert report.errors == 0
        assert report.qps > 0
        assert 0 < report.p50_s <= report.p95_s <= report.p99_s
        # the background ticker really drove Law 1 during the run
        assert report.ticks > 0

    def test_snapshot_payload_feeds_the_regression_gate(self, tmp_path):
        report = _short_run()
        current = tmp_path / "current"
        path = report.write_snapshot(current)
        payload = json.loads(path.read_text())
        assert payload["version"] == SNAPSHOT_VERSION
        assert payload["suite"] == "server"
        (entry,) = payload["benchmarks"]
        assert entry["fullname"] == "bench_server.py::test_server_request_latency"
        assert entry["p50_s"] > 0
        assert entry["connections"] == 16

        # self-compare: same file as baseline and current → no regression
        baseline = tmp_path / "baseline"
        report.write_snapshot(baseline)
        result = compare(baseline, current)
        assert not result.regressions
        assert not result.added and not result.removed
