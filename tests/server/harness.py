"""Shared helpers for the server suite: in-process servers, raw sockets.

Every test here runs a real :class:`~repro.server.server.FungusServer`
on an OS-assigned loopback port inside ``asyncio.run`` — no
pytest-asyncio, no mocks of the transport. ``running_server`` owns the
lifecycle so a failing assertion can't leak a listener (or the engine
worker thread) into the next test.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Any, AsyncIterator

from repro.core.db import FungusDB
from repro.fungi import ExponentialDecayFungus, LinearDecayFungus
from repro.server import FungusClient, FungusServer, ServerConfig
from repro.storage.schema import Schema

HOST = "127.0.0.1"


@asynccontextmanager
async def running_server(
    db: FungusDB, **config: Any
) -> AsyncIterator[FungusServer]:
    """Start a server on port 0, yield it, always stop it.

    Every served database runs with the thread-sanitizer probe armed:
    a table mutation off the engine worker raises at the offending
    call, so any ownership bug fails the suite loudly. ``start()``
    binds the probe to the worker, which is why seeding the db on the
    test's main thread beforehand stays legal.
    """
    db.enable_race_probe()
    server = FungusServer(db, ServerConfig(host=HOST, port=0, **config))
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


def seeded_db(seed: int = 7, fungus: str = "linear") -> FungusDB:
    """A FungusDB with one decaying table ``r(k int, v int)``.

    The fungus is deterministic (linear or exponential) so the op-log
    replay oracle can demand bit-identical freshness.
    """
    db = FungusDB(seed=seed)
    if fungus == "linear":
        spore = LinearDecayFungus(rate=0.1)
    elif fungus == "exponential":
        spore = ExponentialDecayFungus(half_life=3.0, evict_below=0.05)
    else:
        raise ValueError(f"unknown fixture fungus {fungus!r}")
    db.create_table("r", Schema.of(k="int", v="int"), fungus=spore)
    return db


async def raw_connection(
    port: int,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """A bare stream pair, for tests that speak (or corrupt) the wire."""
    return await asyncio.open_connection(HOST, port)


async def connect(server: FungusServer, token: str | None = None) -> FungusClient:
    return await FungusClient.connect(HOST, server.port, token=token)


def table_state(db: FungusDB, name: str) -> list[tuple[Any, ...]]:
    """Every live row of ``name`` as (t, f, *attrs), insertion order.

    This is the whole data state of a decaying relation — the replay
    oracle compares it with plain ``==`` so floats must match bit for
    bit, not approximately.
    """
    storage = db.tables[name].storage
    rows = storage.live_list()
    columns = [storage.column_values(col) for col in storage.schema.names]
    assert all(len(col) == len(rows) for col in columns)
    return [tuple(col[i] for col in columns) for i in range(len(rows))]


def replay_oplog(
    oplog: list[tuple[Any, ...]], seed: int, fungus: str = "linear"
) -> FungusDB:
    """Re-execute a server op log single-threaded into a fresh engine."""
    db = seeded_db(seed=seed, fungus=fungus)
    for entry in oplog:
        if entry[0] == "insert":
            _, table, row = entry
            db.insert(table, row)
        elif entry[0] == "query":
            db.query(entry[1])
        elif entry[0] == "tick":
            db.tick(entry[1])
        else:  # pragma: no cover - corrupt log means a server bug
            raise AssertionError(f"unknown oplog entry {entry!r}")
    return db
