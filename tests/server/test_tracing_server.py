"""End-to-end request tracing: the span tree survives the wire.

The tentpole contract, verified from the outside in: a traced client
mints a W3C-shaped ``trace`` field, the server continues it, and every
request leaves a single-rooted tree of stage spans — decode, queue
wait, policy, worker execution, reply — that the structural oracle
:func:`~repro.obs.tracing.validate_spans` accepts. Malformed trace
fields must *never* refuse a request (Hypothesis hammers the parser),
and a mid-run checkpoint restore onto the same tracer must not recycle
span ids.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.fungi import LinearDecayFungus
from repro.obs.export import parse_prometheus
from repro.obs.tracing import TraceContext, Tracer, validate_spans
from repro.server.protocol import read_frame, write_frame

from tests.server.harness import (
    HOST,
    connect,
    raw_connection,
    running_server,
    seeded_db,
)

#: every strong op must produce at least these stage spans
STRONG_STAGES = {"frame.decode", "admission.wait", "policy.analyze", "worker.exec", "reply"}


def _traced_db(seed: int = 7) -> tuple:
    db = seeded_db(seed=seed)
    tracer = Tracer()
    db.tracer = tracer
    return db, tracer


def _by_trace(tracer: Tracer) -> dict:
    traces: dict = {}
    for span in tracer.to_dicts():
        traces.setdefault(span["trace_id"], []).append(span)
    return traces


class TestTraceContext:
    def test_roundtrip(self):
        ctx = TraceContext("ab" * 16, "cd" * 8)
        assert TraceContext.parse(ctx.to_traceparent()) == ctx

    def test_rejects_malformed(self):
        bad = [
            None,
            42,
            "",
            "00-abc-def-01",
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "ff-" + "a" * 32 + "-" + "1" * 16 + "-01",  # forbidden version
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # zero span id
            "00-" + "A" * 32 + "-" + "1" * 16 + "-01",  # uppercase
            "00-" + "a" * 32 + "-" + "1" * 16,          # three parts
        ]
        for value in bad:
            assert TraceContext.parse(value) is None, value

    @given(st.one_of(st.none(), st.integers(), st.floats(), st.text(max_size=80)))
    @settings(max_examples=200, deadline=None)
    def test_parse_never_raises(self, value):
        parsed = TraceContext.parse(value)
        if parsed is not None:
            # anything accepted must round-trip through the wire form
            assert TraceContext.parse(parsed.to_traceparent()) == parsed

    @given(
        trace_id=st.text(alphabet="0123456789abcdef", min_size=32, max_size=32),
        span_id=st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_parse_accepts_all_wellformed(self, trace_id, span_id):
        value = f"00-{trace_id}-{span_id}-01"
        parsed = TraceContext.parse(value)
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            assert parsed is None
        else:
            assert parsed == TraceContext(trace_id, span_id)


class TestEndToEnd:
    def test_strong_query_leaves_a_five_stage_tree(self):
        async def scenario():
            db, tracer = _traced_db()
            async with running_server(db) as server:
                client = await connect(server)
                client.tracer = tracer  # share the in-process tracer
                try:
                    await client.insert("r", {"k": 1, "v": 10})
                    await client.query("SELECT k FROM r")
                finally:
                    await client.close()
            return tracer

        tracer = asyncio.run(scenario())
        spans = tracer.to_dicts()
        assert validate_spans(spans) == []
        roots = [
            s for s in spans
            if s["name"] == "server.request" and s["attrs"].get("op") == "query"
        ]
        assert len(roots) == 1
        (root,) = roots
        tree = [s for s in spans if s["trace_id"] == root["trace_id"]]
        # a single tree: exactly one root in this trace
        assert sum(1 for s in tree if s["parent_id"] is None) == 1
        names = {s["name"] for s in tree}
        assert STRONG_STAGES <= names
        # the engine's own stack-based span nested under worker.exec
        worker = next(s for s in tree if s["name"] == "worker.exec")
        engine = [s for s in tree if s["parent_id"] == worker["span_id"]]
        assert "query" in {s["name"] for s in engine}
        # client root annotated onto the server root, not grafted into it
        assert root["attrs"]["trace"]
        assert root["attrs"]["remote_parent"]

    def test_snapshot_read_traces_loop_side_stages(self):
        async def scenario():
            db, tracer = _traced_db()
            async with running_server(db) as server:
                client = await connect(server)
                client.tracer = tracer
                try:
                    await client.insert("r", {"k": 1, "v": 10})
                    await client.tick(1)
                    await client.query("SELECT k FROM r", consistency="snapshot")
                finally:
                    await client.close()
            return tracer

        tracer = asyncio.run(scenario())
        spans = tracer.to_dicts()
        assert validate_spans(spans) == []
        read = next(s for s in spans if s["name"] == "snapshot.read")
        root = next(s for s in spans if s["span_id"] == read["parent_id"])
        assert root["name"] == "server.request"
        assert read["attrs"]["tick"] == 1.0
        assert read["attrs"]["snapshot_rows"] >= 1

    def test_garbage_and_missing_trace_mint_server_roots(self):
        async def scenario():
            db, tracer = _traced_db()
            results = []
            async with running_server(db) as server:
                reader, writer = await raw_connection(server.port)
                await write_frame(writer, {"op": "hello"})
                assert (await read_frame(reader))["ok"]
                for trace in (
                    "not-a-traceparent",
                    "00-zz-zz-01",
                    12345,
                    {"nested": "junk"},
                    "00-" + "0" * 32 + "-" + "0" * 16 + "-01",
                    None,  # sentinel: omit the field entirely
                ):
                    payload = {"op": "ping"}
                    if trace is not None:
                        payload["trace"] = trace
                    await write_frame(writer, payload)
                    results.append(await read_frame(reader))
                writer.close()
                await writer.wait_closed()
            return tracer, results

        tracer, results = asyncio.run(scenario())
        assert all(r["ok"] for r in results)
        roots = [s for s in tracer.to_dicts() if s["name"] == "server.request"]
        pings = [s for s in roots if s["attrs"].get("op") == "ping"]
        assert len(pings) == 6
        # none of the garbage linked: every root is server-minted, bare
        assert all("trace" not in s["attrs"] for s in pings)
        assert validate_spans(tracer.to_dicts()) == []

    def test_traced_consume_lands_in_death_provenance(self):
        async def scenario():
            db, tracer = _traced_db(seed=9)
            forensics = db.enable_forensics()
            async with running_server(db) as server:
                client = await connect(server)  # s1
                actor = await connect(server)   # s2
                actor.tracer = tracer
                try:
                    for k in range(3):
                        await client.insert("r", {"k": k, "v": k})
                    await actor.query("CONSUME SELECT k FROM r WHERE v < 2")
                finally:
                    await client.close()
                    await actor.close()
            return tracer, forensics

        tracer, forensics = asyncio.run(scenario())
        root = next(
            s for s in tracer.to_dicts()
            if s["name"] == "server.request" and s["attrs"].get("op") == "query"
        )
        trace_id = root["attrs"]["trace"]
        consumed = [r for r in forensics.deaths("r") if r.cause == "consumed"]
        assert len(consumed) == 2
        for record in consumed:
            assert record.query.endswith(f"@s2#{trace_id}"), record.query


class TestTelemetry:
    def test_stage_histograms_fill_even_untraced(self):
        async def scenario():
            db = seeded_db()  # NULL_TRACER: spans off, timing still on
            async with running_server(db) as server:
                client = await connect(server)
                try:
                    await client.insert("r", {"k": 1, "v": 1})
                    await client.query("SELECT k FROM r")
                finally:
                    await client.close()
                return server.metrics.exposition()

        samples = parse_prometheus(asyncio.run(scenario()))

        def count(op, stage):
            return samples.get(
                (
                    "repro_server_stage_seconds_count",
                    (("op", op), ("stage", stage)),
                ),
                0.0,
            )

        for stage in ("decode", "admission.wait", "policy.analyze", "worker.exec", "reply"):
            assert count("query", stage) >= 1, stage
        assert count("insert", "worker.exec") >= 1

    def test_slow_log_distills_over_threshold_requests(self):
        async def scenario():
            db, tracer = _traced_db()
            async with running_server(db, slow_threshold=0.0) as server:
                client = await connect(server)
                client.tracer = tracer
                try:
                    await client.insert("r", {"k": 1, "v": 1})
                    await client.query("SELECT k FROM r")
                    await client.query("CONSUME SELECT k FROM r WHERE v < 99")
                finally:
                    await client.close()
                return server.slow_log, server.metrics.exposition()

        slow_log, exposition = asyncio.run(scenario())
        assert slow_log.total >= 3
        entry = next(
            e for e in slow_log.entries() if e["sql"] == "SELECT k FROM r"
        )
        assert entry["op"] == "query"
        assert entry["principal"] == "anonymous"
        assert entry["duration_s"] > 0
        assert "worker.exec" in entry["stages"]
        assert entry["trace"]  # the request was traced
        assert entry["verdict"] is None  # plain SELECT: no Tier-B verdict
        consume = next(
            e for e in slow_log.entries() if (e["sql"] or "").startswith("CONSUME")
        )
        assert isinstance(consume["verdict"], str)  # the EXPLAIN CONSUME verdict
        samples = parse_prometheus(exposition)
        assert samples[("repro_server_slow_requests_total", (("op", "query"),))] >= 1

    def test_slow_log_ring_is_bounded(self):
        async def scenario():
            db = seeded_db()
            async with running_server(
                db, slow_threshold=0.0, slow_log_size=4
            ) as server:
                client = await connect(server)
                try:
                    for k in range(10):
                        await client.insert("r", {"k": k, "v": k})
                finally:
                    await client.close()
                return server.slow_log

        slow_log = asyncio.run(scenario())
        assert slow_log.total >= 10
        assert len(slow_log.entries()) == 4


class TestSessionsOp:
    def test_sessions_report_per_op_counters(self):
        async def scenario():
            db = seeded_db()
            async with running_server(db) as server:
                client = await connect(server)
                try:
                    await client.insert("r", {"k": 1, "v": 1})
                    await client.insert("r", {"k": 2, "v": 2})
                    await client.query("SELECT k FROM r")
                    response = await client.request({"op": "sessions"})
                finally:
                    await client.close()
            return client.session, response["sessions"]

        session_id, sessions = asyncio.run(scenario())
        (mine,) = [s for s in sessions if s["id"] == session_id]
        assert mine["ops"] == {"insert": 2, "query": 1, "sessions": 1}
        assert mine["requests"] == 4
        assert mine["in_flight"] == 0
        assert mine["last_activity"] == 0.0  # logical clock never ticked


class TestCheckpointRestore:
    def test_traces_survive_restore_without_id_collisions(self, tmp_path):
        tracer = Tracer()

        async def serve_once(db, ticks: int):
            async with running_server(db) as server:
                client = await connect(server)
                client.tracer = tracer
                try:
                    await client.insert("r", {"k": ticks, "v": ticks})
                    if ticks:
                        await client.tick(ticks)
                    await client.query("SELECT k FROM r")
                finally:
                    await client.close()

        db = seeded_db(seed=3)
        db.tracer = tracer
        asyncio.run(serve_once(db, ticks=1))

        save_checkpoint(db, tmp_path)
        restored = load_checkpoint(
            tmp_path, fungi={"r": LinearDecayFungus(rate=0.1)}, tracer=tracer
        )
        asyncio.run(serve_once(restored, ticks=0))

        spans = tracer.to_dicts()
        assert validate_spans(spans) == []  # includes span-id uniqueness
        names = [s["name"] for s in spans]
        assert "checkpoint.save" in names
        assert "checkpoint.restore" in names
        # traced requests on both sides of the restore
        assert names.count("server.request") >= 6
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids))
