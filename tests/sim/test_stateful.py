"""Hypothesis stateful testing: the model-checking layer.

Hypothesis drives an arbitrary interleaving of inserts, ticks,
queries, consumes, pins, checkpoint/restore cycles and faults through
the differential :class:`Simulator`; any divergence raises and
Hypothesis shrinks the rule sequence to a minimal counterexample —
an independent, adversarial complement to the seeded schedules of
``python -m repro.sim``.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.sim.driver import Simulator
from repro.sim.scheduler import Op, SimConfig, SimPredicate

TABLES = st.sampled_from(["melon", "cheddar", "brie", "cellar"])

PREDICATES = st.one_of(
    st.builds(
        SimPredicate,
        column=st.just("v"),
        op=st.sampled_from(["<", "<=", ">", ">=", "="]),
        value=st.integers(min_value=0, max_value=99),
    ),
    st.builds(
        SimPredicate,
        column=st.just("f"),
        op=st.sampled_from(["<", "<=", ">", ">="]),
        value=st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(
            lambda x: round(x, 2)
        ),
    ),
)


class FungusDifferentialMachine(RuleBasedStateMachine):
    """Every rule applies one op to both systems and diffs them."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator(SimConfig(seed=0, steps=0))
        self.index = 0

    def _do(self, op: Op) -> None:
        diverged = self.sim.step(self.index, op)
        self.index += 1
        assert not diverged, self.sim.report.divergences[-1].describe()

    @rule(table=TABLES, values=st.lists(st.integers(0, 99), min_size=1, max_size=4))
    def insert(self, table, values):
        self._do(Op("insert", table, values))

    @rule(ticks=st.integers(min_value=1, max_value=3))
    def tick(self, ticks):
        self._do(Op("tick", payload=ticks))

    @rule(table=TABLES, pred=PREDICATES)
    def query(self, table, pred):
        self._do(Op("query", table, pred))

    @rule(table=TABLES, pred=PREDICATES)
    def consume(self, table, pred):
        self._do(Op("consume", table, pred))

    @rule(table=TABLES, ordinal=st.integers(min_value=0, max_value=63))
    def pin(self, table, ordinal):
        self._do(Op("pin", table, ordinal))

    @rule(table=TABLES, ordinal=st.integers(min_value=0, max_value=63))
    def unpin(self, table, ordinal):
        self._do(Op("unpin", table, ordinal))

    @rule()
    def checkpoint_restore(self):
        self._do(Op("checkpoint_restore"))

    @rule()
    def fault_subscriber(self):
        self._do(Op("fault_subscriber"))

    @rule()
    def fault_drop_tick(self):
        self._do(Op("fault_drop_tick"))

    @rule()
    def fault_double_tick(self):
        self._do(Op("fault_double_tick"))

    @rule()
    def fault_torn_checkpoint(self):
        self._do(Op("fault_torn_checkpoint"))

    @rule(table=TABLES, mode=st.sampled_from(["mid-line", "line-boundary"]))
    def fault_truncated_snapshot(self, table, mode):
        self._do(Op("fault_truncated_snapshot", table, mode))

    def teardown(self):
        self.sim.close()


FungusDifferentialMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)

TestFungusDifferential = FungusDifferentialMachine.TestCase
