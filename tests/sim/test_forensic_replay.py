"""Forensic replay in the simulation harness.

With ``forensics=True`` the differential driver attaches the lineage
store to the real engine and audits it at end of run: every evicted
tuple must hold a DeathRecord with a known cause and a chain that
resolves to a seed event — across whatever checkpoint/restore cycles
the schedule injected. Divergence reports additionally carry the
recent death chains of the diverging table.
"""

import pytest

from repro.sim.driver import Divergence, Simulator
from repro.sim.oracle import FungusSpec
from repro.sim.scheduler import Op, SimConfig, SimPredicate, TableSpec


def _mini_config(seed=1, steps=0, **kwargs):
    tables = kwargs.pop(
        "tables", (TableSpec("r", FungusSpec("linear", rate=0.2)),)
    )
    return SimConfig(seed=seed, steps=steps, tables=tables, **kwargs)


class TestGeneratedSweeps:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_generated_schedules_audit_clean(self, seed):
        config = SimConfig(seed=seed, steps=120)
        report = Simulator(config, forensics=True).run()
        assert report.ok, report.describe()
        assert report.forensic_problems == []
        assert report.deaths_recorded > 0
        assert "deaths audited" in report.describe()

    def test_forensics_off_reports_no_death_count(self):
        report = Simulator(SimConfig(seed=1, steps=40)).run()
        assert report.ok
        assert report.deaths_recorded == 0
        assert "deaths audited" not in report.describe()


class TestCheckpointCycles:
    def test_lineage_survives_an_injected_restore(self):
        config = _mini_config()
        ops = [
            Op("insert", "r", [1, 2, 3, 4, 5, 6]),
            Op("tick", payload=2),
            Op("checkpoint_restore"),
            Op("tick", payload=3),
            Op("consume", "r", SimPredicate("v", ">", 0)),
            Op("tick", payload=1),
        ]
        report = Simulator(config, forensics=True).run(ops)
        assert report.ok, report.describe()
        assert report.deaths_recorded >= 6  # every tuple left R eventually

    def test_double_restore_keeps_the_contract(self):
        config = _mini_config()
        ops = [
            Op("insert", "r", [10, 20, 30]),
            Op("checkpoint_restore"),
            Op("tick", payload=2),
            Op("checkpoint_restore"),
            Op("tick", payload=4),
        ]
        report = Simulator(config, forensics=True).run(ops)
        assert report.ok, report.describe()
        assert report.forensic_problems == []


class TestDivergenceLineage:
    def test_divergence_report_renders_recent_deaths(self):
        divergence = Divergence(
            step=3,
            op=Op("tick", "r", payload=1),
            problems=("extent mismatch",),
            lineage=("why r fid 0:", "  (seed — chain complete)"),
        )
        text = divergence.describe()
        assert "recent deaths (forensics):" in text
        assert "why r fid 0:" in text

    def test_no_lineage_section_without_forensics(self):
        divergence = Divergence(
            step=3, op=Op("tick", "r", payload=1), problems=("x",)
        )
        assert "recent deaths" not in divergence.describe()
