"""Unit tests of the invariant checker itself."""

from repro.core.db import FungusDB
from repro.fungi import LinearDecayFungus
from repro.sim.invariants import (
    FreshnessTracker,
    check_conservation,
    check_freshness_bounds,
    check_health_accounting,
    check_rowset_membership,
    check_table,
)
from repro.storage import Schema


def _db(rate=0.25, **kwargs) -> FungusDB:
    db = FungusDB(seed=3)
    db.create_table(
        "r", Schema.of(k="int", v="int"), fungus=LinearDecayFungus(rate=rate), **kwargs
    )
    return db


class TestHealthyDatabasesPass:
    def test_fresh_table(self):
        db = _db()
        for k in range(5):
            db.insert("r", {"k": k, "v": k})
        assert check_table(db, "r") == []

    def test_after_decay_and_consume(self):
        db = _db()
        for k in range(8):
            db.insert("r", {"k": k, "v": k})
        db.tick(2)
        db.query("CONSUME SELECT * FROM r WHERE v < 3")
        assert check_table(db, "r") == []

    def test_lazy_table_with_exhausted_rows(self):
        db = FungusDB(seed=3)
        from repro.core.policy import EvictionMode

        db.create_table(
            "r",
            Schema.of(k="int", v="int"),
            fungus=LinearDecayFungus(rate=1.0),
            eviction=EvictionMode.LAZY,
            lazy_batch=100,
        )
        for k in range(4):
            db.insert("r", {"k": k, "v": k})
        db.tick(1)
        assert len(db.table("r").exhausted) == 4  # lingering, not evicted
        assert check_table(db, "r") == []

    def test_conservation_with_distillation(self):
        db = _db(rate=0.5)
        for k in range(6):
            db.insert("r", {"k": k, "v": k})
        db.tick(3)  # everything rots and distills
        assert check_conservation(db, "r", inserted=6) == []


class TestBrokenStatesAreFlagged:
    def test_exhausted_set_with_dead_rid(self):
        db = _db()
        rid = db.insert("r", {"k": 0, "v": 0})
        table = db.table("r")
        table.storage.delete(rid)
        table._exhausted.add(rid)  # simulate broken bookkeeping
        problems = check_rowset_membership(table)
        assert any("dead row id" in p for p in problems)

    def test_freshness_zero_but_not_exhausted(self):
        db = _db()
        rid = db.insert("r", {"k": 0, "v": 0})
        table = db.table("r")
        table.set_freshness(rid, 0.0)
        table._exhausted.discard(rid)  # simulate broken bookkeeping
        problems = check_freshness_bounds(table)
        assert any("not exhausted" in p for p in problems)

    def test_conservation_violation(self):
        db = _db()
        db.insert("r", {"k": 0, "v": 0})
        problems = check_conservation(db, "r", inserted=5)
        assert any("conservation broken" in p for p in problems)

    def test_health_accounting_clean_on_real_db(self):
        db = _db()
        for k in range(10):
            db.insert("r", {"k": k, "v": k})
        db.tick(3)
        assert check_health_accounting(db, "r") == []


class TestFreshnessTracker:
    def test_decreasing_is_fine(self):
        tracker = FreshnessTracker()
        assert tracker.observe("r", {1: 1.0, 2: 0.8}) == []
        assert tracker.observe("r", {1: 0.9, 2: 0.8}) == []

    def test_increase_is_flagged(self):
        tracker = FreshnessTracker()
        tracker.observe("r", {1: 0.5})
        problems = tracker.observe("r", {1: 0.6})
        assert len(problems) == 1
        assert "rose" in problems[0]

    def test_departed_keys_forgotten(self):
        tracker = FreshnessTracker()
        tracker.observe("r", {1: 0.5})
        tracker.observe("r", {})  # key 1 departed
        # a *new* tuple may start at 1.0 even though key 1 once was 0.5
        assert tracker.observe("r", {2: 1.0}) == []

    def test_tables_tracked_independently(self):
        tracker = FreshnessTracker()
        tracker.observe("a", {1: 0.5})
        assert tracker.observe("b", {1: 1.0}) == []
