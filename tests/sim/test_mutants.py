"""The harness must FAIL when the system is deliberately broken.

A differential checker that cannot detect a planted bug proves
nothing; every named mutant here must trip the harness on a short
generated schedule, and undoing the mutant must restore a clean run.
(This is the ISSUE's acceptance criterion made executable.)
"""

import pytest

from repro.sim import mutants
from repro.sim.driver import run_sim


@pytest.mark.parametrize("name", sorted(mutants.MUTANTS))
def test_mutant_is_detected(name):
    undo = mutants.apply(name)
    try:
        report = run_sim(seed=1, steps=120)
        assert not report.ok, f"mutant {name!r} escaped the harness"
    finally:
        undo()


@pytest.mark.parametrize("name", sorted(mutants.MUTANTS))
def test_undo_restores_clean_runs(name):
    undo = mutants.apply(name)
    undo()
    report = run_sim(seed=1, steps=60)
    assert report.ok, report.describe()


def test_unknown_mutant_rejected():
    with pytest.raises(ValueError, match="unknown mutant"):
        mutants.apply("gremlin")


def test_tombstone_mutant_names_the_accounting(capsys):
    """The divergence report should point at the broken bookkeeping."""
    undo = mutants.apply("tombstone")
    try:
        report = run_sim(seed=1, steps=120)
    finally:
        undo()
    assert not report.ok
    text = report.describe()
    # either the membership invariant fires, or the corrupted set makes
    # a later eviction blow up — both name the dead row
    assert "dead row id" in text or "deleted in table" in text
