"""The differential driver: clean runs stay clean, state survives
checkpoint cycles, queries and consumes agree with the model."""

import pytest

from repro.sim.driver import Simulator, run_sim
from repro.sim.oracle import FungusSpec
from repro.sim.scheduler import Op, SimConfig, SimPredicate, TableSpec


def _mini_config(seed=1, steps=0, **kwargs):
    """A one-table config for hand-written schedules."""
    tables = kwargs.pop(
        "tables",
        (TableSpec("r", FungusSpec("linear", rate=0.2)),),
    )
    return SimConfig(seed=seed, steps=steps, tables=tables, **kwargs)


def _run(config, ops):
    return Simulator(config).run(ops)


class TestCleanRuns:
    @pytest.mark.parametrize("seed", [1, 7, 99])
    def test_generated_schedules_do_not_diverge(self, seed):
        report = run_sim(seed=seed, steps=60)
        assert report.ok, report.describe()
        assert report.steps_run == 60

    def test_report_counts_ops(self):
        report = run_sim(seed=3, steps=50)
        assert sum(report.op_counts.values()) == 50
        assert report.rows_inserted > 0


class TestHandWrittenSchedules:
    def test_insert_tick_consume(self):
        config = _mini_config()
        ops = [
            Op("insert", "r", [10, 20, 30]),
            Op("tick", payload=2),
            Op("consume", "r", SimPredicate("v", "<", 25)),
            Op("query", "r", SimPredicate("v", ">=", 25)),
        ]
        report = _run(config, ops)
        assert report.ok, report.describe()

    def test_checkpoint_restore_is_lossless(self):
        config = _mini_config()
        ops = [
            Op("insert", "r", [1, 2, 3, 4]),
            Op("tick", payload=1),
            Op("pin", "r", 0),
            Op("checkpoint_restore"),
            Op("tick", payload=2),
            Op("query", "r", SimPredicate("v", ">", 0)),
        ]
        report = _run(config, ops)
        assert report.ok, report.describe()
        assert report.checkpoints == 1

    def test_pinned_row_survives_restore_and_decay(self):
        """The satellite fix made concrete: pin, crash, restore, decay —
        the pinned tuple must still be immune."""
        config = _mini_config(
            tables=(TableSpec("r", FungusSpec("linear", rate=0.5)),)
        )
        ops = [
            Op("insert", "r", [7, 8]),
            Op("pin", "r", 0),
            Op("checkpoint_restore"),
            Op("tick", payload=4),  # unpinned row dies, pinned survives
            Op("query", "r", SimPredicate("f", ">=", 0.9)),
        ]
        sim = Simulator(config)
        report = sim.run(ops)
        assert report.ok, report.describe()
        assert sim.db.extent("r") == 1
        assert len(sim.db.table("r").pinned) == 1

    def test_fault_schedule_is_survivable(self):
        config = _mini_config()
        ops = [
            Op("insert", "r", [1, 2, 3]),
            Op("fault_subscriber"),
            Op("fault_drop_tick"),
            Op("fault_double_tick"),
            Op("fault_torn_checkpoint"),
            Op("fault_truncated_snapshot", "r", "mid-line"),
            Op("fault_truncated_snapshot", "r", "line-boundary"),
            Op("tick", payload=1),
            Op("query", "r", SimPredicate("v", ">=", 0)),
        ]
        report = _run(config, ops)
        assert report.ok, report.describe()
        assert report.faults_injected >= 4

    def test_consume_on_lazy_table_with_exhausted_rows(self):
        config = _mini_config(
            tables=(
                TableSpec(
                    "r", FungusSpec("linear", rate=1.0), eager=False, lazy_batch=50
                ),
            )
        )
        ops = [
            Op("insert", "r", [1, 2, 3]),
            Op("tick", payload=1),  # all exhausted, none evicted (lazy)
            Op("consume", "r", SimPredicate("f", "<=", 1.0)),  # eats them all
        ]
        report = _run(config, ops)
        assert report.ok, report.describe()

    def test_pin_on_empty_table_is_noop(self):
        config = _mini_config()
        report = _run(config, [Op("pin", "r", 5), Op("unpin", "r", 2)])
        assert report.ok, report.describe()


class TestDivergenceReporting:
    def test_unknown_op_kind_raises(self):
        sim = Simulator(_mini_config())
        with pytest.raises(ValueError, match="unknown op kind"):
            sim._apply(Op("explode"))
        sim.close()

    def test_describe_names_step_and_op(self):
        from repro.sim.driver import Divergence

        d = Divergence(12, Op("tick", payload=3), ("clock diverged",))
        text = d.describe()
        assert "step 12" in text
        assert "clock diverged" in text

    def test_stop_on_divergence_halts_run(self, monkeypatch):
        from repro.fungi.linear import LinearDecayFungus

        original = LinearDecayFungus.cycle

        def double(self, table, rng):
            report = original(self, table, rng)
            return original(self, table, rng).merge(report)

        monkeypatch.setattr(LinearDecayFungus, "cycle", double)
        config = _mini_config()
        ops = [
            Op("insert", "r", [1, 2]),
            Op("tick", payload=1),  # diverges here
            Op("tick", payload=1),  # never reached
        ]
        report = _run(config, ops)
        assert not report.ok
        assert report.steps_run == 2


class TestTraceRecording:
    """The --trace-dir flight recorder: spans survive restores and
    round-trip through the JSONL validator."""

    def test_trace_records_valid_span_trees(self, tmp_path):
        from repro.obs.tracing import validate_trace
        from repro.sim.scheduler import generate_ops

        config = SimConfig(seed=3, steps=60)
        simulator = Simulator(config, trace_dir=tmp_path)
        report = simulator.run(generate_ops(config))
        assert report.ok
        assert simulator.trace_path == tmp_path / "seed-3.jsonl"
        assert validate_trace(simulator.trace_path) == []

    def test_trace_spans_continue_after_checkpoint_restore(self, tmp_path):
        from repro.obs.tracing import read_trace

        config = _mini_config()
        ops = [
            Op("insert", "r", (1, 2, 3)),
            Op("checkpoint_restore"),
            Op("tick", payload=1),
        ]
        simulator = Simulator(config, trace_dir=tmp_path)
        report = simulator.run(ops)
        assert report.ok
        spans = read_trace(simulator.trace_path)
        names = [span["name"] for span in spans]
        # the tick after the restore still records: the rebuilt db was
        # re-wired onto the persistent tracer
        assert "checkpoint.restore" in names
        assert "tick" in names
        assert names.count("sim.op") == 3

    def test_no_trace_dir_records_nothing(self):
        config = _mini_config()
        simulator = Simulator(config)
        assert simulator.trace_path is None
        simulator.run([Op("insert", "r", (1,))])

    def test_cli_trace_dir_flag(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main
        from repro.sim.__main__ import main as sim_main

        assert sim_main(["--seed", "5", "--steps", "40",
                         "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        trace = tmp_path / "seed-5.jsonl"
        assert trace.exists()
        assert obs_main(["check-trace", str(trace)]) == 0
        assert "ok (" in capsys.readouterr().out
