"""A seeded database must decay identically in every process.

Per-table RNG seeds were once derived with ``hash((seed, name))`` —
but str hashing is salted per process (PYTHONHASHSEED), so the same
seeded workload grew different rot spots from run to run and the
sim harness's "replay the seed locally" promise silently lied.
Table seeds now come from a process-independent digest; this test
pins that by replaying one EGI workload under two adversarial hash
seeds in subprocesses and demanding bit-identical survivors.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

WORKLOAD = """
import json, sys
from repro.core.db import FungusDB
from repro.fungi import EGIFungus
from repro.storage.schema import Schema

db = FungusDB(seed=3)
db.create_table(
    "r", Schema.of(v="int"), fungus=EGIFungus(seeds_per_cycle=2, decay_rate=0.2)
)
for i in range(30):
    db.insert("r", {"v": i})
db.tick(10)
storage = db.table("r").storage
rids = sorted(storage.live_rows())
rows = list(zip(rids, storage.column_values("f", rids)))
json.dump(rows, sys.stdout)
"""


def _run(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
    result = subprocess.run(
        [sys.executable, "-c", WORKLOAD],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_decay_schedule_survives_hash_randomization():
    # 14 is a known adversarial salt for the old hash()-derived seeds
    outputs = {_run(seed) for seed in ("0", "14", "random")}
    assert len(outputs) == 1, "decay schedule depends on PYTHONHASHSEED"
