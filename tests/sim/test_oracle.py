"""The oracle's decay mirrors must match the real fungi bit for bit."""

import pytest

from repro.core.db import FungusDB
from repro.errors import DecayError
from repro.sim.oracle import FungusSpec, Oracle
from repro.storage import Schema

SPECS = [
    FungusSpec("null"),
    FungusSpec("linear", rate=0.15),
    FungusSpec("exponential", half_life=2.5, evict_below=0.04),
    FungusSpec("sigmoid", midlife=4.0, steepness=0.8, evict_below=0.05),
    FungusSpec("retention", max_age=6.0),
]


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.kind)
class TestExactMirror:
    def _pair(self, spec, eager=True):
        db = FungusDB(seed=9)
        db.create_table("r", Schema.of(k="int", v="int"), fungus=spec.build())
        oracle = Oracle()
        oracle.create_table("r", spec, eager=eager)
        return db, oracle

    def _freshness_pairs(self, db, oracle):
        real = [(r["k"], r["t"], r["f"]) for r in db.table("r").rows()]
        model = [(row.key, row.t, row.f) for row in oracle.tables["r"].rows]
        return real, model

    def test_single_cycle_exact(self, spec):
        db, oracle = self._pair(spec)
        for k in range(8):
            db.insert("r", {"k": k, "v": k})
            oracle.insert("r", k, {"v": k})
        db.tick(1)
        oracle.tick(1)
        real, model = self._freshness_pairs(db, oracle)
        assert real == model  # exact float equality, no tolerance

    def test_many_cycles_with_staggered_inserts(self, spec):
        db, oracle = self._pair(spec)
        key = 0
        for burst in range(6):
            for _ in range(3):
                db.insert("r", {"k": key, "v": key % 7})
                oracle.insert("r", key, {"v": key % 7})
                key += 1
            db.tick(2)
            oracle.tick(2)
        real, model = self._freshness_pairs(db, oracle)
        assert real == model

    def test_extinction_agrees(self, spec):
        """Run long enough that decaying tables fully disappear."""
        db, oracle = self._pair(spec)
        for k in range(5):
            db.insert("r", {"k": k, "v": k})
            oracle.insert("r", k, {"v": k})
        db.tick(40)
        oracle.tick(40)
        assert db.extent("r") == oracle.tables["r"].extent
        if spec.kind != "null":
            assert db.extent("r") == 0


class TestModelPolicy:
    def test_lazy_eviction_keeps_exhausted_until_batch(self):
        spec = FungusSpec("linear", rate=1.0)
        oracle = Oracle()
        oracle.create_table("r", spec, eager=False, lazy_batch=5)
        for k in range(3):
            oracle.insert("r", k, {"v": k})
        oracle.tick(1)  # all rows exhaust, but 3 < lazy_batch
        assert oracle.tables["r"].extent == 3
        assert sorted(oracle.tables["r"].exhausted_keys()) == [0, 1, 2]
        for k in range(3, 6):
            oracle.insert("r", k, {"v": k})
        oracle.tick(1)  # now 6 exhausted >= 5: the batch collects
        assert oracle.tables["r"].extent == 0

    def test_period_skips_cycles(self):
        oracle = Oracle()
        oracle.create_table("r", FungusSpec("linear", rate=0.25), period=2)
        oracle.insert("r", 0, {"v": 0})
        oracle.tick(1)  # tick 1: not a period multiple
        assert oracle.tables["r"].rows[0].f == 1.0
        oracle.tick(1)  # tick 2: cycle runs
        assert oracle.tables["r"].rows[0].f == 0.75

    def test_pinned_rows_do_not_decay(self):
        oracle = Oracle()
        oracle.create_table("r", FungusSpec("linear", rate=0.5))
        oracle.insert("r", 0, {"v": 0})
        oracle.insert("r", 1, {"v": 1})
        oracle.pin_key("r", 0)
        oracle.tick(3)
        table = oracle.tables["r"]
        assert table.extent == 1
        assert table.rows[0].key == 0
        assert table.rows[0].f == 1.0

    def test_consume_removes_exactly_sigma_p(self):
        oracle = Oracle()
        oracle.create_table("r", FungusSpec("null"))
        for k in range(10):
            oracle.insert("r", k, {"v": k})
        removed = oracle.consume("r", lambda row: row.attrs["v"] < 4)
        assert removed == [0, 1, 2, 3]
        assert [row.key for row in oracle.tables["r"].rows] == [4, 5, 6, 7, 8, 9]
        assert oracle.tables["r"].departed == 4

    def test_dropped_tick_moves_time_only(self):
        oracle = Oracle()
        oracle.create_table("r", FungusSpec("linear", rate=0.5))
        oracle.insert("r", 0, {"v": 0})
        oracle.dropped_tick()
        assert oracle.now == 1.0
        assert oracle.tables["r"].rows[0].f == 1.0

    def test_duplicate_tick_decays_again(self):
        oracle = Oracle()
        oracle.create_table("r", FungusSpec("linear", rate=0.25))
        oracle.insert("r", 0, {"v": 0})
        oracle.tick(1)
        assert oracle.tables["r"].rows[0].f == 0.75
        oracle.duplicate_tick()
        assert oracle.tables["r"].rows[0].f == 0.5
        assert oracle.now == 1.0


class TestSpecValidation:
    def test_unknown_kind_rejected_on_build(self):
        with pytest.raises(DecayError, match="unknown fungus"):
            FungusSpec("mould").build()

    def test_duplicate_model_table_rejected(self):
        oracle = Oracle()
        oracle.create_table("r", FungusSpec("null"))
        with pytest.raises(DecayError, match="already exists"):
            oracle.create_table("r", FungusSpec("null"))

    def test_build_produces_matching_real_fungus(self):
        assert FungusSpec("linear", rate=0.3).build().name == "linear"
        assert FungusSpec("exponential").build().name == "exponential"
        assert FungusSpec("sigmoid").build().name == "sigmoid"
        assert FungusSpec("retention").build().name == "retention"
        assert FungusSpec("null").build().name == "null"
