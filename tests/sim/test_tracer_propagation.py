"""Regression: a tracer wired at restore reaches *later* tables too.

The flight-recorder contract is one continuous trace across a
checkpoint/restore fault — including relations created after the
restore returned. ``db.tracer`` is a property whose setter fans out
to the clock, the engine and every table, and ``create_table`` wires
newcomers to the database's current tracer; these tests pin both
halves, because the old wiring (a one-shot attribute copy at restore
time) silently left post-restore tables tracing into the void.
"""

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.fungi import LinearDecayFungus
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.storage.schema import Schema


def _span_names(tracer: Tracer) -> set[str]:
    return {span["name"] for span in tracer.to_dicts()}


def _spans_for_table(tracer: Tracer, name: str, table: str) -> list[dict]:
    return [
        span
        for span in tracer.to_dicts()
        if span["name"] == name and span["attrs"].get("table") == table
    ]


def test_tracer_reaches_tables_created_after_restore(tmp_path):
    db = FungusDB(seed=11)
    db.create_table("old", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.1))
    db.insert("old", {"v": 1})
    save_checkpoint(db, tmp_path)

    tracer = Tracer()
    restored = load_checkpoint(
        tmp_path, fungi={"old": LinearDecayFungus(rate=0.1)}, tracer=tracer
    )
    assert "checkpoint.restore" in _span_names(tracer)

    # the regression: a table born *after* the restore must trace
    restored.create_table(
        "young", Schema.of(v="int"), fungus=LinearDecayFungus(rate=0.1)
    )
    restored.insert("young", {"v": 2})
    restored.tick(1)
    assert _spans_for_table(tracer, "policy.cycle", "young"), (
        "post-restore table's decay cycle left no span"
    )

    # and its storage maintenance traces too
    restored.table("young").storage.delete(
        next(iter(restored.table("young").live_rows()))
    )
    restored.table("young").compact()
    compacts = _spans_for_table(tracer, "table.compact", "young")
    assert compacts and compacts[0]["attrs"]["remapped"] >= 0


def test_tracer_property_fans_out_and_detaches(tmp_path):
    db = FungusDB(seed=3)
    db.create_table("r", Schema.of(v="int"))
    tracer = Tracer()
    db.tracer = tracer
    assert db.clock.tracer is tracer
    assert db.engine.tracer is tracer
    assert db.table("r").tracer is tracer

    db.create_table("s", Schema.of(v="int"))
    assert db.table("s").tracer is tracer

    db.tracer = NULL_TRACER
    assert db.table("r").tracer is NULL_TRACER
    assert db.table("s").tracer is NULL_TRACER
