"""Fault injectors leave exactly the wreckage a real failure would."""

import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.errors import DecayError, SnapshotError
from repro.fungi import LinearDecayFungus
from repro.sim import faults
from repro.storage import Schema


@pytest.fixture
def db():
    db = FungusDB(seed=11)
    db.create_table("r", Schema.of(k="int", v="int"), fungus=LinearDecayFungus(rate=0.1))
    for k in range(5):
        db.insert("r", {"k": k, "v": k * 10})
    db.tick(2)
    return db


class TestTornCheckpoint:
    def test_load_refuses_missing_manifest(self, db, tmp_path):
        faults.tear_checkpoint(db, tmp_path / "ckpt")
        with pytest.raises(SnapshotError, match="manifest"):
            load_checkpoint(tmp_path / "ckpt")

    def test_table_files_were_written(self, db, tmp_path):
        directory = faults.tear_checkpoint(db, tmp_path / "ckpt")
        assert (directory / "r.jsonl").exists()
        assert not (directory / "manifest.json").exists()


class TestTruncatedSnapshot:
    def test_mid_line_truncation_detected(self, db, tmp_path):
        faults.truncate_snapshot(db, tmp_path / "ckpt", "r", mode="mid-line")
        with pytest.raises(SnapshotError):
            load_checkpoint(tmp_path / "ckpt")

    def test_line_boundary_truncation_detected(self, db, tmp_path):
        """The sneaky case: the file is valid JSONL, just one row short.
        Only the row count in the header catches it."""
        faults.truncate_snapshot(db, tmp_path / "ckpt", "r", mode="line-boundary")
        with pytest.raises(SnapshotError, match="truncated"):
            load_checkpoint(tmp_path / "ckpt")

    def test_empty_table_mid_line_hits_header(self, tmp_path):
        db = FungusDB(seed=1)
        db.create_table("e", Schema.of(k="int", v="int"))
        faults.truncate_snapshot(db, tmp_path / "ckpt", "e", mode="mid-line")
        with pytest.raises(SnapshotError):
            load_checkpoint(tmp_path / "ckpt")

    def test_empty_table_line_boundary_not_representable(self, tmp_path):
        db = FungusDB(seed=1)
        db.create_table("e", Schema.of(k="int", v="int"))
        assert (
            faults.truncate_snapshot(db, tmp_path / "ckpt", "e", mode="line-boundary")
            is None
        )

    def test_unknown_mode_rejected(self, db, tmp_path):
        with pytest.raises(ValueError, match="unknown truncation mode"):
            faults.truncate_snapshot(db, tmp_path / "ckpt", "r", mode="shredded")

    def test_untouched_checkpoint_still_loads(self, db, tmp_path):
        """Sanity: the injector's save itself is a valid checkpoint."""
        save_checkpoint(db, tmp_path / "ok")
        assert load_checkpoint(tmp_path / "ok").extent("r") == 5


class TestFailingSubscriber:
    def test_tick_raises_chained_decay_error(self, db):
        db.clock.subscribe(faults.failing_subscriber)
        with pytest.raises(DecayError) as excinfo:
            db.tick(1)
        assert isinstance(excinfo.value.__cause__, faults.InjectedSubscriberError)
        db.clock.unsubscribe(faults.failing_subscriber)

    def test_clock_advanced_but_no_policy_ran(self, db):
        before_extent = db.extent("r")
        before_now = db.now
        freshness_before = db.table("r").freshness_values()
        db.clock.subscribe(faults.failing_subscriber)
        with pytest.raises(DecayError):
            db.tick(1)
        db.clock.unsubscribe(faults.failing_subscriber)
        assert db.now == before_now + 1  # the failed tick is on the clock
        assert db.extent("r") == before_extent
        assert db.table("r").freshness_values() == freshness_before

    def test_database_usable_after_fault(self, db):
        db.clock.subscribe(faults.failing_subscriber)
        with pytest.raises(DecayError):
            db.tick(1)
        db.clock.unsubscribe(faults.failing_subscriber)
        db.tick(1)  # decays normally again
        assert db.query("SELECT count(*) FROM r").scalar() == db.extent("r")
