"""Schedule generation: deterministic, seeded, well-formed."""

from repro.sim.scheduler import (
    DEFAULT_WEIGHTS,
    SimConfig,
    SimPredicate,
    default_tables,
    generate_ops,
)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = generate_ops(SimConfig(seed=42, steps=150))
        b = generate_ops(SimConfig(seed=42, steps=150))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_ops(SimConfig(seed=1, steps=150))
        b = generate_ops(SimConfig(seed=2, steps=150))
        assert a != b

    def test_step_count_respected(self):
        assert len(generate_ops(SimConfig(seed=7, steps=83))) == 83


class TestWellFormed:
    def test_all_kinds_are_known(self):
        ops = generate_ops(SimConfig(seed=3, steps=500))
        assert {op.kind for op in ops} <= set(DEFAULT_WEIGHTS)

    def test_tables_come_from_config(self):
        config = SimConfig(seed=3, steps=500)
        names = set(config.table_names())
        for op in generate_ops(config):
            if op.table is not None:
                assert op.table in names

    def test_every_kind_eventually_generated(self):
        ops = generate_ops(SimConfig(seed=5, steps=2000))
        assert {op.kind for op in ops} == set(DEFAULT_WEIGHTS)

    def test_default_zoo_covers_modes(self):
        specs = default_tables()
        kinds = {spec.fungus.kind for spec in specs}
        assert {"linear", "exponential", "sigmoid", "retention"} <= kinds
        assert any(not spec.eager for spec in specs)  # a lazy table
        assert any(spec.period > 1 for spec in specs)  # an off-unit period
        assert any(spec.compact_every for spec in specs)  # a compacting table


class TestPredicates:
    def test_matches_mirrors_sql_semantics(self):
        assert SimPredicate("v", "<", 5).matches(4, 1.0)
        assert not SimPredicate("v", "<", 5).matches(5, 1.0)
        assert SimPredicate("v", "=", 5).matches(5, 1.0)
        assert SimPredicate("f", ">=", 0.5).matches(0, 0.5)
        assert not SimPredicate("f", ">", 0.5).matches(0, 0.5)

    def test_to_sql_round_trips_value(self):
        assert SimPredicate("v", "<=", 42).to_sql() == "v <= 42"
        assert SimPredicate("f", ">", 0.25).to_sql() == "f > 0.25"
