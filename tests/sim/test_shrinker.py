"""ddmin shrinking: minimal repros from big failing schedules."""

import pytest

from repro.sim.driver import Simulator
from repro.sim.oracle import FungusSpec
from repro.sim.scheduler import Op, SimConfig, TableSpec, generate_ops
from repro.sim.shrinker import ddmin, shrink_failure


class TestDdmin:
    def test_single_culprit_found(self):
        ops = list(range(100))

        def fails(candidate):
            return 37 in candidate

        assert ddmin(ops, fails) == [37]

    def test_pair_of_culprits_found(self):
        ops = list(range(50))

        def fails(candidate):
            return 3 in candidate and 41 in candidate

        assert sorted(ddmin(ops, fails)) == [3, 41]

    def test_requires_failing_input(self):
        with pytest.raises(AssertionError):
            ddmin([1, 2, 3], lambda ops: False)

    def test_result_is_one_minimal(self):
        """Removing any single op from the result makes it pass."""
        ops = list(range(30))

        def fails(candidate):
            return {5, 6, 20} <= set(candidate)

        result = ddmin(ops, fails)
        assert fails(result)
        for i in range(len(result)):
            assert not fails(result[:i] + result[i + 1 :])


class TestShrinkFailure:
    def test_shrinks_mutant_divergence_to_a_few_ops(self, monkeypatch):
        """A doubled linear rate diverges deep inside a 150-op schedule;
        the shrinker must reduce it to insert+tick."""
        from repro.fungi.linear import LinearDecayFungus

        original = LinearDecayFungus.cycle

        def doubled(self, table, rng):
            report = original(self, table, rng)
            for rid in list(table.live_rows()):
                if table.freshness(rid) > 0.0:
                    self._decay(table, rid, self.rate, report)
            return report

        monkeypatch.setattr(LinearDecayFungus, "cycle", doubled)
        config = SimConfig(
            seed=5,
            steps=150,
            tables=(TableSpec("r", FungusSpec("linear", rate=0.2)),),
        )
        ops = generate_ops(config)
        assert not Simulator(config).run(ops).ok
        minimal = shrink_failure(config, ops)
        assert len(minimal) <= 3  # an insert and a tick (+ slack)
        assert not Simulator(config).run(minimal).ok
        kinds = [op.kind for op in minimal]
        assert "insert" in kinds
        assert "tick" in kinds or "fault_double_tick" in kinds
