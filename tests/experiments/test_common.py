"""Tests for the shared experiment plumbing (experiments.common)."""

import pytest

from repro.errors import BenchError
from repro.experiments.common import (
    build_sensor_db,
    check_scale,
    extent_probe,
    pick,
    run_arm,
)
from repro.fungi import LinearDecayFungus
from repro.workload.arrival import ConstantArrivals


class TestScales:
    def test_valid_scales(self):
        check_scale("smoke")
        check_scale("paper")

    def test_invalid_scale(self):
        with pytest.raises(BenchError, match="unknown scale"):
            check_scale("galactic")

    def test_pick(self):
        assert pick("smoke", 1, 2) == 1
        assert pick("paper", 1, 2) == 2

    def test_pick_validates(self):
        with pytest.raises(BenchError):
            pick("huge", 1, 2)


class TestBuilders:
    def test_build_sensor_db(self):
        db, generator = build_sensor_db(LinearDecayFungus(rate=0.1), seed=3)
        row = generator.generate(0)
        db.insert("readings", row)
        assert db.extent("readings") == 1

    def test_run_arm_produces_stats(self):
        db, stats = run_arm(
            LinearDecayFungus(rate=0.5),
            ConstantArrivals(4),
            ticks=5,
            probe=extent_probe(),
        )
        assert stats.inserted == 20
        assert len(stats.series["extent"]) == 5
        # rate 0.5 and eager eviction: a batch survives exactly one
        # probe (f=0.5 after its first tick, evicted during its second)
        assert stats.series["extent"][-1] == 4

    def test_run_arm_forwards_table_kwargs(self):
        db, _ = run_arm(
            None, ConstantArrivals(1), ticks=1, compact_every=1, distill_on_evict=False
        )
        assert db.policies["readings"].compact_every == 1

    def test_extent_probe_records_extent(self):
        db, stats = run_arm(None, ConstantArrivals(2), ticks=3, probe=extent_probe())
        assert stats.series["extent"] == [2, 4, 6]
