"""Smoke-scale integration tests: every experiment runs and its shape
checks — the reproduction's stand-in for matching published numbers —
all hold.

These overlap with ``benchmarks/`` on purpose: the benchmarks time the
runs, these gate correctness in a plain ``pytest tests/`` run.
"""

import functools

import pytest

from repro.bench.reporting import render_result
from repro.bench.runner import run_experiment

ALL_EXPERIMENTS = ["F1", "F2", "F3", "F4", "F5", "F6", "F7", "T1", "T2", "T3", "T4", "T5"]


@functools.lru_cache(maxsize=None)
def _cached_run(experiment_id: str):
    """Experiments are deterministic and side-effect free: run each once."""
    return run_experiment(experiment_id, scale="smoke")


@pytest.mark.parametrize("experiment_id", ALL_EXPERIMENTS)
def test_experiment_checks_pass(experiment_id):
    result = _cached_run(experiment_id)
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, (
        f"{experiment_id} failed shape checks {failed}\n" + render_result(result)
    )


@pytest.mark.parametrize("experiment_id", ALL_EXPERIMENTS)
def test_experiment_reports_render(experiment_id):
    result = _cached_run(experiment_id)
    text = render_result(result)
    assert result.experiment_id in text
    assert result.claim in text
    # every experiment must produce either a table or at least one series
    assert result.rows or result.series


def test_experiments_are_deterministic():
    """Same scale, same seed plumbing -> identical table rows."""
    a = run_experiment("F3", scale="smoke")
    b = run_experiment("F3", scale="smoke")
    assert list(a.rows) == list(b.rows)
