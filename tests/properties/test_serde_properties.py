"""Property-based round-trip tests for sketch serialization."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import (
    BloomFilter,
    CountMinSketch,
    HyperLogLog,
    StreamingHistogram,
    TableSummary,
)
from repro.sketch.serde import (
    bloom_from_dict,
    bloom_to_dict,
    countmin_from_dict,
    countmin_to_dict,
    histogram_from_dict,
    histogram_to_dict,
    hll_from_dict,
    hll_to_dict,
    summary_from_dict,
    summary_to_dict,
)
from repro.storage import Schema

values = st.lists(
    st.one_of(st.integers(min_value=-50, max_value=50), st.text(max_size=6)),
    max_size=150,
)


def through_json(data):
    return json.loads(json.dumps(data))


@settings(max_examples=40, deadline=None)
@given(vs=values)
def test_countmin_roundtrip_exact(vs):
    cm = CountMinSketch(width=32, depth=3)
    for v in vs:
        cm.add(v)
    restored = countmin_from_dict(through_json(countmin_to_dict(cm)))
    assert all(restored.estimate(v) == cm.estimate(v) for v in vs)
    assert restored.total == cm.total


@settings(max_examples=40, deadline=None)
@given(vs=values)
def test_hll_roundtrip_exact(vs):
    hll = HyperLogLog(8)
    for v in vs:
        hll.add(v)
    restored = hll_from_dict(through_json(hll_to_dict(hll)))
    assert restored._registers == hll._registers


@settings(max_examples=40, deadline=None)
@given(vs=values)
def test_bloom_roundtrip_exact(vs):
    bloom = BloomFilter(num_bits=512, num_hashes=3)
    for v in vs:
        bloom.add(v)
    restored = bloom_from_dict(through_json(bloom_to_dict(bloom)))
    assert restored._bits == bloom._bits
    assert all((v in restored) == (v in bloom) for v in vs)


@settings(max_examples=40, deadline=None)
@given(
    vs=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=150)
)
def test_histogram_roundtrip_exact(vs):
    hist = StreamingHistogram(16)
    hist.add_all(vs)
    restored = histogram_from_dict(through_json(histogram_to_dict(hist)))
    assert restored.bins() == hist.bins()
    if vs:
        assert restored.quantile(0.5) == hist.quantile(0.5)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.integers(min_value=-20, max_value=20),
            st.text(max_size=4),
        ),
        max_size=60,
    )
)
def test_table_summary_roundtrip(rows):
    schema = Schema.of(t="timestamp", v="int", k="str")
    summary = TableSummary("r", schema, time_column="t")
    for t, v, k in rows:
        summary.add_row({"t": t, "v": v, "k": k})
    restored = summary_from_dict(through_json(summary_to_dict(summary)))
    assert restored.row_count == summary.row_count
    assert restored.time_range == summary.time_range
    for name in ("t", "v", "k"):
        original, copied = summary.column(name), restored.column(name)
        assert copied.estimate_distinct() == original.estimate_distinct()
        assert copied.count == original.count
    if rows:
        assert restored.column("v").estimate_mean() == summary.column("v").estimate_mean()
