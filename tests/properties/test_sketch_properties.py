"""Property-based tests of the sketch guarantees."""

from collections import Counter

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.sketch import (
    BloomFilter,
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    RunningMoments,
    StreamingHistogram,
)

small_values = st.lists(st.integers(min_value=0, max_value=100), max_size=300)


@settings(max_examples=50, deadline=None)
@given(values=small_values)
def test_countmin_never_underestimates(values):
    """Point queries are always >= the true frequency."""
    cm = CountMinSketch(width=32, depth=3)
    truth = Counter(values)
    for v in values:
        cm.add(v)
    for v, count in truth.items():
        assert cm.estimate(v) >= count


@settings(max_examples=50, deadline=None)
@given(values=small_values, split=st.integers(min_value=0, max_value=300))
def test_countmin_merge_equals_single_sketch(values, split):
    """merge(A, B) has exactly the counters of the combined stream."""
    split = min(split, len(values))
    whole = CountMinSketch(width=64, depth=3)
    a = CountMinSketch(width=64, depth=3)
    b = CountMinSketch(width=64, depth=3)
    for v in values:
        whole.add(v)
    for v in values[:split]:
        a.add(v)
    for v in values[split:]:
        b.add(v)
    merged = a.merge(b)
    assert merged._rows == whole._rows
    assert merged.total == whole.total


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.text(max_size=8), max_size=200))
def test_bloom_no_false_negatives(values):
    """Everything inserted is reported present."""
    bloom = BloomFilter(num_bits=2048, num_hashes=4)
    for v in values:
        bloom.add(v)
    for v in values:
        assert v in bloom


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.integers(), max_size=200), split=st.integers(min_value=0, max_value=200))
def test_hll_merge_is_union(values, split):
    """Merging partitions gives the same registers as the union stream."""
    split = min(split, len(values))
    whole, a, b = HyperLogLog(8), HyperLogLog(8), HyperLogLog(8)
    for v in values:
        whole.add(v)
    for v in values[:split]:
        a.add(v)
    for v in values[split:]:
        b.add(v)
    assert a.merge(b)._registers == whole._registers


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=200
    )
)
# endpoints hundreds of orders of magnitude apart: the naive lerp in
# quantile() cancelled to 0.0, outside [min, max]
@example(values=[-1.0] * 5 + [-1.175494351e-38, -1.9882777518517638e-178])
def test_histogram_total_and_bounds(values):
    """Total is exact; quantiles stay inside [min, max]; budget holds."""
    hist = StreamingHistogram(max_bins=16)
    hist.add_all(values)
    assert hist.total == len(values)
    assert len(hist) <= 16
    if values:
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert min(values) <= hist.quantile(q) <= max(values)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=200,
    ),
    split=st.integers(min_value=1, max_value=199),
)
def test_moments_merge_matches_single_pass(values, split):
    """Chan merge == one-pass Welford, for any split point."""
    split = min(split, len(values) - 1)
    whole, a, b = RunningMoments(), RunningMoments(), RunningMoments()
    whole.add_all(values)
    a.add_all(values[:split])
    b.add_all(values[split:])
    merged = a.merge(b)
    assert merged.count == whole.count
    assert abs(merged.mean - whole.mean) <= max(abs(whole.mean) * 1e-9, 1e-6)
    if whole.variance is not None and whole.variance > 1e-9:
        assert abs(merged.variance - whole.variance) <= whole.variance * 1e-6 + 1e-6


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=500),
    capacity=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_reservoir_size_and_membership(n, capacity, seed):
    """|sample| = min(k, n) and every member came from the stream."""
    rs = ReservoirSample(capacity, seed=seed)
    rs.add_all(range(n))
    assert len(rs) == min(capacity, n)
    assert rs.seen == n
    assert all(0 <= v < n for v in rs)
