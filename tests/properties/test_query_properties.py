"""Property-based tests of the query engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import QueryEngine, parse
from repro.storage import Catalog, Schema


def build_engine(values):
    catalog = Catalog()
    table = catalog.create_table("r", Schema.of(t="timestamp", v="int", k="str"))
    for i, v in enumerate(values):
        table.append((float(i), v, f"k{v % 3}"))
    return QueryEngine(catalog), catalog


values_strategy = st.lists(st.integers(min_value=-20, max_value=20), max_size=50)


@settings(max_examples=50, deadline=None)
@given(values=values_strategy, threshold=st.integers(min_value=-25, max_value=25))
def test_where_matches_python_filter(values, threshold):
    """SQL filter == Python filter for simple comparisons."""
    engine, _ = build_engine(values)
    res = engine.execute(f"SELECT v FROM r WHERE v > {threshold}")
    assert sorted(res.column("v")) == sorted(v for v in values if v > threshold)


@settings(max_examples=50, deadline=None)
@given(values=values_strategy)
def test_aggregates_match_python(values):
    """count/sum/min/max/avg agree with Python built-ins."""
    engine, _ = build_engine(values)
    res = engine.execute("SELECT count(*), sum(v), min(v), max(v), avg(v) FROM r")
    count, total, low, high, mean = res.rows[0]
    assert count == len(values)
    if values:
        assert total == sum(values)
        assert low == min(values)
        assert high == max(values)
        assert abs(mean - sum(values) / len(values)) < 1e-9
    else:
        assert (total, low, high, mean) == (None, None, None, None)


@settings(max_examples=50, deadline=None)
@given(values=values_strategy)
def test_group_by_partitions(values):
    """Group counts sum to the table size; groups are disjoint."""
    engine, _ = build_engine(values)
    res = engine.execute("SELECT k, count(*) AS n FROM r GROUP BY k")
    assert sum(res.column("n")) == len(values)
    keys = res.column("k")
    assert len(keys) == len(set(keys))


@settings(max_examples=50, deadline=None)
@given(values=values_strategy)
def test_order_by_sorts(values):
    """ORDER BY v produces a sorted column, stable row multiset."""
    engine, _ = build_engine(values)
    res = engine.execute("SELECT v FROM r ORDER BY v")
    column = res.column("v")
    assert column == sorted(values)


@settings(max_examples=50, deadline=None)
@given(values=values_strategy, limit=st.integers(min_value=0, max_value=60))
def test_limit_is_prefix(values, limit):
    """LIMIT returns a prefix of the unlimited ordering."""
    engine, _ = build_engine(values)
    unlimited = engine.execute("SELECT v FROM r ORDER BY v, t").rows
    limited = engine.execute(f"SELECT v FROM r ORDER BY v, t LIMIT {limit}").rows
    assert limited == unlimited[:limit]


@settings(max_examples=50, deadline=None)
@given(values=values_strategy, threshold=st.integers(min_value=-25, max_value=25))
def test_index_and_scan_agree(values, threshold):
    """The same query with and without an index returns the same rows."""
    engine, catalog = build_engine(values)
    no_index = engine.execute(f"SELECT v FROM r WHERE t >= {threshold} ORDER BY t").rows
    catalog.create_sorted_index("r", "t")
    with_index = engine.execute(
        f"SELECT v FROM r WHERE t >= {threshold} ORDER BY t"
    ).rows
    assert no_index == with_index


@settings(max_examples=100, deadline=None)
@given(
    projection=st.sampled_from(["v", "v + 1", "abs(v)", "count(*)", "upper(k)"]),
    where=st.sampled_from(
        ["", " WHERE v > 0", " WHERE v BETWEEN -5 AND 5", " WHERE k = 'k0' OR v < 0"]
    ),
    tail=st.sampled_from(["", " LIMIT 3", " ORDER BY 1 + v"]),
)
def test_parser_roundtrip(projection, where, tail):
    """to_sql() of a parsed statement reparses to the same AST."""
    if projection == "count(*)" and "ORDER" in tail:
        tail = ""
    sql = f"SELECT {projection} FROM r{where}{tail}"
    stmt = parse(sql)
    assert parse(stmt.to_sql()) == stmt
