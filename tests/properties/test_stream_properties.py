"""Property-based tests of the streaming substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream import (
    Pattern,
    PatternMatcher,
    SlidingWindows,
    StreamElement,
    StreamPipeline,
    TumblingWindows,
    WindowedRetentionBaseline,
)

timestamps = st.lists(
    st.floats(min_value=0, max_value=1e4, allow_nan=False), max_size=80
).map(sorted)


@settings(max_examples=50, deadline=None)
@given(ts=timestamps, size=st.floats(min_value=0.5, max_value=100))
def test_tumbling_assignment_is_partition(ts, size):
    """Every timestamp lands in exactly one tumbling window containing it."""
    assigner = TumblingWindows(size)
    for t in ts:
        windows = assigner.assign(t)
        assert len(windows) == 1
        assert windows[0].contains(t)


@settings(max_examples=50, deadline=None)
@given(
    ts=timestamps,
    slide=st.floats(min_value=0.5, max_value=20),
    factor=st.integers(min_value=1, max_value=5),
)
def test_sliding_assignment_covers(ts, slide, factor):
    """Each timestamp is in ~size/slide sliding windows, all containing it.

    Exactly ``factor`` in exact arithmetic; float rounding at window
    boundaries can add or drop one, so the bound is ±1.
    """
    size = slide * factor
    assigner = SlidingWindows(size, slide)
    for t in ts:
        windows = assigner.assign(t)
        assert factor - 1 <= len(windows) <= factor + 1
        assert len(windows) >= 1
        assert all(w.contains(t) for w in windows)


@settings(max_examples=40, deadline=None)
@given(ts=timestamps, window=st.floats(min_value=0.5, max_value=100))
def test_window_counts_conserve_elements(ts, window):
    """Tumbling window counts sum to the number of pushed elements."""
    out = []
    pipe = StreamPipeline().window(TumblingWindows(window), aggregate=len).sink(out.append)
    for t in ts:
        pipe.push(StreamElement(t))
    pipe.flush()
    assert sum(count for _, _, count in out) == len(ts)


@settings(max_examples=40, deadline=None)
@given(ts=timestamps, retention=st.floats(min_value=0.5, max_value=100))
def test_baseline_retains_exactly_the_window(ts, retention):
    """After any ingest, retained elements are exactly those within W of now."""
    baseline = WindowedRetentionBaseline(retention)
    for t in ts:
        baseline.ingest(StreamElement(t, {"t": t}))
    if ts:
        now = ts[-1]
        expected = [t for t in ts if t > now - retention]
        assert baseline.snapshot_values("t") == expected


@settings(max_examples=40, deadline=None)
@given(
    ts=timestamps,
    within=st.floats(min_value=0.5, max_value=50),
)
def test_cep_matches_respect_window_and_order(ts, within):
    """Every reported match is ordered and inside the WITHIN budget."""
    pattern = Pattern.sequence(
        ("a", lambda e: True),
        ("b", lambda e: True),
        within=within,
    )
    matcher = PatternMatcher(pattern, max_runs=500)
    matches = matcher.push_all(StreamElement(t) for t in ts)
    for match in matches:
        assert match.start_time <= match.end_time
        assert match.end_time - match.start_time <= within
