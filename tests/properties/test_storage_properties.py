"""Property-based tests of the storage engine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import HashIndex, RowSet, Schema, SortedIndex, Table


@settings(max_examples=50, deadline=None)
@given(
    rows_a=st.sets(st.integers(min_value=0, max_value=100)),
    rows_b=st.sets(st.integers(min_value=0, max_value=100)),
)
def test_rowset_algebra_matches_set_semantics(rows_a, rows_b):
    """RowSet union/intersection/difference mirror Python sets."""
    a, b = RowSet(rows_a), RowSet(rows_b)
    assert set(a | b) == rows_a | rows_b
    assert set(a & b) == rows_a & rows_b
    assert set(a - b) == rows_a - rows_b
    assert a.isdisjoint(b) == rows_a.isdisjoint(rows_b)


@settings(max_examples=50, deadline=None)
@given(rows=st.sets(st.integers(min_value=0, max_value=200)))
def test_rowset_spans_roundtrip(rows):
    """Decomposing into spans and expanding them loses nothing."""
    rs = RowSet(rows)
    expanded = set()
    for start, stop in rs.spans():
        assert start < stop
        expanded |= set(range(start, stop))
    assert expanded == rows


# ---------------------------------------------------------------------------
# a tiny mutation machine: interleave appends/deletes/compactions and check
# the table + both index kinds agree with a model dict afterwards
# ---------------------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("compact"), st.just(0)),
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(ops=operations)
def test_table_and_indexes_match_model(ops):
    """After any mutation sequence, table + indexes == model."""
    schema = Schema.of(t="timestamp", v="int")
    table = Table(schema, "m")
    hash_index = HashIndex(table, "v")
    sorted_index = SortedIndex(table, "t")
    model: dict[int, tuple[float, int]] = {}  # rid -> (t, v)
    next_t = 0.0

    for op, arg in ops:
        if op == "append":
            rid = table.append((next_t, arg))
            model[rid] = (next_t, arg)
            next_t += 1.0
        elif op == "delete":
            live = sorted(model)
            if live:
                victim = live[arg % len(live)]
                table.delete(victim)
                del model[victim]
        else:
            remap = table.compact()
            if remap:
                model = {remap[rid]: value for rid, value in model.items()}

    assert len(table) == len(model)
    assert set(table.live_rows()) == set(model)
    # hash index agrees for every value
    for v in range(10):
        expected = {rid for rid, (_, value) in model.items() if value == v}
        assert set(hash_index.lookup(v)) == expected
    # sorted index returns everything in t order
    expected_order = [rid for rid, _ in sorted(model.items(), key=lambda kv: kv[1][0])]
    assert sorted_index.ascending() == expected_order
    # neighbour navigation agrees with rid order
    live_sorted = sorted(model)
    for i, rid in enumerate(live_sorted):
        prev_rid = live_sorted[i - 1] if i > 0 else None
        next_rid = live_sorted[i + 1] if i + 1 < len(live_sorted) else None
        assert table.neighbours(rid) == (prev_rid, next_rid)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-100, max_value=100), max_size=50),
    low=st.integers(min_value=-110, max_value=110),
    high=st.integers(min_value=-110, max_value=110),
)
def test_sorted_index_range_matches_filter(values, low, high):
    """Index range scan == brute-force filter, any bounds."""
    schema = Schema.of(t="float", v="int")
    table = Table(schema, "m")
    index = SortedIndex(table, "t")
    for i, v in enumerate(values):
        table.append((float(v), i))
    expected = {
        rid
        for rid, (t, _) in ((rid, table.row(rid)) for rid in table.live_rows())
        if low <= t <= high
    }
    assert set(index.range(float(low), float(high))) == expected
