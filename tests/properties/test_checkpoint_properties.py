"""Property-based tests of checkpoint round-trips and vault conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.core.vault import SummaryVault
from repro.fungi import EGIFungus, LinearDecayFungus
from repro.storage import Schema


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-100, max_value=100), max_size=30),
    pre_ticks=st.integers(min_value=0, max_value=10),
    rate=st.sampled_from([0.05, 0.1, 0.3]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_checkpoint_roundtrip_preserves_rows(tmp_path_factory, values, pre_ticks, rate, seed):
    """save → load reproduces rows, freshness, and clock exactly."""
    directory = tmp_path_factory.mktemp("ckpt")
    db = FungusDB(seed=seed)
    db.create_table("r", Schema.of(v="int"), fungus=LinearDecayFungus(rate=rate))
    half = len(values) // 2
    db.insert_many("r", [{"v": v} for v in values[:half]])
    db.tick(pre_ticks)
    db.insert_many("r", [{"v": v} for v in values[half:]])

    save_checkpoint(db, directory)
    loaded = load_checkpoint(directory)

    assert loaded.now == db.now
    assert loaded.table("r").rows() == db.table("r").rows()


@settings(max_examples=15, deadline=None)
@given(
    n_rows=st.integers(min_value=0, max_value=40),
    ticks=st.integers(min_value=0, max_value=60),
    half_life=st.sampled_from([2.0, 10.0, 40.0]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_vault_conserves_rows_through_composting(n_rows, ticks, half_life, seed):
    """live + vault (fresh + compost) always equals ever-inserted."""
    vault = SummaryVault(half_life=half_life, compost_below=0.3)
    db = FungusDB(seed=seed, store=vault)
    db.create_table(
        "r", Schema.of(v="int"), fungus=EGIFungus(seeds_per_cycle=2, decay_rate=0.4)
    )
    db.insert_many("r", [{"v": i} for i in range(n_rows)])
    db.tick(ticks)
    merged = db.merged_summary("r")
    summarised = merged.row_count if merged else 0
    assert db.extent("r") + summarised == n_rows
