"""Dual-backend equivalence of the vectorized decay kernels.

The numpy kernels (``kernels=True``) and the pure-python scalar
fallback (``kernels=False``) must be *bit-identical*: same freshness
columns, same exhausted sets, same per-tuple decay event streams —
across random schedules of batch mutations, pins, evictions and
mid-run compaction. ``_SMALL_BATCH`` is pinned to 0 in half the cases
so even tiny batches exercise the vector kernel rather than being
routed to the scalar one.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.table as core_table
from repro.core.clock import DecayClock
from repro.core.events import TupleDecayed, TupleDecayedBatch
from repro.core.table import DecayingTable
from repro.fungi import BlueCheeseFungus, EGIFungus
from repro.storage import RowSet, Schema
from repro.storage.vector import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized backend needs numpy"
)

_DEFAULT_SMALL_BATCH = core_table._SMALL_BATCH


@contextmanager
def small_batch(threshold: int):
    """Temporarily set the scalar-routing threshold (0 = always vector)."""
    core_table._SMALL_BATCH = threshold
    try:
        yield
    finally:
        core_table._SMALL_BATCH = _DEFAULT_SMALL_BATCH


def _build(kernels: bool, n_rows: int) -> tuple[DecayingTable, list]:
    clock = DecayClock()
    table = DecayingTable("r", Schema.of(v="int"), clock, kernels=kernels)
    events: list = []
    table.bus.subscribe(TupleDecayed, events.append)
    table.bus.subscribe(TupleDecayedBatch, lambda e: events.extend(e.expand()))
    for i in range(n_rows):
        table.insert({"v": i})
        clock.advance(1)
    return table, events


def _freshness_state(table: DecayingTable) -> list[tuple[int, float]]:
    return [
        (rid, table.freshness(rid))
        for rid in range(table.storage.allocated)
        if table.storage.is_live(rid)
    ]


def _drain_exhausted(table: DecayingTable, fungus) -> None:
    dead = sorted(table.exhausted)
    if dead:
        table.evict_exhausted_batch(reason="decay")
        for rid in dead:
            fungus.on_evicted(rid)


# one mutation step of a schedule: (op, rid-offsets, operand)
_STEP = st.tuples(
    st.sampled_from(["decay", "scale", "set", "pin", "unpin", "evict", "compact"]),
    st.lists(st.integers(min_value=0, max_value=59), min_size=0, max_size=20),
    st.floats(min_value=-0.5, max_value=1.5, allow_nan=False, width=64),
)


def _apply(table: DecayingTable, steps, n_rows: int) -> None:
    for op, offsets, operand in steps:
        live = [rid for rid in offsets if rid < n_rows and table.storage.is_live(rid)]
        rids = sorted(set(live))
        if op == "decay":
            table.decay_many(rids, abs(operand), "sched")
        elif op == "scale":
            table.scale_many(rids, min(abs(operand), 1.0), "sched")
        elif op == "set":
            table.set_freshness_many(rids, [operand] * len(rids), "sched")
        elif op == "pin":
            for rid in rids:
                table.pin(rid)
        elif op == "unpin":
            for rid in rids:
                table.unpin(rid)
        elif op == "evict" and rids:
            table.evict(RowSet(rids[:3]), reason="manual")
        elif op == "compact":
            table.compact()


class TestScheduleEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        steps=st.lists(_STEP, min_size=1, max_size=15),
        n_rows=st.integers(min_value=1, max_value=60),
        force_vector=st.booleans(),
    )
    def test_batch_mutator_schedules_are_backend_identical(
        self, steps, n_rows, force_vector
    ):
        """Random mutation schedules leave both backends bit-identical."""
        with small_batch(0 if force_vector else _DEFAULT_SMALL_BATCH):
            vec, vec_events = _build(True, n_rows)
            py, py_events = _build(False, n_rows)
            assert vec.supports_kernels and not py.supports_kernels

            _apply(vec, steps, n_rows)
            _apply(py, steps, n_rows)

        assert _freshness_state(vec) == _freshness_state(py)
        assert sorted(vec.exhausted) == sorted(py.exhausted)
        assert vec_events == py_events
        assert vec.bus.counts == py.bus.counts


class TestFungusEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=80),
        ticks=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.sampled_from([0.05, 0.2, 0.6]),
        force_vector=st.booleans(),
    )
    def test_egi_spread_is_backend_identical(
        self, n_rows, ticks, seed, rate, force_vector
    ):
        """EGI on the SpotSet engine evolves identically on both backends."""
        states = []
        with small_batch(0 if force_vector else _DEFAULT_SMALL_BATCH):
            for kernels in (True, False):
                table, events = _build(kernels, n_rows)
                fungus = EGIFungus(seeds_per_cycle=2, decay_rate=rate)
                rng = random.Random(seed)
                for _ in range(ticks):
                    fungus.cycle(table, rng)
                    # evict exhausted rows so spots fragment on tombstones
                    _drain_exhausted(table, fungus)
                states.append(
                    (
                        _freshness_state(table),
                        sorted(table.exhausted),
                        events,
                        fungus.infected,
                    )
                )
        assert states[0] == states[1]

    @settings(max_examples=15, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=60),
        ticks=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=2**16),
        force_vector=st.booleans(),
    )
    def test_blue_cheese_is_backend_identical(
        self, n_rows, ticks, seed, force_vector
    ):
        states = []
        with small_batch(0 if force_vector else _DEFAULT_SMALL_BATCH):
            for kernels in (True, False):
                table, events = _build(kernels, n_rows)
                fungus = BlueCheeseFungus(
                    max_spots=2, base_rate=0.15, acceleration=0.5
                )
                rng = random.Random(seed)
                for _ in range(ticks):
                    fungus.cycle(table, rng)
                    _drain_exhausted(table, fungus)
                states.append(
                    (_freshness_state(table), sorted(table.exhausted), events)
                )
        assert states[0] == states[1]

    @settings(max_examples=20, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=60),
        ticks=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
        compact_every=st.integers(min_value=1, max_value=5),
    )
    def test_egi_with_midrun_compaction_is_backend_identical(
        self, n_rows, ticks, seed, compact_every
    ):
        """Compaction remaps spots identically on both backends."""
        states = []
        with small_batch(0):
            for kernels in (True, False):
                table, _ = _build(kernels, n_rows)
                fungus = EGIFungus(seeds_per_cycle=2, decay_rate=0.5)
                rng = random.Random(seed)
                for step in range(ticks):
                    fungus.cycle(table, rng)
                    _drain_exhausted(table, fungus)
                    if step % compact_every == compact_every - 1:
                        remap = table.compact()
                        if remap:
                            fungus.on_compacted(remap)
                states.append(
                    (
                        _freshness_state(table),
                        sorted(table.exhausted),
                        fungus.infected,
                    )
                )
        assert states[0] == states[1]


class TestPinEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=50),
        pin_offsets=st.lists(st.integers(min_value=0, max_value=49), max_size=10),
        amount=st.floats(
            min_value=0.0, max_value=1.5, allow_nan=False, width=64
        ),
        force_vector=st.booleans(),
    )
    def test_pins_are_honoured_identically(
        self, n_rows, pin_offsets, amount, force_vector
    ):
        """Pinned rows never lose freshness, on either backend."""
        results = []
        with small_batch(0 if force_vector else _DEFAULT_SMALL_BATCH):
            for kernels in (True, False):
                table, _ = _build(kernels, n_rows)
                pinned = sorted({o for o in pin_offsets if o < n_rows})
                for rid in pinned:
                    table.pin(rid)
                table.decay_many(list(range(n_rows)), amount, "sched")
                results.append(_freshness_state(table))
                for rid in pinned:
                    assert table.freshness(rid) == 1.0
        assert results[0] == results[1]
