"""Dual-backend equivalence of the vectorized query executor.

The mask-compiled path (numpy-backed tables, ``mode: vectorized``) and
the row-at-a-time fallback (pure-python tables) must be
*bit-identical*: the same SQL over the same rows yields the same
ResultSet (rows, columns, order), the same execution statistics, the
same storage observer streams (append/delete callbacks — Law 2's
deletions included), and the same surviving extent afterwards — across
randomly generated predicates spanning every mask-compilable shape
(comparisons, arithmetic with ``%`` and ``/``, BETWEEN, IN with NULL
items, IS NULL, AND/OR/NOT) *and* the non-compilable shapes that force
the hybrid path (string equality conjuncts).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import QueryEngine
from repro.storage import Catalog, Schema, Table
from repro.storage.schema import ColumnDef, DataType
from repro.storage.vector import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized backend needs numpy"
)


class _Recorder:
    """A TableObserver that journals every append/delete it sees."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_append(self, rid: int, values: tuple) -> None:
        self.events.append(("append", rid, values))

    def on_delete(self, rid: int, values: tuple) -> None:
        self.events.append(("delete", rid, values))

    def on_compact(self, remap) -> None:
        self.events.append(("compact", tuple(sorted(remap.items()))))


def _build(vector: bool, rows: list[tuple]) -> tuple[QueryEngine, Table, _Recorder]:
    catalog = Catalog()
    schema = Schema(
        [
            ColumnDef("t", DataType.TIMESTAMP),
            ColumnDef("f", DataType.FLOAT),
            ColumnDef("v", DataType.INT, nullable=True),
            ColumnDef("key", DataType.STR, nullable=True),
        ]
    )
    table = Table(
        schema,
        name="r",
        vector_columns=("t", "f") if vector else (),
        freshness_column="f",
    )
    recorder = _Recorder()
    table.add_observer(recorder)
    for row in rows:
        table.append(row)
    catalog.register(table)
    return QueryEngine(catalog), table, recorder


def _dump(table: Table) -> list[tuple[int, tuple]]:
    """The live extent, rid-ordered, original Python values."""
    rids = table.live_list()
    columns = [table.gather(name, rids) for name in table.schema.names]
    return [
        (rid, tuple(col[i] for col in columns)) for i, rid in enumerate(rids)
    ]


# -- row and predicate generators ---------------------------------------

_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40).map(float),  # t
        st.sampled_from([1.0, 1.0, 0.75, 0.5, 0.25, 0.0]),  # f
        st.one_of(st.none(), st.integers(min_value=-30, max_value=30)),  # v
        st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),  # key
    ),
    min_size=0,
    max_size=40,
)

_numeric_column = st.sampled_from(["v", "t", "f"])
_comparator = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])
_int_literal = st.integers(min_value=-30, max_value=30)


@st.composite
def _atoms(draw) -> str:
    kind = draw(
        st.sampled_from(
            ["cmp", "arith", "mod", "div", "between", "inlist", "isnull", "str"]
        )
    )
    col = draw(_numeric_column)
    op = draw(_comparator)
    k = draw(_int_literal)
    if kind == "cmp":
        rhs = f"{draw(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, width=64))!r}" if col == "f" else str(k)
        return f"{col} {op} {rhs}"
    if kind == "arith":
        return f"{col} * 2 + 1 {op} {k}"
    if kind == "mod":
        divisor = draw(st.integers(min_value=1, max_value=9))
        return f"v % {divisor} = {draw(st.integers(min_value=-2, max_value=8))}"
    if kind == "div":
        divisor = draw(st.sampled_from([2, 4, -3]))
        return f"{col} / {divisor} {op} {k}"
    if kind == "between":
        low, high = sorted((k, draw(_int_literal)))
        negated = "NOT " if draw(st.booleans()) else ""
        return f"{col} {negated}BETWEEN {low} AND {high}"
    if kind == "inlist":
        items = draw(
            st.lists(
                st.one_of(_int_literal.map(str), st.just("NULL")),
                min_size=1,
                max_size=4,
            )
        )
        negated = "NOT " if draw(st.booleans()) else ""
        return f"v {negated}IN ({', '.join(items)})"
    if kind == "isnull":
        negated = " NOT" if draw(st.booleans()) else ""
        return f"{draw(st.sampled_from(['v', 'key']))} IS{negated} NULL"
    # a string conjunct is never mask-compilable: forces hybrid mode
    negated = draw(st.booleans())
    return f"key {'!=' if negated else '='} '{draw(st.sampled_from(['a', 'b']))}'"


@st.composite
def _predicates(draw) -> str:
    left = draw(_atoms())
    shape = draw(st.sampled_from(["atom", "and", "or", "not", "and3"]))
    if shape == "atom":
        return left
    if shape == "not":
        return f"NOT ({left})"
    right = draw(_atoms())
    if shape == "and":
        return f"{left} AND {right}"
    if shape == "or":
        return f"({left}) OR ({right})"
    third = draw(_atoms())
    return f"{left} AND {right} AND {third}"


@st.composite
def _statements(draw) -> str:
    predicate = draw(_predicates())
    kind = draw(
        st.sampled_from(["select", "select", "count", "agg", "consume", "delete"])
    )
    if kind == "delete":
        return f"DELETE FROM r WHERE {predicate}"
    if kind == "count":
        return f"SELECT count(*) FROM r WHERE {predicate}"
    if kind == "agg":
        return (
            f"SELECT key, count(*) AS n, avg(v) FROM r WHERE {predicate} "
            "GROUP BY key ORDER BY key"
        )
    head = "CONSUME SELECT" if kind == "consume" else "SELECT"
    suffix = ""
    if draw(st.booleans()):
        suffix = " ORDER BY t, v"
        limit = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=9)))
        if limit is not None:
            suffix += f" LIMIT {limit}"
    return f"{head} t, f, v, key FROM r WHERE {predicate}{suffix}"


def _stats_tuple(result) -> tuple:
    s = result.stats
    return (s.rows_scanned, s.rows_matched, s.rows_consumed)


class TestStatementEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(rows=_rows, statements=st.lists(_statements(), min_size=1, max_size=4))
    def test_statement_schedules_are_backend_identical(self, rows, statements):
        """Random statement schedules leave both backends bit-identical.

        Statements run in sequence on *both* engines so later ones see
        the extent earlier CONSUME/DELETE statements carved out.
        """
        vec_engine, vec_table, vec_rec = _build(True, rows)
        py_engine, py_table, py_rec = _build(False, rows)
        assert vec_table.vectorized and not py_table.vectorized

        for sql in statements:
            rv = vec_engine.execute(sql)
            rp = py_engine.execute(sql)
            assert rv.columns == rp.columns, sql
            assert rv.rows == rp.rows, sql
            assert sorted(rv.consumed) == sorted(rp.consumed), sql
            assert _stats_tuple(rv) == _stats_tuple(rp), sql

        assert vec_rec.events == py_rec.events
        assert _dump(vec_table) == _dump(py_table)
        assert vec_table.rot_spans() == py_table.rot_spans()

    @settings(max_examples=60, deadline=None)
    @given(rows=_rows, sql=_statements())
    def test_analyzed_actuals_match_on_both_backends(self, rows, sql):
        """EXPLAIN ANALYZE's masked paths report true actual rows."""
        import re

        totals = []
        for vector in (True, False):
            engine, _, _ = _build(vector, rows)
            expected = len(engine.execute(sql))
            fresh_engine, _, _ = _build(vector, rows)
            result = fresh_engine.execute(f"EXPLAIN ANALYZE {sql}")
            match = re.match(r"total: (\d+) row\(s\)", result.rows[-1][0])
            assert match is not None, result.rows
            assert int(match.group(1)) == expected, sql
            totals.append(expected)
        assert totals[0] == totals[1]
