"""Property-based tests of the health report's accounting identities."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import DecayClock
from repro.core.health import measure_health
from repro.core.table import DecayingTable
from repro.storage import RowSet, Schema


@st.composite
def mutated_tables(draw):
    """A decaying table after random freshness edits and evictions."""
    n = draw(st.integers(min_value=0, max_value=40))
    clock = DecayClock()
    table = DecayingTable("r", Schema.of(v="int"), clock)
    for i in range(n):
        table.insert({"v": i})
    freshness_edits = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(n - 1, 0)),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            max_size=30,
        )
    )
    for rid, f in freshness_edits:
        if n and table.is_live(rid):
            table.set_freshness(rid, f)
    evictions = draw(st.sets(st.integers(min_value=0, max_value=max(n - 1, 0)), max_size=15))
    live_evictions = RowSet(rid for rid in evictions if n and table.is_live(rid))
    if live_evictions:
        table.evict(live_evictions, "manual")
    pins = draw(st.sets(st.integers(min_value=0, max_value=max(n - 1, 0)), max_size=5))
    for rid in pins:
        if n and table.is_live(rid):
            table.pin(rid)
    return table


@settings(max_examples=60, deadline=None)
@given(table=mutated_tables())
def test_band_counts_partition_the_extent(table):
    """fresh + stale + rotten == extent, always."""
    health = measure_health(table)
    assert health.fresh_count + health.stale_count + health.rotten_count == health.extent


@settings(max_examples=60, deadline=None)
@given(table=mutated_tables())
def test_holes_account_for_all_tombstones(table):
    """The hole spans cover exactly the tombstoned row ids."""
    health = measure_health(table)
    hole_rows = sum(stop - start for start, stop in health.holes)
    assert hole_rows == health.tombstones
    assert health.extent + health.tombstones == health.allocated


@settings(max_examples=60, deadline=None)
@given(table=mutated_tables())
def test_rot_spots_cover_exactly_the_rotten_rows(table):
    """Every rotten live row is inside exactly one reported spot."""
    from repro.core.freshness import ROTTEN_THRESHOLD

    health = measure_health(table)
    rotten = {
        rid for rid in table.live_rows() if table.freshness(rid) < ROTTEN_THRESHOLD
    }
    in_spots = set()
    for start, stop in health.rot_spots:
        for rid in range(start, stop):
            if table.is_live(rid):
                in_spots.add(rid)
    # spots may bridge tombstone gaps, but live membership must match
    assert {rid for rid in in_spots if rid in rotten} == rotten


@settings(max_examples=60, deadline=None)
@given(table=mutated_tables())
def test_edible_fraction_bounds(table):
    """Edible fraction is a probability and matches the band counts."""
    health = measure_health(table)
    assert 0.0 <= health.edible_fraction <= 1.0
    if health.extent:
        expected = 1.0 - health.rotten_count / health.extent
        assert abs(health.edible_fraction - expected) < 1e-12
