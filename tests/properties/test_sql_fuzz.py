"""Fuzzing the SQL pipeline with generated ASTs.

Two guarantees:

* ``parse(stmt.to_sql()) == stmt`` for every generatable statement —
  the printer and parser are exact inverses;
* executing any generated statement either succeeds or raises a
  :class:`FungusError` subclass — never a bare Python crash.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FungusError
from repro.query import QueryEngine, parse
from repro.query.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    OrderItem,
    Projection,
    SelectStmt,
    TableRef,
    UnaryOp,
)
from repro.storage import Catalog, Schema

# -- expression strategy ------------------------------------------------

# non-negative numbers only: the parser produces "-1" as UnaryOp('-',
# Literal(1)), so a generated Literal(-1) could never round-trip
literals = st.one_of(
    st.integers(min_value=0, max_value=100).map(Literal),
    st.floats(min_value=0, max_value=100, allow_nan=False).map(
        lambda f: Literal(round(f, 3))
    ),
    st.sampled_from(["a", "b", "it's"]).map(Literal),
    st.booleans().map(Literal),
    st.just(Literal(None)),
)

columns = st.sampled_from([ColumnRef("v"), ColumnRef("k"), ColumnRef("t")])


def expressions(depth: int = 2):
    base = st.one_of(literals, columns)
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "/", "=", "<", ">"]), sub, sub).map(
            lambda t: BinaryOp(*t)
        ),
        sub.map(lambda e: UnaryOp("-", e)),
        sub.map(lambda e: IsNull(e)),
        st.tuples(sub, st.lists(literals, min_size=1, max_size=3), st.booleans()).map(
            lambda t: InList(t[0], tuple(t[1]), negated=t[2])
        ),
        st.tuples(sub, literals, literals).map(lambda t: Between(*t)),
        st.tuples(st.sampled_from(["abs", "coalesce"]), sub).map(
            lambda t: FuncCall(t[0], (t[1],))
        ),
    )


predicates = st.tuples(
    st.sampled_from(["=", "<", ">", "<=", ">=", "!="]), expressions(1), expressions(1)
).map(lambda t: BinaryOp(*t))


def _alias_uniquely(projections: list[Projection]) -> tuple[Projection, ...]:
    """Give every projection a distinct alias so output names never clash."""
    return tuple(Projection(p.expr, f"c{i}") for i, p in enumerate(projections))


statements = st.builds(
    SelectStmt,
    projections=st.lists(
        st.builds(Projection, expr=expressions(2)),
        min_size=1,
        max_size=3,
    ).map(_alias_uniquely),
    table=st.just(TableRef("r")),
    where=st.one_of(st.none(), predicates),
    order_by=st.lists(
        st.builds(OrderItem, expr=expressions(1), ascending=st.booleans()),
        max_size=2,
    ).map(tuple),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
    consume=st.booleans(),
    distinct=st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(stmt=statements)
def test_printer_parser_inverse(stmt):
    assert parse(stmt.to_sql()) == stmt


@settings(max_examples=200, deadline=None)
@given(stmt=statements)
def test_execution_never_crashes_unexpectedly(stmt):
    catalog = Catalog()
    table = catalog.create_table("r", Schema.of(t="timestamp", v="int", k="str"))
    for i in range(10):
        table.append((float(i), i * 3 - 10, f"k{i % 3}"))
    engine = QueryEngine(catalog)
    try:
        result = engine.execute(stmt)
    except FungusError:
        return  # typed rejection is fine
    # if it ran, basic result-shape invariants hold
    assert len(result.columns) == len(stmt.projections)
    if stmt.limit is not None:
        assert len(result.rows) <= stmt.limit
    if stmt.consume:
        assert len(result.consumed) + len(table) == 10
