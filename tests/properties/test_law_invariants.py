"""Property-based tests of the paper's two natural laws.

These are the invariants the whole reproduction stands on:

* Law 1 — under any pure-decay fungus, freshness never increases, and
  a relation left alone long enough completely disappears.
* Law 2 — for any predicate, ``A = σ_P(R)`` and ``R' = R − A``:
  the answer set and the reduced extent partition the old extent.
* Conservation — with distillation on, every tuple that ever entered
  R is either live or summarised; none vanish unseen.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import DecayClock
from repro.core.db import FungusDB
from repro.core.table import DecayingTable
from repro.fungi import (
    BlueCheeseFungus,
    EGIFungus,
    ExponentialDecayFungus,
    LinearDecayFungus,
    RetentionFungus,
)
from repro.storage import Schema

pure_decay_fungi = st.sampled_from(
    [
        lambda: RetentionFungus(max_age=5),
        lambda: LinearDecayFungus(rate=0.3),
        lambda: ExponentialDecayFungus(half_life=2, evict_below=0.05),
        lambda: EGIFungus(seeds_per_cycle=2, decay_rate=0.4),
        lambda: BlueCheeseFungus(max_spots=2, base_rate=0.2, acceleration=0.5),
    ]
)


@settings(max_examples=25, deadline=None)
@given(
    make_fungus=pure_decay_fungi,
    n_rows=st.integers(min_value=1, max_value=40),
    cycles=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_law1_freshness_never_increases(make_fungus, n_rows, cycles, seed):
    """No pure-decay fungus ever raises any tuple's freshness."""
    clock = DecayClock()
    table = DecayingTable("r", Schema.of(v="int"), clock)
    for i in range(n_rows):
        table.insert({"v": i})
    fungus = make_fungus()
    rng = random.Random(seed)
    previous = {rid: table.freshness(rid) for rid in table.live_rows()}
    for _ in range(cycles):
        clock.advance(1)
        fungus.cycle(table, rng)
        for rid in table.live_rows():
            assert table.freshness(rid) <= previous[rid] + 1e-12
            previous[rid] = table.freshness(rid)


@settings(max_examples=15, deadline=None)
@given(
    make_fungus=pure_decay_fungi,
    n_rows=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_law1_complete_disappearance(make_fungus, n_rows, seed):
    """Left alone, every fungus eventually removes the whole relation."""
    db = FungusDB(seed=seed)
    db.create_table("r", Schema.of(v="int"), fungus=make_fungus())
    db.insert_many("r", [{"v": i} for i in range(n_rows)])
    for _ in range(500):
        db.tick(1)
        if db.extent("r") == 0:
            break
    assert db.extent("r") == 0


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=60),
    low=st.integers(min_value=-60, max_value=60),
    span=st.integers(min_value=0, max_value=60),
)
def test_law2_partition(values, low, span):
    """CONSUME splits R exactly into answer set + reduced extent."""
    db = FungusDB(seed=1)
    db.create_table("r", Schema.of(v="int"), fungus=None)
    db.insert_many("r", [{"v": v} for v in values])
    high = low + span
    expected_answer = sorted(v for v in values if low <= v <= high)
    expected_rest = sorted(v for v in values if not (low <= v <= high))

    res = db.query(f"CONSUME SELECT v FROM r WHERE v BETWEEN {low} AND {high}")
    assert sorted(res.column("v")) == expected_answer
    remaining = db.query("SELECT v FROM r")
    assert sorted(remaining.column("v")) == expected_rest
    assert len(res.consumed) + db.extent("r") == len(values)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=20), min_size=0, max_size=40),
    thresholds=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=5),
)
def test_law2_consume_is_idempotent_per_predicate(values, thresholds):
    """Re-running the same consuming query returns an empty answer."""
    db = FungusDB(seed=2)
    db.create_table("r", Schema.of(v="int"), fungus=None)
    db.insert_many("r", [{"v": v} for v in values])
    total_consumed = 0
    for threshold in thresholds:
        first = db.query(f"CONSUME SELECT v FROM r WHERE v = {threshold}")
        second = db.query(f"CONSUME SELECT v FROM r WHERE v = {threshold}")
        assert len(second) == 0
        total_consumed += len(first)
    assert total_consumed + db.extent("r") == len(values)


@settings(max_examples=15, deadline=None)
@given(
    n_rows=st.integers(min_value=0, max_value=50),
    cycles=st.integers(min_value=0, max_value=30),
    consume_at=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_nothing_dies_unseen(n_rows, cycles, consume_at, seed):
    """live + summarised == ever-inserted, through decay AND consume."""
    db = FungusDB(seed=seed)
    db.create_table(
        "r",
        Schema.of(v="int"),
        fungus=EGIFungus(seeds_per_cycle=2, decay_rate=0.4),
        distill_on_evict=True,
        distill_on_consume=True,
    )
    db.insert_many("r", [{"v": i} for i in range(n_rows)])
    for tick in range(cycles):
        if tick == consume_at:
            db.query("CONSUME SELECT v FROM r WHERE v % 3 = 0")
        db.tick(1)
    merged = db.merged_summary("r")
    summarised = merged.row_count if merged else 0
    assert db.extent("r") + summarised == n_rows
