"""The acceptance test: the paper's whole story in one run.

Walks a single database through everything the reproduction claims:
ingest → Law-1 decay with rot spots → Law-2 consuming queries →
distillation → vault composting → checkpoint/restore → complete
disappearance — asserting the paper's invariants at every stage.
"""

import pytest

from repro import (
    EGIFungus,
    FungusDB,
    Schema,
    SummaryVault,
    load_checkpoint,
    save_checkpoint,
)

INGESTED = 600


@pytest.fixture(scope="module")
def story(tmp_path_factory):
    """Run the full lifecycle once; stages assert against the result."""
    vault = SummaryVault(half_life=25.0, compost_below=0.3)
    db = FungusDB(seed=2015, store=vault)
    db.create_table(
        "events",
        Schema.of(kind="str", value="float"),
        fungus=EGIFungus(seeds_per_cycle=2, decay_rate=0.3),
    )

    # stage 1: ingest with the clock running (Law 1 active throughout)
    for tick in range(60):
        db.query(
            "INSERT INTO events VALUES "
            + ", ".join(
                f"('k{(tick + i) % 7}', {float(tick * 10 + i)})" for i in range(10)
            )
        )
        db.tick(1)
    extent_after_ingest = db.extent("events")

    # stage 2: Law 2 — a consuming query carries off one kind entirely
    consumed = db.query("CONSUME SELECT kind, value FROM events WHERE kind = 'k3'")

    # stage 3: quiesce until the relation completely disappears
    ticks_to_extinction = 0
    while db.extent("events") > 0 and ticks_to_extinction < 2_000:
        db.tick(1)
        ticks_to_extinction += 1

    # stage 4: checkpoint the post-mortem database and restore it
    directory = tmp_path_factory.mktemp("story")
    save_checkpoint(db, directory)
    restored = load_checkpoint(directory)

    return {
        "db": db,
        "vault": vault,
        "extent_after_ingest": extent_after_ingest,
        "consumed": consumed,
        "ticks_to_extinction": ticks_to_extinction,
        "restored": restored,
    }


class TestTheStory:
    def test_decay_ran_during_ingest(self, story):
        assert 0 < story["extent_after_ingest"] < INGESTED

    def test_consume_partitioned_the_extent(self, story):
        consumed = story["consumed"]
        assert consumed.stats.rows_consumed == len(consumed.rows)
        assert all(kind == "k3" for kind, _ in consumed.rows)

    def test_complete_disappearance(self, story):
        assert story["db"].extent("events") == 0
        assert story["ticks_to_extinction"] > 0

    def test_nothing_died_unseen(self, story):
        merged = story["db"].merged_summary("events")
        assert merged.row_count == INGESTED

    def test_vault_composted(self, story):
        assert story["vault"].composted_summaries > 0
        assert story["vault"].compost("events") is not None

    def test_summaries_still_answer_history(self, story):
        merged = story["db"].merged_summary("events")
        kind = merged.column("kind")
        assert kind.estimate_distinct() == pytest.approx(7, abs=1)
        assert kind.maybe_contains("k3")  # the consumed kind is remembered
        value = merged.column("value")
        assert value.estimate_mean() == pytest.approx(
            sum(t * 10 + i for t in range(60) for i in range(10)) / INGESTED,
            rel=0.01,
        )

    def test_restored_database_remembers_everything(self, story):
        restored = story["restored"]
        assert restored.extent("events") == 0
        merged = restored.merged_summary("events")
        assert merged.row_count == INGESTED
        original = story["db"].merged_summary("events")
        assert merged.column("value").estimate_quantile(0.5) == pytest.approx(
            original.column("value").estimate_quantile(0.5)
        )

    def test_event_ledger_balances(self, story):
        counts = story["db"].bus.counts
        assert counts["TupleInserted"] == INGESTED
        assert counts["TupleEvicted"] == INGESTED
        assert counts["TupleConsumed"] == story["consumed"].stats.rows_consumed
