"""Log compaction: "what to decay" + consuming incident reports.

A web-log table where decay policy is *content-aware* (the paper's
"what to decay" axis), combined with Law-2 consumption:

* successful requests (status 200/304) rot quickly — they only matter
  in aggregate, which the distiller preserves;
* errors rot slowly — kept around for debugging;
* when an incident review happens, the 500s are CONSUMEd: inspected
  once, summarised, removed.

Run: ``python examples/log_compaction.py``
"""

from repro import CompositeFungus, FungusDB, PredicateFungus
from repro.workload import WebLogGenerator


def main() -> None:
    db = FungusDB(seed=99)
    generator = WebLogGenerator(num_urls=50, num_users=200, seed=99)

    fungus = CompositeFungus(
        [
            PredicateFungus(lambda a: a["status"] in (200, 304), rate=0.10, name="rot-success"),
            PredicateFungus(lambda a: a["status"] in (404, 500), rate=0.01, name="keep-errors"),
        ]
    )
    db.create_table("logs", generator.schema, fungus=fungus)

    for tick in range(80):
        db.insert_many("logs", [generator.generate(tick) for _ in range(25)])
        db.tick(1)

    print(f"extent after 80 ticks: {db.extent('logs')}")
    mix = db.query(
        "SELECT status, count(*) AS live, avg(f) AS mean_f "
        "FROM logs GROUP BY status ORDER BY status"
    )
    print("\nsurviving rows by status (errors outlive successes):")
    print(mix.pretty())

    # incident review: inspect the 500s once, then remove them (Law 2)
    incident = db.query(
        "CONSUME SELECT url, latency_ms, user FROM logs WHERE status = 500"
    )
    print(f"\nincident review consumed {incident.stats.rows_consumed} error rows")
    slowest = sorted(incident.to_dicts(), key=lambda r: -r["latency_ms"])[:3]
    for row in slowest:
        print(f"  {row['url']:>12} {row['latency_ms']:8.1f} ms  {row['user']}")

    # the aggregate view of everything that ever rotted away
    merged = db.merged_summary("logs")
    print(f"\n{merged.describe()}")
    url_summary = merged.column("url")
    print(f"  ~distinct urls ever seen: {url_summary.estimate_distinct():.0f}")
    print(f"  ~requests for /page/1:    {url_summary.estimate_frequency('/page/1')}")
    print(f"  all-time p95 latency:     {merged.column('latency_ms').estimate_quantile(0.95):.1f} ms")
    print(f"  was /page/3 ever logged?  {url_summary.maybe_contains('/page/3')}")


if __name__ == "__main__":
    main()
