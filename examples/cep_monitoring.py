"""CEP monitoring next to a fungus table.

The paper's conclusion points at Complex Event Processing as prior art
for data that expires. This demo runs both side by side on one market
feed:

* a CEP pattern ``SEQ(spike, crash) WITHIN 10`` whose partial matches
  expire — CEP's own data rotting;
* a windowed stream aggregation (VWAP per symbol per 20 ticks);
* a FungusDB table of the same ticks, rotting under retention, where
  a consuming query implements "inspect anomalies once, then drop".

Run: ``python examples/cep_monitoring.py``
"""

from repro import FungusDB, RetentionFungus
from repro.stream import (
    Pattern,
    PatternMatcher,
    StreamElement,
    StreamPipeline,
    TumblingWindows,
)
from repro.workload import MarketTickGenerator


def main() -> None:
    generator = MarketTickGenerator(symbols=("AAA", "BBB", "CCC"), seed=5)

    # arm 1: CEP — price spike followed by a crash within 10 ticks
    pattern = Pattern.sequence(
        ("spike", lambda e: e.value("price") > 101.5),
        ("crash", lambda e: e.value("price") < 99.0),
        within=10.0,
    )
    matcher = PatternMatcher(pattern)

    # arm 2: stream pipeline — per-symbol volume-weighted average price
    vwaps: list = []

    def vwap(elements: list[StreamElement]) -> float:
        total_volume = sum(e.value("volume") for e in elements)
        return sum(e.value("price") * e.value("volume") for e in elements) / total_volume

    pipeline = (
        StreamPipeline()
        .key_by(lambda e: e.value("symbol"))
        .window(TumblingWindows(20.0), aggregate=vwap)
        .sink(vwaps.append)
    )

    # arm 3: the fungus table with 30-tick retention
    db = FungusDB(seed=5)
    db.create_table("ticks", generator.schema, fungus=RetentionFungus(max_age=30))

    matches = 0
    for tick in range(200):
        row = generator.generate(tick)
        db.insert("ticks", row)
        element = StreamElement(float(tick), row)
        matches += len(matcher.push(element))
        pipeline.push(element)
        db.tick(1)
    pipeline.flush()

    print(f"CEP matches (spike->crash within 10): {matches}")
    print(f"CEP partial matches expired (CEP's own rotting): {matcher.runs_expired}")
    print(f"windows aggregated: {len(vwaps)}; last 3 VWAPs:")
    for key, window, value in vwaps[-3:]:
        print(f"  {key} [{window.start:>5.0f},{window.end:>5.0f}): {value:.2f}")

    print(f"\nfungus table extent (30-tick retention): {db.extent('ticks')}")
    res = db.query(
        "SELECT symbol, count(*) AS n, avg(price) AS avg_price "
        "FROM ticks GROUP BY symbol ORDER BY symbol"
    )
    print(res.pretty())

    # inspect once, then drop: consume the big-volume ticks
    big = db.query("CONSUME SELECT symbol, price, volume FROM ticks WHERE volume > 900")
    print(f"\nconsumed {big.stats.rows_consumed} whale ticks; extent now {db.extent('ticks')}")
    print(f"summaries held for 'ticks': {len(db.summaries('ticks'))}")


if __name__ == "__main__":
    main()
