"""Sensor pipeline: decay + access-refresh + consuming alert queries.

An IoT scenario from the paper's "data ingestion pipeline" world:

* readings rot under EGI, *but* sensors that dashboards keep querying
  stay fresh (AccessRefreshFungus — "taken care of by its owner");
* an alerting job CONSUMEs anomalous readings each tick — cooked into
  the answer immediately, never rotting in storage;
* at the end, summaries answer history questions the live table no
  longer can.

Run: ``python examples/sensor_pipeline.py``
"""

from repro import AccessRefreshFungus, EGIFungus, FungusDB
from repro.workload import SensorGenerator


def main() -> None:
    db = FungusDB(seed=42)
    generator = SensorGenerator(num_sensors=10, seed=42)

    fungus = AccessRefreshFungus(
        EGIFungus(seeds_per_cycle=3, decay_rate=0.3),
        boost=0.4,
    )
    db.create_table("readings", generator.schema, fungus=fungus)

    alerts = 0
    for tick in range(120):
        db.insert_many("readings", [generator.generate(tick) for _ in range(15)])

        # the dashboard only ever watches sensors s000-s002; the access
        # hook reports the touched rows and the fungus refreshes them
        db.query("SELECT sensor, avg(temp) FROM readings WHERE sensor = 's000' GROUP BY sensor")
        db.query("SELECT count(*) FROM readings WHERE sensor = 's001'")

        # the alerting job consumes anomalies (Law 2)
        res = db.query("CONSUME SELECT sensor, temp FROM readings WHERE temp > 38.0")
        alerts += len(res)

        db.tick(1)

    print(f"after 120 ticks: extent={db.extent('readings')}, alerts consumed={alerts}")
    print(f"rows refreshed by dashboard access: {fungus.total_refreshed}")
    print(db.health("readings").describe())

    # watched sensors should be over-represented among survivors
    res = db.query(
        "SELECT sensor, count(*) AS live, avg(f) AS mean_f "
        "FROM readings GROUP BY sensor ORDER BY live DESC, sensor LIMIT 5"
    )
    print("\nsurvivors by sensor (watched sensors stay fresh):")
    print(res.pretty())

    # history questions via the summary store
    merged = db.merged_summary("readings")
    if merged is not None:
        print(f"\n{merged.describe()}")
        print(f"  readings ever ingested (live+summarised): "
              f"{db.extent('readings') + merged.row_count}")
        print(f"  all-time p50 temperature: {merged.column('temp').estimate_quantile(0.5):.2f}")
        consumed = [s for s in db.summaries('readings') if s.reason == 'consume']
        print(f"  alert batches summarised on consume: {len(consumed)}")


if __name__ == "__main__":
    main()
