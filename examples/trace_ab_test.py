"""Trace A/B test: one recorded workload, many decay policies.

The trace facility decouples the *workload* from the *configuration*:
record a session once, then replay the identical inserts, queries and
ticks against different fungi and compare outcomes fairly. Here the
same web-log session drives four policies, and we compare what each
keeps, evicts, and can still answer.

Run: ``python examples/trace_ab_test.py``
"""

import shutil
import tempfile
from pathlib import Path

from repro import (
    EGIFungus,
    FungusDB,
    NullFungus,
    RetentionFungus,
    Schema,
    SigmoidDecayFungus,
)
from repro.workload import RecordingDB, WebLogGenerator, replay_trace

SCHEMA = Schema.of(url="str", status="int", latency_ms="float", user="str")


def record_session(path: Path) -> None:
    """Record one interactive session: bursty ingest + periodic queries."""
    db = FungusDB(seed=33)
    db.create_table("logs", SCHEMA, fungus=NullFungus())
    recording = RecordingDB(db)
    generator = WebLogGenerator(num_urls=40, num_users=100, seed=33)
    for tick in range(80):
        burst = 30 if tick % 20 == 0 else 8
        for _ in range(burst):
            recording.insert("logs", generator.generate(tick))
        if tick % 10 == 5:
            recording.query("SELECT status, count(*) FROM logs GROUP BY status")
        if tick % 25 == 24:
            recording.query("CONSUME SELECT url FROM logs WHERE status = 500")
        recording.tick(1)
    events = recording.recorder.save(path)
    print(f"recorded {events} events to {path.name}")


def replay_against(path: Path, name: str, fungus) -> None:
    """Replay the trace against one policy and report the outcome."""
    db = FungusDB(seed=33)
    db.create_table("logs", SCHEMA, fungus=fungus)
    counts = replay_trace(path, db)
    merged = db.merged_summary("logs")
    summarised = merged.row_count if merged else 0
    answerable = db.extent("logs") + summarised
    print(
        f"{name:>22}: extent={db.extent('logs'):>4} summarised={summarised:>4} "
        f"answerable={answerable:>4} (events replayed: {sum(counts.values())})"
    )


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="fungus-trace-"))
    try:
        trace_path = directory / "session.jsonl"
        record_session(trace_path)
        print("\nidentical workload, four appetites:")
        replay_against(trace_path, "hoard (none)", NullFungus())
        replay_against(trace_path, "retention-15", RetentionFungus(max_age=15))
        replay_against(trace_path, "sigmoid mid=20", SigmoidDecayFungus(midlife=20, steepness=0.4))
        replay_against(trace_path, "EGI", EGIFungus(seeds_per_cycle=3, decay_rate=0.3))
        print("\nevery arm answers about the same history (live + summaries);")
        print("they differ only in how much stays raw versus distilled.")
    finally:
        shutil.rmtree(directory)


if __name__ == "__main__":
    main()
