"""Quickstart: the two natural laws of Big Data in ~60 lines.

Law 1 — data decays under a fungus on a periodic clock.
Law 2 — queries consume: answered data leaves the table, distilled
into summaries.

Run: ``python examples/quickstart.py``
"""

from repro import EGIFungus, FungusDB, Schema


def main() -> None:
    db = FungusDB(seed=7)

    # R(t, f, sensor, temp): t and f are added automatically
    db.create_table(
        "readings",
        Schema.of(sensor="str", temp="float"),
        fungus=EGIFungus(seeds_per_cycle=2, decay_rate=0.25),
    )

    # ingest a few ticks of data
    for tick in range(10):
        for i in range(20):
            db.insert("readings", {"sensor": f"s{i % 5}", "temp": 15.0 + (i * 7 % 20)})
        db.tick(1)  # Law 1: one decay cycle

    print(f"extent after ingest: {db.extent('readings')} tuples")
    print(db.health("readings").describe())

    # ordinary queries see the freshness column like any other
    fresh = db.query("SELECT sensor, count(*) AS n FROM readings WHERE f > 0.5 GROUP BY sensor ORDER BY sensor")
    print("\nfresh tuples per sensor:")
    print(fresh.pretty())

    # Law 2: a consuming query removes what it answers
    hot = db.query("CONSUME SELECT sensor, temp FROM readings WHERE temp > 30")
    print(f"\nconsumed {hot.stats.rows_consumed} hot readings; extent now {db.extent('readings')}")

    # keep rotting: the relation eventually disappears completely
    db.tick(50)
    print(f"extent after 50 more ticks: {db.extent('readings')}")

    # nothing died unseen: every departed tuple lives on in a summary
    summary = db.merged_summary("readings")
    print(f"\nsummary: {summary.describe()}")
    print(f"  ~distinct sensors ever: {summary.column('sensor').estimate_distinct():.1f}")
    print(f"  mean temp ever: {summary.column('temp').estimate_mean():.2f}")
    print(f"  p95 temp ever: {summary.column('temp').estimate_quantile(0.95):.2f}")


if __name__ == "__main__":
    main()
