"""Archive vault: the full lifecycle — rot, cook, compost, checkpoint.

Law 2's final clause says distilled knowledge may be "stored in a new
container subject to different data fungi". This demo runs the whole
chain on a market feed:

1. ticks rot in the live table under EGI (Law 1);
2. every rotting region is cooked into a summary (distill-on-evict);
3. the summaries live in a :class:`SummaryVault` whose *entries* decay
   too — old summaries compost into one coarse archive;
4. freshness-weighted analytics (``wavg(price, f)``) read the live
   table with decay-aware eyes;
5. the database is checkpointed and resumed, freshness intact.

Run: ``python examples/archive_vault.py``
"""

import shutil
import tempfile

from repro import EGIFungus, FungusDB, SummaryVault, load_checkpoint, save_checkpoint
from repro.workload import MarketTickGenerator


def main() -> None:
    vault = SummaryVault(half_life=15.0, compost_below=0.3)
    db = FungusDB(seed=21, store=vault)
    generator = MarketTickGenerator(symbols=("AAA", "BBB"), seed=21)
    db.create_table(
        "ticks", generator.schema, fungus=EGIFungus(seeds_per_cycle=3, decay_rate=0.3)
    )

    for tick in range(150):
        db.insert_many("ticks", [generator.generate(tick) for _ in range(10)])
        db.tick(1)

    print(f"after 150 ticks: live extent {db.extent('ticks')} of 1500 ingested")
    print(
        f"vault: {vault.fresh_count('ticks')} fresh summaries, "
        f"{vault.composted_summaries} composted into the archive"
    )
    compost = vault.compost("ticks")
    if compost is not None:
        print(f"archive: {compost.describe()}")

    # conservation: live + summarised == everything ever ingested
    merged = db.merged_summary("ticks")
    print(f"conservation holds: {db.extent('ticks') + merged.row_count == 1500}")

    # decay-aware analytics: fresh ticks dominate the "current" price
    res = db.query(
        "SELECT symbol, avg(price) AS flat, wavg(price, f) AS freshness_weighted "
        "FROM ticks GROUP BY symbol ORDER BY symbol"
    )
    print("\nflat vs freshness-weighted average price (live extent):")
    print(res.pretty())

    # checkpoint, reload, keep rotting
    directory = tempfile.mkdtemp(prefix="fungus-ckpt-")
    try:
        save_checkpoint(db, directory)
        resumed = load_checkpoint(
            directory, fungi={"ticks": EGIFungus(seeds_per_cycle=3, decay_rate=0.3)}
        )
        print(f"\ncheckpoint restored at clock {resumed.now:g} "
              f"with extent {resumed.extent('ticks')}")
        resumed.tick(50)
        print(f"50 ticks after resume: extent {resumed.extent('ticks')} "
              f"(the fungus kept eating)")
    finally:
        shutil.rmtree(directory)


if __name__ == "__main__":
    main()
