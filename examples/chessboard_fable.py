"""The chessboard fable, replayed.

"For the first square of the chess board, he would receive one grain
of wheat, two for the second one, four on the third one, ..." — the
paper's motivation. This demo doubles the ingest every two ticks and
shows what each appetite does to the extent of R, with sparklines.

Run: ``python examples/chessboard_fable.py``
"""

from repro import EGIFungus, FungusDB, NullFungus, RetentionFungus
from repro.bench.reporting import sparkline
from repro.workload import ChessboardArrivals, SensorGenerator
from repro.workload.replay import ReplayDriver


def run_arm(name: str, fungus, ticks: int = 20) -> list[int]:
    """One arm of the fable; returns the extent series."""
    db = FungusDB(seed=1)
    generator = SensorGenerator(num_sensors=10, seed=1)
    db.create_table("grains", generator.schema, fungus=fungus)
    driver = ReplayDriver(
        db, "grains", ChessboardArrivals(initial=2, doubling_period=2, cap=5_000), generator
    )
    extents: list[int] = []
    driver.probe_each_tick(lambda tick, db, stats: extents.append(db.extent("grains")))
    stats = driver.run(ticks)
    print(f"{name:>12}: final extent {extents[-1]:>6} of {stats.inserted} grains   {sparkline(extents)}")
    return extents


def main() -> None:
    print("the king fills the board; each arm eats differently\n")
    hoard = run_arm("hoard", NullFungus())
    ttl = run_arm("retention-6", RetentionFungus(max_age=6))
    egi = run_arm("EGI", EGIFungus(seeds_per_cycle=4, decay_rate=0.34))

    print()
    print(f"the hoard kept every grain: {hoard[-1]}")
    print(f"retention kept only the last window: {ttl[-1]} "
          f"({ttl[-1] / hoard[-1]:.0%} of the hoard) — the rest rotted in storage")
    print(f"EGI, with a fixed appetite, fell behind: {egi[-1]}")
    print("\nmoral: don't collect more rice than you can eat —")
    print("and your appetite must grow as fast as your harvest.")


if __name__ == "__main__":
    main()
