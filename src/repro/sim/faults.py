"""Fault injection: the crashes and corruptions the sim replays.

Each injector produces exactly the on-disk or in-process state a real
failure would leave behind, so the driver can assert the system's
documented reaction (a :class:`SnapshotError` on load, a
:class:`DecayError` chain out of the clock) instead of undefined
behaviour. All injectors are deterministic — no randomness, no wall
clock — which keeps failing schedules replayable byte for byte.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.checkpoint import MANIFEST_NAME, save_checkpoint
from repro.core.db import FungusDB


def tear_checkpoint(db: FungusDB, directory: Path) -> Path:
    """A crash *before* the manifest rename: tables written, no manifest.

    ``save_checkpoint`` writes the manifest last precisely so this
    state is recognisably incomplete; loading it must fail loudly.
    """
    save_checkpoint(db, directory)
    (directory / MANIFEST_NAME).unlink()
    return directory


def truncate_snapshot(
    db: FungusDB, directory: Path, table: str, mode: str
) -> Path | None:
    """A crash or disk fault that cut one table snapshot short.

    ``mode="mid-line"`` chops the file mid-JSON (torn write);
    ``mode="line-boundary"`` drops the last complete row line — the
    sneaky case a format without a row count would load silently.
    Returns None when the fault is not representable (no rows to drop).
    """
    save_checkpoint(db, directory)
    path = directory / f"{table}.jsonl"
    data = path.read_bytes()
    if mode == "mid-line":
        # every snapshot ends with "\n" after a line longer than 5
        # bytes, so cutting 5 bytes always lands inside the last line
        path.write_bytes(data[:-5])
        return directory
    if mode == "line-boundary":
        body = data[:-1]  # strip the final newline
        cut = body.rfind(b"\n")
        if cut < 0:
            return None  # only the header line exists: no row to drop
        path.write_bytes(data[: cut + 1])
        return directory
    raise ValueError(f"unknown truncation mode {mode!r}")


class InjectedSubscriberError(RuntimeError):
    """The exception a faulty clock subscriber raises mid-advance."""


def failing_subscriber(tick: int) -> None:
    """A clock subscriber that always blows up."""
    raise InjectedSubscriberError(f"injected subscriber fault at tick {tick}")
