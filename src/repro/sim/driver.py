"""The deterministic simulation driver.

A :class:`Simulator` replays one schedule against *two* systems in
lock-step — a real :class:`~repro.core.db.FungusDB` and the naive
:class:`~repro.sim.oracle.Oracle` — and diffs their entire state after
every single operation:

* extent, row order, and exact ``(t, f, attributes)`` of every tuple;
* the exhausted and pinned sets (by stable key);
* the conservation law (live + summarised == ever inserted);
* the fungus-agnostic invariants of :mod:`repro.sim.invariants`,
  including per-tuple freshness monotonicity across the whole run;
* for queries: the answer set; for ``CONSUME SELECT``: that exactly
  ``σ_P(R)`` was removed, no more, no less.

Fault steps (torn checkpoints, truncated snapshots, crashing clock
subscribers, dropped/duplicated ticks) additionally assert the
*documented* failure reaction, and the model tracks what real state
the fault legitimately changed (e.g. a crashed subscriber still costs
a clock tick).

Any disagreement is recorded as a :class:`Divergence` carrying the
step index and offending op — enough to replay and shrink it.

Passing ``trace_dir`` records a full span trace of the run (one
``sim.op`` span per step, with the tick/query/checkpoint spans the
database emits nested inside it) to ``<trace_dir>/seed-<N>.jsonl`` —
the flight recorder for post-mortem debugging of a divergence.
"""

from __future__ import annotations

import shutil
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.core.policy import EvictionMode
from repro.errors import DecayError, SnapshotError
from repro.obs.tracing import NULL_TRACER, JsonlTraceExporter, Tracer
from repro.sim import faults
from repro.sim.invariants import FreshnessTracker, check_conservation, check_table
from repro.sim.oracle import ModelRow, Oracle
from repro.sim.scheduler import Op, SimConfig, SimPredicate, generate_ops
from repro.storage.schema import Schema


@dataclass(frozen=True)
class Divergence:
    """One step where the two systems (or an invariant) disagreed.

    When the run has forensics enabled, ``lineage`` carries the
    rendered infection chains of the most recent deaths in the
    offending table — the flight-recorder view of *which tuples died,
    why, and who infected them* right before the disagreement.
    """

    step: int
    op: Op
    problems: tuple[str, ...]
    lineage: tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [f"step {self.step} {self.op}:"]
        lines += [f"  - {problem}" for problem in self.problems]
        if self.lineage:
            lines.append("  recent deaths (forensics):")
            for chain in self.lineage:
                lines += [f"    {line}" for line in chain.splitlines()]
        return "\n".join(lines)


@dataclass
class SimReport:
    """The outcome of one simulated run."""

    seed: int
    steps_run: int
    op_counts: Counter = field(default_factory=Counter)
    divergences: list[Divergence] = field(default_factory=list)
    faults_injected: int = 0
    checkpoints: int = 0
    rows_inserted: int = 0
    deaths_recorded: int = 0
    consumes_analyzed: int = 0
    forensic_problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.forensic_problems

    def describe(self) -> str:
        if self.ok:
            status = "ok"
        else:
            status = (
                f"{len(self.divergences)} DIVERGENCES, "
                f"{len(self.forensic_problems)} FORENSIC PROBLEMS"
            )
        line = (
            f"seed {self.seed}: {self.steps_run} steps, "
            f"{self.rows_inserted} rows inserted, "
            f"{self.faults_injected} faults, {self.checkpoints} checkpoints "
            f"-> {status}"
        )
        if self.deaths_recorded:
            line += f" ({self.deaths_recorded} deaths audited)"
        if self.consumes_analyzed:
            line += f" ({self.consumes_analyzed} consumes analyzed)"
        if self.ok:
            return line
        return "\n".join(
            [line]
            + [d.describe() for d in self.divergences]
            + [f"forensics: {p}" for p in self.forensic_problems]
        )


class Simulator:
    """Differential simulation of one :class:`SimConfig`."""

    SCHEMA = Schema.of(k="int", v="int")

    def __init__(
        self,
        config: SimConfig,
        workdir: str | Path | None = None,
        stop_on_divergence: bool = True,
        trace_dir: str | Path | None = None,
        forensics: bool = False,
        analyze: bool = False,
        race_probe: bool = False,
    ) -> None:
        self.config = config
        self.forensics = forensics
        self.analyze = analyze
        self.race_probe = race_probe
        self._own_workdir = workdir is None
        self.workdir = (
            Path(tempfile.mkdtemp(prefix="repro-sim-"))
            if workdir is None
            else Path(workdir)
        )
        self.stop_on_divergence = stop_on_divergence
        self.serial = 0  # stable tuple identity, unique across the run
        self._ckpt_serial = 0
        self.tracker = FreshnessTracker()
        self.report = SimReport(seed=config.seed, steps_run=0)
        self.tracer = NULL_TRACER
        self.trace_path: Path | None = None
        if trace_dir is not None:
            self.trace_path = Path(trace_dir) / f"seed-{config.seed}.jsonl"
            self.tracer = Tracer(JsonlTraceExporter(self.trace_path))
        self.db = self._build_db()
        self.oracle = Oracle()
        for spec in config.tables:
            self.oracle.create_table(
                spec.name,
                spec.fungus,
                period=spec.period,
                eager=spec.eager,
                lazy_batch=spec.lazy_batch,
            )

    def _build_db(self) -> FungusDB:
        db = FungusDB(seed=self.config.seed)
        if self.forensics:
            db.enable_forensics()
        if self.race_probe:
            # single-threaded run: the probe must never fire; a firing
            # probe here is a real bug (something mutating off-thread)
            db.enable_race_probe()
        for spec in self.config.tables:
            db.create_table(
                spec.name,
                self.SCHEMA,
                fungus=spec.fungus.build(),
                **self._table_options(spec),
            )
        # the db's tracer property fans out to clock, engine and every
        # table — current and future — so sim spans nest in ours
        db.tracer = self.tracer
        return db

    def _table_options(self, spec) -> dict:
        return {
            "period": spec.period,
            "eviction": EvictionMode.EAGER if spec.eager else EvictionMode.LAZY,
            "lazy_batch": spec.lazy_batch,
            "compact_every": spec.compact_every,
        }

    def close(self) -> None:
        """Remove the checkpoint scratch directory (if we created it)."""
        if self._own_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)
        self.tracer.close()

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def run(self, ops: list[Op] | None = None) -> SimReport:
        """Replay ``ops`` (or the config's generated schedule)."""
        if ops is None:
            ops = generate_ops(self.config)
        try:
            for index, op in enumerate(ops):
                diverged = self.step(index, op)
                if diverged and self.stop_on_divergence:
                    break
            self._forensic_audit()
        finally:
            self.close()
        return self.report

    def _forensic_audit(self) -> None:
        """End-of-run forensic contract check (forensics runs only).

        Every death recorded across the whole run — checkpoint/restore
        cycles included — must carry a known cause and an infection
        chain that resolves back to a seed event (or an uninfected
        insertion). Violations fail the report like a divergence.
        """
        if not self.forensics:
            return
        layer = self.db.forensics
        if layer is None:
            self.report.forensic_problems.append(
                "forensics layer missing after run (lost across a restore?)"
            )
            return
        self.report.deaths_recorded = layer.store.deaths_recorded
        self.report.forensic_problems.extend(layer.audit())

    def step(self, index: int, op: Op) -> bool:
        """Apply one op to both systems, then diff them. True = diverged."""
        self.report.op_counts[op.kind] += 1
        self.report.steps_run += 1
        # a crash is a finding, not a harness failure: corrupted
        # bookkeeping often manifests as a StorageError several ops
        # after the bug, and the report must survive to say so
        try:
            with self.tracer.span(
                "sim.op", kind=op.kind, step=index, table=op.table
            ) as span:
                problems = list(self._apply(op))
                if problems:
                    span.set(problems=len(problems))
        except Exception as exc:
            problems = [f"op raised {type(exc).__name__}: {exc}"]
        try:
            problems += self._differential_check()
        except Exception as exc:
            problems.append(f"state check raised {type(exc).__name__}: {exc}")
        if problems:
            self.report.divergences.append(
                Divergence(
                    index, op, tuple(problems), lineage=self._lineage_dump(op.table)
                )
            )
            return True
        return False

    def _lineage_dump(self, table: str | None) -> tuple[str, ...]:
        """Rendered chains of the last deaths in ``table`` (forensics on)."""
        layer = self.db.forensics
        if layer is None or table is None:
            return ()
        from repro.obs.forensics.render import render_chain

        dumps = []
        for record in layer.deaths(table)[-3:]:
            chain = layer.store.resolve_chain(table, record)
            dumps.append(render_chain(chain, record.fid, by_fid=True))
        return tuple(dumps)

    # ------------------------------------------------------------------
    # op application
    # ------------------------------------------------------------------

    def _apply(self, op: Op) -> list[str]:
        handler = getattr(self, f"_op_{op.kind}", None)
        if handler is None:
            raise ValueError(f"unknown op kind {op.kind!r}")
        return handler(op) or []

    def _op_insert(self, op: Op) -> None:
        for v in op.payload:
            key = self.serial
            self.serial += 1
            self.db.insert(op.table, {"k": key, "v": v})
            self.oracle.insert(op.table, key, {"v": v})

    def _op_tick(self, op: Op) -> None:
        self.db.tick(op.payload)
        self.oracle.tick(op.payload)

    def _op_query(self, op: Op) -> list[str]:
        pred: SimPredicate = op.payload
        result = self.db.query(f"SELECT k FROM {op.table} WHERE {pred.to_sql()}")
        real = [row[0] for row in result.rows]
        model = self.oracle.select_keys(op.table, self._predicate_fn(pred))
        if real != model:
            return [
                f"{op.table}: SELECT WHERE {pred.to_sql()} answered keys "
                f"{real}, model says {model}"
            ]
        return []

    def _op_consume(self, op: Op) -> list[str]:
        pred: SimPredicate = op.payload
        sql = f"CONSUME SELECT k FROM {op.table} WHERE {pred.to_sql()}"
        verdict: str | None = None
        extent_before = 0
        if self.analyze:
            # Tier-B's static verdict is a *promise* about what the
            # execution right below will do — hold it to that promise
            verdict = self.db.explain_consume(sql).verdict
            extent_before = self.db.extent(op.table)
            self.report.consumes_analyzed += 1
        result = self.db.query(sql)
        real = [row[0] for row in result.rows]
        model = self.oracle.consume(op.table, self._predicate_fn(pred))
        problems = []
        if verdict is not None:
            consumed = result.stats.rows_consumed
            if verdict == "invalid":
                problems.append(
                    f"{op.table}: analyzer called {sql!r} invalid but it executed"
                )
            elif verdict == "none" and consumed != 0:
                problems.append(
                    f"{op.table}: verdict none but {consumed} rows consumed "
                    f"by {sql!r}"
                )
            elif verdict == "total" and consumed != extent_before:
                problems.append(
                    f"{op.table}: verdict total but {consumed} of "
                    f"{extent_before} rows consumed by {sql!r}"
                )
        if real != model:
            problems.append(
                f"{op.table}: CONSUME WHERE {pred.to_sql()} removed keys "
                f"{real}, model says σ_P = {model}"
            )
        if result.stats.rows_consumed != len(model):
            problems.append(
                f"{op.table}: rows_consumed={result.stats.rows_consumed}, "
                f"|σ_P| = {len(model)}"
            )
        return problems

    @staticmethod
    def _predicate_fn(pred: SimPredicate):
        return lambda row: pred.matches(row.attrs["v"], row.f)

    def _op_pin(self, op: Op) -> None:
        table = self.db.table(op.table)
        rids = list(table.live_rows())
        if not rids:
            return
        rid = rids[op.payload % len(rids)]
        table.pin(rid)
        self.oracle.pin_key(op.table, table.attributes_of(rid)["k"])

    def _op_unpin(self, op: Op) -> None:
        table = self.db.table(op.table)
        pinned = sorted(table.pinned)
        if not pinned:
            return
        rid = pinned[op.payload % len(pinned)]
        table.unpin(rid)
        self.oracle.unpin_key(op.table, table.attributes_of(rid)["k"])

    # -- checkpointing and crashes -------------------------------------

    def _next_ckpt_dir(self) -> Path:
        self._ckpt_serial += 1
        return self.workdir / f"ckpt-{self._ckpt_serial:04d}"

    def _op_checkpoint_restore(self, op: Op) -> None:
        """A clean crash: checkpoint, lose the process, restore."""
        directory = self._next_ckpt_dir()
        save_checkpoint(self.db, directory)
        self.db = load_checkpoint(
            directory,
            fungi={spec.name: spec.fungus.build() for spec in self.config.tables},
            table_options={
                spec.name: self._table_options(spec) for spec in self.config.tables
            },
            tracer=self.tracer,  # the rebuilt db must keep recording
        )
        if self.race_probe:
            # the restored database is a fresh FungusDB: re-arm the
            # probe so post-restore mutations stay sanitized too
            self.db.enable_race_probe().bind()
        self.report.checkpoints += 1
        # the oracle is untouched: a checkpoint/restore cycle must be
        # lossless, so any difference shows up in the differential diff

    def _op_fault_torn_checkpoint(self, op: Op) -> list[str]:
        directory = self._next_ckpt_dir()
        faults.tear_checkpoint(self.db, directory)
        self.report.faults_injected += 1
        try:
            load_checkpoint(directory)
        except SnapshotError:
            return []
        return ["torn checkpoint (no manifest) loaded without SnapshotError"]

    def _op_fault_truncated_snapshot(self, op: Op) -> list[str]:
        directory = self._next_ckpt_dir()
        injected = faults.truncate_snapshot(
            self.db, directory, op.table, mode=op.payload
        )
        if injected is None:
            return []  # table had no rows to truncate; fault not representable
        self.report.faults_injected += 1
        try:
            load_checkpoint(directory)
        except SnapshotError:
            return []
        return [
            f"snapshot of {op.table!r} truncated ({op.payload}) loaded "
            "without SnapshotError"
        ]

    def _op_fault_subscriber(self, op: Op) -> list[str]:
        """A clock subscriber dies mid-advance: the tick is lost, the
        failure must surface as a chained DecayError, and the database
        must remain fully consistent afterwards."""
        self.db.clock.subscribe(faults.failing_subscriber)
        self.report.faults_injected += 1
        problems = []
        try:
            self.db.tick(1)
            problems.append("failing clock subscriber raised no DecayError")
        except DecayError as exc:
            if not isinstance(exc.__cause__, faults.InjectedSubscriberError):
                problems.append(
                    f"DecayError not chained to the subscriber's exception "
                    f"(cause: {exc.__cause__!r})"
                )
        finally:
            self.db.clock.unsubscribe(faults.failing_subscriber)
        # clock.advance increments time before firing subscribers, so
        # the failed tick is on the clock but no policy ran: a drop
        self.oracle.dropped_tick()
        return problems

    def _op_fault_drop_tick(self, op: Op) -> None:
        """The scheduler lost a tick: time moves, no decay cycle runs."""
        self.db.clock.advance(1)
        self.oracle.dropped_tick()

    def _op_fault_double_tick(self, op: Op) -> None:
        """Duplicate tick delivery: every policy runs again at `now`."""
        now = int(self.db.clock.now)
        for name in sorted(self.db.policies):
            self.db.policies[name].run_tick(now)
        self.report.faults_injected += 1
        self.oracle.duplicate_tick()

    # ------------------------------------------------------------------
    # the differential diff
    # ------------------------------------------------------------------

    def _differential_check(self) -> list[str]:
        problems = []
        if self.db.now != self.oracle.now:
            problems.append(
                f"clock diverged: real {self.db.now}, model {self.oracle.now}"
            )
        for spec in self.config.tables:
            name = spec.name
            table = self.db.table(name)
            model = self.oracle.tables[name]
            problems += self._diff_rows(name, table, model.rows)
            real_exhausted = sorted(
                table.attributes_of(rid)["k"] for rid in table.exhausted
            )
            if real_exhausted != sorted(model.exhausted_keys()):
                problems.append(
                    f"{name}: exhausted keys {real_exhausted} != model "
                    f"{sorted(model.exhausted_keys())}"
                )
            real_pinned = sorted(
                table.attributes_of(rid)["k"] for rid in table.pinned
            )
            if real_pinned != sorted(model.pinned_keys()):
                problems.append(
                    f"{name}: pinned keys {real_pinned} != model "
                    f"{sorted(model.pinned_keys())}"
                )
            problems += check_table(self.db, name)
            problems += check_conservation(self.db, name, model.inserted)
            problems += self.tracker.observe(
                name,
                {
                    table.attributes_of(rid)["k"]: table.freshness(rid)
                    for rid in table.live_rows()
                },
            )
        self.report.rows_inserted = sum(
            t.inserted for t in self.oracle.tables.values()
        )
        return problems

    def _diff_rows(self, name, table, model_rows: list[ModelRow]) -> list[str]:
        real = [
            (row["k"], row["t"], row["f"], row["v"]) for row in table.rows()
        ]
        model = [(row.key, row.t, row.f, row.attrs["v"]) for row in model_rows]
        if real == model:
            return []
        if len(real) != len(model):
            return [
                f"{name}: extent diverged: real {len(real)} rows, "
                f"model {len(model)}"
            ]
        for i, (r, m) in enumerate(zip(real, model)):
            if r != m:
                return [
                    f"{name}: row {i} diverged: real (k,t,f,v)={r}, model={m}"
                ]
        return [f"{name}: rows diverged (unlocated)"]


def run_sim(seed: int, steps: int = 200, **config_kwargs) -> SimReport:
    """One-call entry point: build, run, report."""
    config = SimConfig(seed=seed, steps=steps, **config_kwargs)
    return Simulator(config).run()
