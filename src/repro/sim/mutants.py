"""Deliberately broken variants of the system — the harness's proof
that it *can* fail.

A differential harness that never fires is worthless; these mutants
re-introduce the classes of bug the harness exists to catch, as
reversible monkeypatches. ``apply(name)`` installs one and returns an
undo callable; ``python -m repro.sim --mutant NAME`` and
``tests/sim/test_mutants.py`` both use them to demonstrate detection.
"""

from __future__ import annotations

from typing import Callable

from repro.core.events import TupleEvicted
from repro.core.table import DecayingTable
from repro.fungi.linear import LinearDecayFungus

Undo = Callable[[], None]


def _broken_tombstone_accounting() -> Undo:
    """Comment out the exhausted/pinned bookkeeping on delete.

    Dead row ids linger in the exhausted set, so the exhausted-⊆-live
    invariant and the HealthReport exhausted count both break.
    """
    original = DecayingTable.on_delete

    def on_delete(self, rid, values):  # pragma: no cover - mutant body
        self.bus.publish(
            TupleEvicted(self.name, self.clock.now, rid, self._pending_reason, values)
        )

    DecayingTable.on_delete = on_delete

    def undo() -> None:
        DecayingTable.on_delete = original

    return undo


def _broken_linear_rate() -> Undo:
    """Linear decay silently loses twice the freshness it should.

    The oracle applies the configured rate; the first linear cycle
    diverges on every live row's ``f``.
    """
    original = LinearDecayFungus.cycle

    def cycle(self, table, rng):  # pragma: no cover - mutant body
        report = original(self, table, rng)
        for rid in list(table.live_rows()):
            if table.freshness(rid) > 0.0:
                self._decay(table, rid, self.rate, report)
        return report

    LinearDecayFungus.cycle = cycle

    def undo() -> None:
        LinearDecayFungus.cycle = original

    return undo


def _broken_consume() -> Undo:
    """CONSUME forgets to delete every other matched row.

    ``R − σ_P(R)`` leaves survivors behind: the consume diff and the
    row diff both fire.
    """
    from repro.query import operators as ops
    from repro.storage.rowset import RowSet

    original = ops.consume_rows

    def consume_rows(table, rows):  # pragma: no cover - mutant body
        kept = RowSet(rid for i, rid in enumerate(sorted(rows)) if i % 2 == 0)
        return original(table, kept)

    ops.consume_rows = consume_rows

    def undo() -> None:
        ops.consume_rows = original

    return undo


MUTANTS: dict[str, Callable[[], Undo]] = {
    "tombstone": _broken_tombstone_accounting,
    "linear-rate": _broken_linear_rate,
    "consume": _broken_consume,
}


def apply(name: str) -> Undo:
    """Install one named mutant; returns the undo callable."""
    try:
        factory = MUTANTS[name]
    except KeyError:
        raise ValueError(f"unknown mutant {name!r}; have {sorted(MUTANTS)}") from None
    return factory()
