"""Schedule shrinking: ddmin over a failing op list.

When a seeded run diverges, the raw repro is hundreds of ops long.
Because the driver is fully deterministic, any *subsequence* of the
schedule is itself a valid schedule — so classic delta debugging
applies: repeatedly drop chunks, keep the candidate whenever the
failure persists, and halve the chunk size when stuck. The result is
a (1-)minimal schedule: removing any single remaining op makes the
failure disappear.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.sim.driver import Simulator
from repro.sim.scheduler import Op, SimConfig


def ddmin(ops: list[Op], fails: Callable[[list[Op]], bool]) -> list[Op]:
    """Zeller's ddmin: a minimal failing subsequence of ``ops``.

    ``fails(candidate)`` must be deterministic; ``fails(ops)`` must be
    True on entry (asserted).
    """
    assert fails(ops), "ddmin needs a failing starting schedule"
    granularity = 2
    while len(ops) >= 2:
        chunk = math.ceil(len(ops) / granularity)
        reduced = False
        for start in range(0, len(ops), chunk):
            candidate = ops[:start] + ops[start + chunk :]
            if candidate and fails(candidate):
                ops = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(len(ops), granularity * 2)
    return ops


def shrink_failure(config: SimConfig, ops: list[Op]) -> list[Op]:
    """Shrink ``ops`` (which diverges under ``config``) to a minimum.

    Every probe runs a fresh :class:`Simulator` so no state leaks
    between candidates.
    """

    def fails(candidate: list[Op]) -> bool:
        return not Simulator(config).run(list(candidate)).ok

    return ddmin(list(ops), fails)
