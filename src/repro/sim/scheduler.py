"""Seeded schedule generation for the simulation driver.

A schedule is a flat list of :class:`Op` values — inserts, ticks,
queries, ``CONSUME SELECT``\\ s, pins, checkpoint/restore cycles and
injected faults — generated deterministically from one integer seed.
The same ``(config, seed)`` always yields the same schedule, which is
what makes a CI failure reproducible locally and shrinkable by
:mod:`repro.sim.shrinker`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.sim.oracle import FungusSpec

#: Comparison operators a simulated predicate may use. Both the SQL
#: engine and the oracle evaluate these identically on ints/floats.
COMPARISONS = ("<", "<=", ">", ">=", "=")


@dataclass(frozen=True)
class SimPredicate:
    """A predicate over the sim schema, evaluable on both sides."""

    column: str  # "v" (payload int) or "f" (freshness)
    op: str
    value: Any

    def to_sql(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"

    def matches(self, v: int, f: float) -> bool:
        lhs = v if self.column == "v" else f
        if self.op == "<":
            return lhs < self.value
        if self.op == "<=":
            return lhs <= self.value
        if self.op == ">":
            return lhs > self.value
        if self.op == ">=":
            return lhs >= self.value
        if self.op == "=":
            return lhs == self.value
        raise ValueError(f"unknown comparison {self.op!r}")


@dataclass(frozen=True)
class Op:
    """One schedule step. ``payload`` is kind-specific."""

    kind: str
    table: str | None = None
    payload: Any = None

    def __str__(self) -> str:
        parts = [self.kind]
        if self.table is not None:
            parts.append(self.table)
        if self.payload is not None:
            parts.append(str(self.payload))
        return "(" + " ".join(parts) + ")"


@dataclass(frozen=True)
class TableSpec:
    """One simulated relation and its Law-1 policy knobs."""

    name: str
    fungus: FungusSpec
    period: int = 1
    eager: bool = True
    lazy_batch: int = 4
    compact_every: int = 0


def default_tables() -> tuple[TableSpec, ...]:
    """The standard zoo: every deterministic fungus, both eviction
    modes, an off-unit period, and a compacting table."""
    return (
        TableSpec("melon", FungusSpec("linear", rate=0.2)),
        TableSpec(
            "cheddar",
            FungusSpec("exponential", half_life=3.0, evict_below=0.05),
            eager=False,
            lazy_batch=5,
        ),
        TableSpec(
            "brie",
            FungusSpec("sigmoid", midlife=6.0, steepness=0.9, evict_below=0.05),
            period=2,
        ),
        TableSpec(
            "cellar",
            FungusSpec("retention", max_age=8.0),
            compact_every=3,
        ),
    )


#: Relative frequencies of each op kind in a generated schedule.
DEFAULT_WEIGHTS: Mapping[str, int] = {
    "insert": 30,
    "tick": 22,
    "query": 10,
    "consume": 10,
    "pin": 4,
    "unpin": 3,
    "checkpoint_restore": 5,
    "fault_torn_checkpoint": 4,
    "fault_truncated_snapshot": 4,
    "fault_subscriber": 3,
    "fault_drop_tick": 3,
    "fault_double_tick": 2,
}


@dataclass(frozen=True)
class SimConfig:
    """Everything one simulation run is parameterised by."""

    seed: int
    steps: int = 200
    tables: tuple[TableSpec, ...] = field(default_factory=default_tables)
    weights: Mapping[str, int] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def table_names(self) -> list[str]:
        return [spec.name for spec in self.tables]


#: boundary predicates on the f ∈ [0, 1] invariant: the first two are
#: statically *total*, the last two statically *none* — they keep the
#: Tier-B verdict check (--analyze) from being vacuously all-partial
_BOUNDARY_PREDICATES = (
    SimPredicate("f", ">=", 0.0),
    SimPredicate("f", "<=", 1.0),
    SimPredicate("f", "<", 0.0),
    SimPredicate("f", ">", 1.0),
)


def random_predicate(rng: random.Random) -> SimPredicate:
    """A predicate over v (payload) or f (freshness)."""
    roll = rng.random()
    if roll < 0.1:
        return rng.choice(_BOUNDARY_PREDICATES)
    if roll < 0.75:
        op = rng.choice(COMPARISONS)
        return SimPredicate("v", op, rng.randrange(100))
    op = rng.choice(COMPARISONS[:4])  # float equality would be vacuous
    return SimPredicate("f", op, round(rng.uniform(0.0, 1.0), 2))


def generate_ops(config: SimConfig) -> list[Op]:
    """The deterministic schedule for ``config`` (seed included)."""
    rng = random.Random(config.seed)
    kinds = list(config.weights)
    weights = [config.weights[kind] for kind in kinds]
    names = config.table_names()
    ops: list[Op] = []
    for _ in range(config.steps):
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "insert":
            table = rng.choice(names)
            values = [rng.randrange(100) for _ in range(rng.randint(1, 5))]
            ops.append(Op("insert", table, values))
        elif kind == "tick":
            ops.append(Op("tick", payload=rng.randint(1, 3)))
        elif kind in ("query", "consume"):
            ops.append(Op(kind, rng.choice(names), random_predicate(rng)))
        elif kind in ("pin", "unpin"):
            ops.append(Op(kind, rng.choice(names), rng.randrange(64)))
        elif kind == "fault_truncated_snapshot":
            ops.append(Op(kind, rng.choice(names), rng.choice(["mid-line", "line-boundary"])))
        else:  # checkpoint_restore and the remaining faults need no payload
            ops.append(Op(kind))
    return ops
