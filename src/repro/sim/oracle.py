"""The reference oracle: Laws 1 + 2 as naive dicts and lists.

The simulation driver replays every operation against *two* systems —
the real :class:`~repro.core.db.FungusDB` and this model — and diffs
their state after each step. The model is deliberately primitive: a
list of plain rows per table, a float for the clock, and closed-form
decay applied row by row. No indexes, no tombstones, no event bus —
if the two ever disagree, the bug is almost certainly on the clever
side.

To make the diff *exact* (not tolerance-based), every decay rule here
performs the same floating-point operations in the same order as the
real fungus + ``DecayingTable.set_freshness`` path, including the
``current - (current - target)`` dance of the ``_decay`` helper.

Only the deterministic fungi are modelled (null, linear, exponential,
sigmoid, retention). Stochastic fungi (EGI, Blue Cheese) cannot be
predicted by a reference model and are covered instead by the
statistical tests in ``tests/fungi/test_decay_distributions.py`` and
the fungus-agnostic invariant checks in :mod:`repro.sim.invariants`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.fungus import Fungus
from repro.errors import DecayError


def _clamp(value: float) -> float:
    """Mirror of :func:`repro.core.freshness.clamp_freshness` for floats."""
    return min(max(float(value), 0.0), 1.0)


@dataclass(frozen=True)
class FungusSpec:
    """A deterministic fungus, described by value (so specs can be
    rebuilt after a simulated crash — the real fungus object dies with
    the process, exactly like production).
    """

    kind: str  # "null" | "linear" | "exponential" | "sigmoid" | "retention"
    rate: float = 0.2
    half_life: float = 3.0
    evict_below: float = 0.05
    midlife: float = 6.0
    steepness: float = 0.9
    max_age: float = 8.0

    def build(self) -> Fungus:
        """A fresh real fungus matching this spec."""
        from repro.fungi import (
            ExponentialDecayFungus,
            LinearDecayFungus,
            NullFungus,
            RetentionFungus,
            SigmoidDecayFungus,
        )

        if self.kind == "null":
            return NullFungus()
        if self.kind == "linear":
            return LinearDecayFungus(rate=self.rate)
        if self.kind == "exponential":
            return ExponentialDecayFungus(
                half_life=self.half_life, evict_below=self.evict_below
            )
        if self.kind == "sigmoid":
            return SigmoidDecayFungus(
                midlife=self.midlife,
                steepness=self.steepness,
                evict_below=self.evict_below,
            )
        if self.kind == "retention":
            return RetentionFungus(max_age=self.max_age)
        raise DecayError(f"unknown fungus spec kind {self.kind!r}")

    def decay_row(self, row: "ModelRow", now: float) -> None:
        """Apply one decay cycle to one model row (exact float mirror)."""
        current = row.f
        if current <= 0.0:
            return
        if self.kind == "null":
            return
        if self.kind == "linear":
            if row.pinned:
                return
            row.f = _clamp(current - self.rate)
            return
        if self.kind == "exponential":
            factor = 0.5 ** (1.0 / self.half_life)
            new = current * factor
            if new < self.evict_below:
                new = 0.0
            if row.pinned and new < current:
                return
            row.f = _clamp(current - (current - new))
            return
        if self.kind == "sigmoid":
            target = self._sigmoid_target(now - row.t)
            if target < current:
                if row.pinned:
                    return
                row.f = _clamp(current - (current - target))
            return
        if self.kind == "retention":
            target = max(0.0, 1.0 - (now - row.t) / self.max_age)
            if target < current:
                if row.pinned:
                    return
                row.f = _clamp(current - (current - target))
            return
        raise DecayError(f"unknown fungus spec kind {self.kind!r}")

    def _sigmoid_target(self, age: float) -> float:
        exponent = self.steepness * (age - self.midlife)
        if exponent > 60:
            return 0.0
        if exponent < -60:
            return 1.0
        value = 1.0 / (1.0 + math.exp(exponent))
        return 0.0 if value < self.evict_below else value


@dataclass
class ModelRow:
    """One tuple of the model: identity, timestamps, attributes."""

    key: int  # the sim's stable serial (the "k" attribute)
    t: float
    f: float
    attrs: dict[str, Any]
    pinned: bool = False


@dataclass
class ModelTable:
    """One relation of the model, with its Law-1 policy knobs."""

    name: str
    spec: FungusSpec
    period: int = 1
    eager: bool = True
    lazy_batch: int = 64
    rows: list[ModelRow] = field(default_factory=list)
    inserted: int = 0  # lifetime insert count (conservation check)
    departed: int = 0  # lifetime evicted + consumed count

    @property
    def extent(self) -> int:
        return len(self.rows)

    def exhausted_keys(self) -> list[int]:
        """Keys of live rows whose freshness hit zero (awaiting eviction)."""
        return [row.key for row in self.rows if row.f <= 0.0]

    def pinned_keys(self) -> list[int]:
        return [row.key for row in self.rows if row.pinned]

    def row_by_key(self, key: int) -> ModelRow:
        for row in self.rows:
            if row.key == key:
                return row
        raise KeyError(f"no model row with key {key} in {self.name!r}")


Predicate = Callable[[ModelRow], bool]


class Oracle:
    """The whole-database model: clock + tables, Laws 1 and 2 only."""

    def __init__(self) -> None:
        self.now = 0.0
        self.tables: dict[str, ModelTable] = {}

    def create_table(
        self,
        name: str,
        spec: FungusSpec,
        period: int = 1,
        eager: bool = True,
        lazy_batch: int = 64,
    ) -> ModelTable:
        if name in self.tables:
            raise DecayError(f"model table {name!r} already exists")
        table = ModelTable(
            name, spec, period=period, eager=eager, lazy_batch=lazy_batch
        )
        self.tables[name] = table
        return table

    # ------------------------------------------------------------------
    # Law 0: data in
    # ------------------------------------------------------------------

    def insert(self, name: str, key: int, attrs: dict[str, Any]) -> None:
        """Mirror of ``FungusDB.insert``: stamp t=now, f=1.0."""
        table = self.tables[name]
        table.rows.append(ModelRow(key=key, t=self.now, f=1.0, attrs=dict(attrs)))
        table.inserted += 1

    # ------------------------------------------------------------------
    # Law 1: the clock
    # ------------------------------------------------------------------

    def tick(self, ticks: int = 1) -> None:
        """Mirror of ``FungusDB.tick``: advance, cycle, collect."""
        for _ in range(ticks):
            self.now += 1.0
            tick = int(self.now)
            for name in sorted(self.tables):
                self._policy_tick(self.tables[name], tick)

    def dropped_tick(self) -> None:
        """Fault model: the clock advanced but no policy ran."""
        self.now += 1.0

    def duplicate_tick(self) -> None:
        """Fault model: the current tick's policies delivered twice."""
        tick = int(self.now)
        for name in sorted(self.tables):
            self._policy_tick(self.tables[name], tick)

    def _policy_tick(self, table: ModelTable, tick: int) -> None:
        if tick % table.period == 0:
            for row in table.rows:
                table.spec.decay_row(row, self.now)
        # _maybe_collect runs every tick, period multiple or not
        exhausted = [row for row in table.rows if row.f <= 0.0]
        if exhausted and (table.eager or len(exhausted) >= table.lazy_batch):
            table.rows = [row for row in table.rows if row.f > 0.0]
            table.departed += len(exhausted)

    # ------------------------------------------------------------------
    # Law 2: query-consume
    # ------------------------------------------------------------------

    def select_keys(self, name: str, predicate: Predicate) -> list[int]:
        """Keys of rows a plain SELECT would match, in insertion order."""
        return [row.key for row in self.tables[name].rows if predicate(row)]

    def consume(self, name: str, predicate: Predicate) -> list[int]:
        """``R := R − σ_P(R)``; returns the removed keys in order."""
        table = self.tables[name]
        removed = [row.key for row in table.rows if predicate(row)]
        table.rows = [row for row in table.rows if not predicate(row)]
        table.departed += len(removed)
        return removed

    # ------------------------------------------------------------------
    # owner care
    # ------------------------------------------------------------------

    def pin_key(self, name: str, key: int) -> None:
        self.tables[name].row_by_key(key).pinned = True

    def unpin_key(self, name: str, key: int) -> None:
        self.tables[name].row_by_key(key).pinned = False
