"""Fault-injection simulation harness for the two Laws.

The correctness backstop of the reproduction: a deterministic driver
(:mod:`~repro.sim.driver`) replays seeded schedules of inserts,
queries, ``CONSUME SELECT``\\ s, clock ticks, checkpoint/restore
cycles and injected faults against a real ``FungusDB`` *and* a naive
reference model (:mod:`~repro.sim.oracle`), diffing the full state
after every step and checking fungus-agnostic invariants
(:mod:`~repro.sim.invariants`). Failing schedules shrink to minimal
repros (:mod:`~repro.sim.shrinker`); named mutants
(:mod:`~repro.sim.mutants`) prove the harness detects the bug classes
it was built for.

Run it from the command line::

    python -m repro.sim --seed 7 --steps 200
    python -m repro.sim --seed 1..25 --steps 200   # the CI sweep
    python -m repro.sim --seed 1 --mutant tombstone  # must fail
"""

from repro.sim.driver import Divergence, SimReport, Simulator, run_sim
from repro.sim.invariants import FreshnessTracker, check_table
from repro.sim.oracle import FungusSpec, ModelRow, ModelTable, Oracle
from repro.sim.scheduler import (
    Op,
    SimConfig,
    SimPredicate,
    TableSpec,
    default_tables,
    generate_ops,
)
from repro.sim.shrinker import ddmin, shrink_failure

__all__ = [
    "Divergence",
    "FreshnessTracker",
    "FungusSpec",
    "ModelRow",
    "ModelTable",
    "Op",
    "Oracle",
    "SimConfig",
    "SimPredicate",
    "SimReport",
    "Simulator",
    "TableSpec",
    "check_table",
    "ddmin",
    "default_tables",
    "generate_ops",
    "run_sim",
    "shrink_failure",
]
