"""Fungus-agnostic invariants of a live :class:`FungusDB`.

These hold for *every* fungus — stochastic ones included — at every
step of any schedule, faults and all:

* freshness of each live row is in ``[0, 1]``; rows outside the
  exhausted set are strictly ``> 0``, exhausted rows are exactly 0;
* the exhausted and pinned sets only contain live row ids;
* per-tuple freshness is monotone non-increasing over time (tracked by
  the sim's stable key column, surviving row-id churn and restores);
* the :class:`~repro.core.health.HealthReport` accounting is
  internally consistent and agrees with the table: extent, band
  counts, tombstones, exhausted/pinned counts, and the hole ranges
  sum exactly to the tombstone count.

Each check returns a list of human-readable problem strings (empty =
healthy) so the driver can aggregate them into one divergence report.
"""

from __future__ import annotations

from repro.core.db import FungusDB
from repro.core.table import DecayingTable

#: Freshness may never rise by more than this between two observations
#: of the same tuple (0.0 would also work — decay mirrors are exact —
#: but a tiny epsilon keeps the check honest about what it asserts).
MONOTONE_EPSILON = 1e-12


class FreshnessTracker:
    """Remembers the last observed freshness of every tuple, by key.

    ``observe`` takes the current ``{key: freshness}`` view of one
    table, reports any key whose freshness *rose*, then becomes the new
    baseline. Keys that departed are forgotten; a re-used key would be
    a sim bug, not a database bug, so keys must be unique forever.
    """

    def __init__(self) -> None:
        self._last: dict[str, dict[int, float]] = {}

    def observe(self, table_name: str, current: dict[int, float]) -> list[str]:
        problems = []
        last = self._last.get(table_name, {})
        for key, freshness in current.items():
            previous = last.get(key)
            if previous is not None and freshness > previous + MONOTONE_EPSILON:
                problems.append(
                    f"{table_name}: tuple key={key} freshness rose "
                    f"{previous!r} -> {freshness!r}"
                )
        self._last[table_name] = dict(current)
        return problems


def check_freshness_bounds(table: DecayingTable) -> list[str]:
    """Freshness ∈ [0,1]; exhausted ⇔ f == 0 among live rows."""
    problems = []
    exhausted = set(table.exhausted)
    for rid in table.live_rows():
        f = table.freshness(rid)
        if not (0.0 <= f <= 1.0):
            problems.append(f"{table.name}: row {rid} freshness {f!r} outside [0, 1]")
        if rid in exhausted:
            if f > 0.0:
                problems.append(
                    f"{table.name}: row {rid} is exhausted but freshness {f!r} > 0"
                )
        elif f <= 0.0:
            problems.append(
                f"{table.name}: row {rid} has freshness {f!r} but is not exhausted"
            )
    return problems


def check_rowset_membership(table: DecayingTable) -> list[str]:
    """The exhausted and pinned sets may only reference live rows."""
    problems = []
    for label, rowset in (("exhausted", table.exhausted), ("pinned", table.pinned)):
        for rid in rowset:
            if not table.is_live(rid):
                problems.append(
                    f"{table.name}: {label} set contains dead row id {rid}"
                )
    return problems


def check_health_accounting(db: FungusDB, name: str) -> list[str]:
    """The HealthReport must agree with the table it measured."""
    table = db.table(name)
    health = db.health(name)
    problems = []
    if health.extent != len(table):
        problems.append(
            f"{name}: health extent {health.extent} != table extent {len(table)}"
        )
    band_total = health.fresh_count + health.stale_count + health.rotten_count
    if band_total != health.extent:
        problems.append(
            f"{name}: band counts sum to {band_total}, extent is {health.extent}"
        )
    if health.allocated != health.extent + health.tombstones:
        problems.append(
            f"{name}: allocated {health.allocated} != extent {health.extent} "
            f"+ tombstones {health.tombstones}"
        )
    if health.tombstones != table.storage.tombstones:
        problems.append(
            f"{name}: health tombstones {health.tombstones} != storage "
            f"tombstones {table.storage.tombstones}"
        )
    if health.exhausted != len(table.exhausted):
        problems.append(
            f"{name}: health exhausted {health.exhausted} != table "
            f"exhausted {len(table.exhausted)}"
        )
    if health.pinned != len(table.pinned):
        problems.append(
            f"{name}: health pinned {health.pinned} != table pinned "
            f"{len(table.pinned)}"
        )
    hole_total = sum(stop - start for start, stop in health.holes)
    if hole_total != health.tombstones:
        problems.append(
            f"{name}: hole ranges cover {hole_total} slots, but there are "
            f"{health.tombstones} tombstones"
        )
    for start, stop in health.holes:
        if not (0 <= start < stop <= health.allocated):
            problems.append(f"{name}: hole ({start}, {stop}) out of bounds")
    for start, stop in health.rot_spots:
        if not (0 <= start < stop <= health.allocated):
            problems.append(f"{name}: rot spot ({start}, {stop}) out of bounds")
    return problems


def check_conservation(db: FungusDB, name: str, inserted: int) -> list[str]:
    """Nothing dies unseen: live + summarised == ever inserted.

    Valid only when the table distills on both evict and consume (the
    sim's configuration) — then every departure passed the distiller.
    """
    merged = db.merged_summary(name)
    summarised = merged.row_count if merged is not None else 0
    live = db.extent(name)
    if live + summarised != inserted:
        return [
            f"{name}: conservation broken: {live} live + {summarised} "
            f"summarised != {inserted} inserted"
        ]
    return []


def check_table(db: FungusDB, name: str) -> list[str]:
    """All single-table invariants that need no model or history."""
    table = db.table(name)
    return (
        check_freshness_bounds(table)
        + check_rowset_membership(table)
        + check_health_accounting(db, name)
    )
