"""``python -m repro.sim`` — run seeded differential simulations.

Exit status 0 means every seed completed with zero divergences and
zero oracle mismatches; any finding prints the seed, the offending
step, and (unless ``--no-shrink``) a ddmin-minimal schedule for local
reproduction, then exits 1. CI runs the ``--seed 1..25 --steps 200``
sweep on every push.
"""

from __future__ import annotations

import argparse
import sys

from repro.sim import mutants
from repro.sim.driver import Simulator
from repro.sim.scheduler import SimConfig, generate_ops
from repro.sim.shrinker import shrink_failure


def parse_seeds(text: str) -> list[int]:
    """``"7"`` -> [7]; ``"1..25"`` -> [1, 2, ..., 25]."""
    if ".." in text:
        low, high = text.split("..", 1)
        start, stop = int(low), int(high)
        if stop < start:
            raise argparse.ArgumentTypeError(f"empty seed range {text!r}")
        return list(range(start, stop + 1))
    return [int(text)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Differential fault-injection simulation of FungusDB.",
    )
    parser.add_argument(
        "--seed",
        type=parse_seeds,
        default=[1],
        help="one seed ('7') or an inclusive range ('1..25')",
    )
    parser.add_argument(
        "--steps", type=int, default=200, help="ops per seed (default 200)"
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip ddmin shrinking of failing schedules",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="record a span trace per seed to DIR/seed-<N>.jsonl "
        "(the flight recorder for debugging a divergence)",
    )
    parser.add_argument(
        "--forensics",
        action="store_true",
        help="enable death provenance: every eviction must resolve a "
        "complete infection chain (audited at end of run; divergences "
        "get a recent-deaths lineage dump)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run Tier-B static analysis (EXPLAIN CONSUME) over every "
        "consume before executing it and hold the verdict to what the "
        "execution actually removed (none = 0 rows, total = the whole "
        "extent)",
    )
    parser.add_argument(
        "--race-probe",
        action="store_true",
        help="arm the runtime thread-sanitizer probe on every database "
        "(a single-threaded sim must never trip it; a trip is a bug)",
    )
    parser.add_argument(
        "--mutant",
        choices=sorted(mutants.MUTANTS),
        help="install a deliberately broken mutant first (the run "
        "must then FAIL — proves the harness detects it)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="per-seed op histograms"
    )
    args = parser.parse_args(argv)

    undo = mutants.apply(args.mutant) if args.mutant else None
    failures = 0
    try:
        for seed in args.seed:
            config = SimConfig(seed=seed, steps=args.steps)
            ops = generate_ops(config)
            simulator = Simulator(
                config,
                trace_dir=args.trace_dir,
                forensics=args.forensics,
                analyze=args.analyze,
                race_probe=args.race_probe,
            )
            report = simulator.run(ops)
            print(report.describe())
            if args.trace_dir and simulator.trace_path is not None:
                print(f"  trace: {simulator.trace_path}")
            if args.verbose:
                histogram = ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(report.op_counts.items())
                )
                print(f"  ops: {histogram}")
            if not report.ok:
                failures += 1
                print(f"  reproduce locally: python -m repro.sim --seed {seed} "
                      f"--steps {args.steps}")
                if not args.no_shrink and args.mutant is None:
                    minimal = shrink_failure(config, ops)
                    print(f"  shrunk to {len(minimal)} ops:")
                    for op in minimal:
                        print(f"    {op}")
    finally:
        if undo is not None:
            undo()

    if args.mutant:
        if failures:
            print(f"mutant {args.mutant!r} detected by the harness (good).")
            return 0
        print(f"mutant {args.mutant!r} was NOT detected — the harness is blind!")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
