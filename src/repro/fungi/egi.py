"""EGI — "Evict Grouped Individuals", the paper's worked fungus.

The paper, verbatim: at each clock cycle T,

  * "select an element from R inversely randomly correlated with its
    age and seed it with the fungi F, decreasing its freshness" —
    older tuples are more likely to be seeded;
  * "select all F infected elements and decrease their freshness, also
    affecting the direct neighboring tuples at equal rate" — infection
    spreads bi-directionally along the insertion/time axis, and every
    infected tuple (old and newly infected alike) decays at the same
    rate.

The result is rot *spots*: contiguous insertion ranges whose freshness
melts away, "similar to Blue Cheese". Experiment F2 measures exactly
that spot structure; F5 sweeps this fungus's three rates to the
paper's "until it has been completely disappeared".

Age-biased seeding is implemented by tournament selection: draw
``age_bias`` uniform live candidates and seed the oldest. The seed
probability of a tuple then rises with its age rank (for bias k, the
oldest of n tuples is k times likelier than uniform), which realises
"inversely randomly correlated with its age" without an O(n) weighted
draw per cycle. ``exact_age_weighting=True`` switches to a true
age-proportional draw for tests and small tables.

Membership lives in a :class:`~repro.fungi.spotset.SpotSet`, making
the infection structure explicit: spread is O(#spots) endpoint
extension (only spot edges can grow — interior members' neighbours
are already infected), and the decay step is one batch mutator call
per spot instead of a per-member ``set_freshness`` loop.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.fungi.spotset import SpotSet
from repro.obs.profile import PROFILER
from repro.storage.vector import numpy


class EGIFungus(Fungus):
    """The paper's example fungus: age-biased seeds + neighbour spread."""

    name = "egi"

    def __init__(
        self,
        seeds_per_cycle: int = 1,
        decay_rate: float = 0.2,
        spread: bool = True,
        age_bias: int = 8,
        exact_age_weighting: bool = False,
    ) -> None:
        if seeds_per_cycle < 0:
            raise DecayError(f"seeds_per_cycle must be >= 0, got {seeds_per_cycle}")
        if not (0.0 < decay_rate <= 1.0):
            raise DecayError(f"decay_rate must be in (0, 1], got {decay_rate}")
        if age_bias < 1:
            raise DecayError(f"age_bias must be >= 1, got {age_bias}")
        self.seeds_per_cycle = seeds_per_cycle
        self.decay_rate = decay_rate
        self.spread = spread
        self.age_bias = age_bias
        self.exact_age_weighting = exact_age_weighting
        self._spots = SpotSet()

    @property
    def infected(self) -> frozenset[int]:
        """Currently infected row ids (live rows only)."""
        return frozenset(self._spots.members())

    @property
    def spot_spans(self) -> list[tuple[int, int]]:
        """The rot spots as inclusive ``(lo, hi)`` rid intervals."""
        return self._spots.spans()

    def reset(self) -> None:
        self._spots.clear()

    def on_evicted(self, rid: int) -> None:
        self._spots.remove(rid)

    def on_compacted(self, remap: Mapping[int, int]) -> None:
        self._spots.remap(remap)

    # ------------------------------------------------------------------

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        if not PROFILER.enabled:
            return self._cycle(table, rng)
        start = PROFILER.time()
        report = self._cycle(table, rng)
        PROFILER.record(
            "egi.cycle", rows=len(self._spots), seconds=PROFILER.time() - start
        )
        return report

    def _cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        # drop dead members: intersect every spot with the live runs it
        # still covers (splits spots around evicted interiors). With no
        # tombstones anywhere there is nothing stale to drop.
        if table.storage.tombstones:
            self._spots.replace(
                run
                for lo, hi in self._spots.spans()
                for run in table.storage.live_runs(lo, hi)
            )

        # 1. seed: age-biased selection of new infection sites
        for _ in range(self.seeds_per_cycle):
            seed = self._select_seed(table, rng)
            if seed is None:
                break
            if self._spots.add(seed):
                table.mark_infected(seed, self.name)
                report.seeded += 1

        if not self._spots:
            return report

        # 2. spread: "bi-directional growth" — only the spot edges have
        #    uninfected live neighbours, so extending each span's
        #    endpoints infects exactly the scalar frontier. The edge row
        #    is recorded as the infection source — the provenance edge
        #    forensics lineage chains on.
        if self.spread:
            grown = 0
            for lo, hi in self._spots.spans():
                prev_rid = table.storage.prev_live(lo)
                if prev_rid is not None and not self._spots.covers(prev_rid):
                    self._spots.add(prev_rid)
                    table.mark_infected(prev_rid, self.name, origin="spread", source=lo)
                    grown += 1
                next_rid = table.storage.next_live(hi)
                if next_rid is not None and not self._spots.covers(next_rid):
                    self._spots.add(next_rid)
                    table.mark_infected(next_rid, self.name, origin="spread", source=hi)
                    grown += 1
            report.spread += grown
            if PROFILER.enabled:
                PROFILER.record("egi.spread", rows=grown)

        # 3. decay: every infected element loses freshness at equal
        #    rate — one batch kernel call across all spots; spans are
        #    disjoint and ascending, so the concatenation is the same
        #    ascending rid order the scalar member loop used
        parts = [table.positive_rows_in(lo, hi) for lo, hi in self._spots.spans()]
        if table.supports_kernels and len(parts) > 1:
            rids = numpy.concatenate(
                [numpy.asarray(part, dtype=numpy.intp) for part in parts]
            )
        elif len(parts) == 1:
            rids = parts[0]
        else:
            rids = [rid for part in parts for rid in part]
        if len(rids):
            self._account(table.decay_many(rids, self.decay_rate, self.name), report)
        return report

    def _select_seed(self, table: DecayingTable, rng: random.Random) -> int | None:
        if self.exact_age_weighting:
            candidates = [
                rid for rid in table.live_rows() if not self._spots.covers(rid)
            ]
            if not candidates:
                return None
            ages = [table.age(rid) + 1.0 for rid in candidates]
            return rng.choices(candidates, weights=ages, k=1)[0]
        sample = table.sample_live(rng, self.age_bias)
        sample = [rid for rid in sample if not self._spots.covers(rid)]
        if not sample:
            return None
        # the lowest rid is the oldest (insertion order = time order)
        return min(sample)
