"""EGI — "Evict Grouped Individuals", the paper's worked fungus.

The paper, verbatim: at each clock cycle T,

  * "select an element from R inversely randomly correlated with its
    age and seed it with the fungi F, decreasing its freshness" —
    older tuples are more likely to be seeded;
  * "select all F infected elements and decrease their freshness, also
    affecting the direct neighboring tuples at equal rate" — infection
    spreads bi-directionally along the insertion/time axis, and every
    infected tuple (old and newly infected alike) decays at the same
    rate.

The result is rot *spots*: contiguous insertion ranges whose freshness
melts away, "similar to Blue Cheese". Experiment F2 measures exactly
that spot structure; F5 sweeps this fungus's three rates to the
paper's "until it has been completely disappeared".

Age-biased seeding is implemented by tournament selection: draw
``age_bias`` uniform live candidates and seed the oldest. The seed
probability of a tuple then rises with its age rank (for bias k, the
oldest of n tuples is k times likelier than uniform), which realises
"inversely randomly correlated with its age" without an O(n) weighted
draw per cycle. ``exact_age_weighting=True`` switches to a true
age-proportional draw for tests and small tables.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.obs.profile import PROFILER


class EGIFungus(Fungus):
    """The paper's example fungus: age-biased seeds + neighbour spread."""

    name = "egi"

    def __init__(
        self,
        seeds_per_cycle: int = 1,
        decay_rate: float = 0.2,
        spread: bool = True,
        age_bias: int = 8,
        exact_age_weighting: bool = False,
    ) -> None:
        if seeds_per_cycle < 0:
            raise DecayError(f"seeds_per_cycle must be >= 0, got {seeds_per_cycle}")
        if not (0.0 < decay_rate <= 1.0):
            raise DecayError(f"decay_rate must be in (0, 1], got {decay_rate}")
        if age_bias < 1:
            raise DecayError(f"age_bias must be >= 1, got {age_bias}")
        self.seeds_per_cycle = seeds_per_cycle
        self.decay_rate = decay_rate
        self.spread = spread
        self.age_bias = age_bias
        self.exact_age_weighting = exact_age_weighting
        self._infected: set[int] = set()

    @property
    def infected(self) -> frozenset[int]:
        """Currently infected row ids (live rows only)."""
        return frozenset(self._infected)

    def reset(self) -> None:
        self._infected.clear()

    def on_evicted(self, rid: int) -> None:
        self._infected.discard(rid)

    def on_compacted(self, remap: Mapping[int, int]) -> None:
        self._infected = {remap[rid] for rid in self._infected if rid in remap}

    # ------------------------------------------------------------------

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        if not PROFILER.enabled:
            return self._cycle(table, rng)
        start = PROFILER.time()
        report = self._cycle(table, rng)
        PROFILER.record(
            "egi.cycle", rows=len(self._infected), seconds=PROFILER.time() - start
        )
        return report

    def _cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        self._infected = {rid for rid in self._infected if table.is_live(rid)}

        # 1. seed: age-biased selection of new infection sites
        for _ in range(self.seeds_per_cycle):
            seed = self._select_seed(table, rng)
            if seed is None:
                break
            if seed not in self._infected:
                self._infected.add(seed)
                table.mark_infected(seed, self.name)
                report.seeded += 1

        if not self._infected:
            return report

        # 2. spread: infect direct time-axis neighbours of every
        #    currently infected element ("bi-directional growth").
        #    Each frontier row remembers which neighbour infected it —
        #    the provenance edge the forensics lineage chains on.
        if self.spread:
            frontier: dict[int, int] = {}
            for rid in self._infected:
                if not table.is_live(rid):
                    continue
                prev_rid, next_rid = table.neighbours(rid)
                for neighbour in (prev_rid, next_rid):
                    if neighbour is not None and neighbour not in self._infected:
                        frontier.setdefault(neighbour, rid)
            for rid, source in frontier.items():
                self._infected.add(rid)
                table.mark_infected(rid, self.name, origin="spread", source=source)
                report.spread += 1
            if PROFILER.enabled:
                PROFILER.record("egi.spread", rows=len(frontier))

        # 3. decay: every infected element loses freshness at equal rate
        for rid in sorted(self._infected):
            if table.is_live(rid) and table.freshness(rid) > 0.0:
                self._decay(table, rid, self.decay_rate, report)
        return report

    def _select_seed(self, table: DecayingTable, rng: random.Random) -> int | None:
        if self.exact_age_weighting:
            candidates = [rid for rid in table.live_rows() if rid not in self._infected]
            if not candidates:
                return None
            ages = [table.age(rid) + 1.0 for rid in candidates]
            return rng.choices(candidates, weights=ages, k=1)[0]
        sample = table.sample_live(rng, self.age_bias)
        sample = [rid for rid in sample if rid not in self._infected]
        if not sample:
            return None
        # the lowest rid is the oldest (insertion order = time order)
        return min(sample)
