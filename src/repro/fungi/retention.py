"""Retention-time decay — the paper's "old-fashioned decay function".

"An old-fashioned decay function F would be to consider retention
times, where after the data will be discarded." Freshness follows a
linear ramp from 1.0 at insertion to 0.0 at ``max_age``, so the
freshness column stays meaningful (how far into its retention window a
tuple is) while eviction behaves exactly like a TTL.
"""

from __future__ import annotations

import random

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError


class RetentionFungus(Fungus):
    """TTL decay: tuples expire ``max_age`` ticks after insertion."""

    name = "retention"

    def __init__(self, max_age: float) -> None:
        if max_age <= 0:
            raise DecayError(f"max_age must be positive, got {max_age}")
        self.max_age = max_age

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        for rid in list(table.live_rows()):
            target = max(0.0, 1.0 - table.age(rid) / self.max_age)
            current = table.freshness(rid)
            if target < current:
                self._decay(table, rid, current - target, report)
        return report
