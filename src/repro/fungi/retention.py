"""Retention-time decay — the paper's "old-fashioned decay function".

"An old-fashioned decay function F would be to consider retention
times, where after the data will be discarded." Freshness follows a
linear ramp from 1.0 at insertion to 0.0 at ``max_age``, so the
freshness column stays meaningful (how far into its retention window a
tuple is) while eviction behaves exactly like a TTL.
"""

from __future__ import annotations

import random

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.storage.vector import numpy


class RetentionFungus(Fungus):
    """TTL decay: tuples expire ``max_age`` ticks after insertion."""

    name = "retention"

    def __init__(self, max_age: float) -> None:
        if max_age <= 0:
            raise DecayError(f"max_age must be positive, got {max_age}")
        self.max_age = max_age

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        rids = table.storage.live_list()
        if not rids:
            return report
        if table.supports_kernels:
            ages = table.ages_of(rids)
            current = table.freshness_of_many(rids)
            target = numpy.maximum(0.0, 1.0 - ages / self.max_age)
            mask = target < current
            if not mask.any():
                return report
            selected = numpy.asarray(rids, dtype=numpy.intp)[mask].tolist()
            cur = current[mask]
            targets = cur - (cur - target[mask])
            self._account(
                table.set_freshness_many(selected, targets, self.name), report
            )
            return report
        selected: list[int] = []
        targets: list[float] = []
        for rid in rids:
            age = table.age(rid)
            target_value = max(0.0, 1.0 - age / self.max_age)
            current_value = table.freshness(rid)
            if target_value < current_value:
                selected.append(rid)
                targets.append(current_value - (current_value - target_value))
        if selected:
            self._account(
                table.set_freshness_many(selected, targets, self.name), report
            )
        return report
