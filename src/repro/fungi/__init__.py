"""The fungus library: concrete decay organisms.

Coverage of the paper's design space — "rate of decay, what to decay,
how to decay":

* :class:`~repro.fungi.retention.RetentionFungus` — the
  "old-fashioned" retention-time cliff the paper names first.
* :class:`~repro.fungi.linear.LinearDecayFungus` — constant loss/tick.
* :class:`~repro.fungi.exponential.ExponentialDecayFungus` — half-life.
* :class:`~repro.fungi.sigmoid.SigmoidDecayFungus` — logistic
  freshness-vs-age: fresh through youth, collapse at midlife.
* :class:`~repro.fungi.egi.EGIFungus` — the paper's worked example:
  age-biased seeding + bi-directional neighbour spread.
* :class:`~repro.fungi.blue_cheese.BlueCheeseFungus` — bounded,
  accelerating rot spots (the Blue Cheese analogy made literal).
* :class:`~repro.fungi.access.AccessRefreshFungus` — access boosts
  freshness (the "inspect them once" extension).
* :class:`~repro.fungi.wrappers.PredicateFungus` — *what* to decay.
* :class:`~repro.fungi.wrappers.CompositeFungus` — several at once.
* :class:`~repro.fungi.wrappers.NullFungus` — the no-decay control.

:class:`~repro.fungi.spotset.SpotSet` is the shared rot-spot interval
structure EGI and Blue Cheese keep their membership in.
"""

from repro.fungi.spotset import SpotSet
from repro.fungi.retention import RetentionFungus
from repro.fungi.linear import LinearDecayFungus
from repro.fungi.exponential import ExponentialDecayFungus
from repro.fungi.sigmoid import SigmoidDecayFungus
from repro.fungi.egi import EGIFungus
from repro.fungi.blue_cheese import BlueCheeseFungus
from repro.fungi.access import AccessRefreshFungus
from repro.fungi.wrappers import CompositeFungus, NullFungus, PredicateFungus

__all__ = [
    "AccessRefreshFungus",
    "BlueCheeseFungus",
    "CompositeFungus",
    "EGIFungus",
    "ExponentialDecayFungus",
    "LinearDecayFungus",
    "NullFungus",
    "PredicateFungus",
    "RetentionFungus",
    "SigmoidDecayFungus",
    "SpotSet",
]
