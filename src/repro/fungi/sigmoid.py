"""Sigmoid decay: data stays fresh, then collapses.

The paper invites "many more data fungi … based on their rate of
decay". The logistic fungus fills the gap between the retention cliff
(fresh until the instant of death) and linear decay (dying from the
moment of birth): freshness follows

    f(age) = 1 / (1 + exp(steepness × (age − midlife)))

so a tuple keeps most of its value through youth, fades quickly
around ``midlife``, and lingers near zero until ``evict_below``
cuts it off. This is how citation counts, news relevance and cache
hit-rates actually age — the most realistic organism in the library.
"""

from __future__ import annotations

import math
import random

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError


class SigmoidDecayFungus(Fungus):
    """Logistic freshness-vs-age decay with an eviction floor."""

    name = "sigmoid"

    def __init__(
        self, midlife: float, steepness: float = 0.5, evict_below: float = 0.05
    ) -> None:
        if midlife <= 0:
            raise DecayError(f"midlife must be positive, got {midlife}")
        if steepness <= 0:
            raise DecayError(f"steepness must be positive, got {steepness}")
        if not (0.0 <= evict_below < 1.0):
            raise DecayError(f"evict_below must be in [0, 1), got {evict_below}")
        self.midlife = midlife
        self.steepness = steepness
        self.evict_below = evict_below

    def target_freshness(self, age: float) -> float:
        """The logistic curve value for a given age."""
        exponent = self.steepness * (age - self.midlife)
        # clamp to avoid overflow for very old tuples
        if exponent > 60:
            return 0.0
        if exponent < -60:
            return 1.0
        value = 1.0 / (1.0 + math.exp(exponent))
        return 0.0 if value < self.evict_below else value

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        rids = table.live_positive_rows()
        if len(rids) == 0:
            return report
        # the logistic targets stay per-row python: math.exp and
        # numpy.exp differ in the last ulp, and the differential oracle
        # demands bit-identical freshness on both backends
        ages = [float(a) for a in table.ages_of(rids)]
        current = [float(f) for f in table.freshness_of_many(rids)]
        selected: list[int] = []
        targets: list[float] = []
        for rid, age, cur in zip(rids, ages, current):
            target = self.target_freshness(age)
            if target < cur:
                selected.append(rid)
                targets.append(cur - (cur - target))
        if selected:
            self._account(
                table.set_freshness_many(selected, targets, self.name), report
            )
        return report
