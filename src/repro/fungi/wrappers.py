"""Structural fungi: composition, predication, and the null control.

These cover the paper's "what to decay" axis and give experiments
their control arms:

* :class:`NullFungus` — decays nothing (the unbounded-growth control
  of experiment F1).
* :class:`PredicateFungus` — only rows matching an attribute predicate
  decay (e.g. rot the 404s, keep the 200s).
* :class:`CompositeFungus` — several fungi share one table, like a
  real cheese cave.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Mapping

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError


class NullFungus(Fungus):
    """The control: no decay at all (the data-hoarder's database)."""

    name = "null"

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        return DecayReport(self.name, table.clock.now)


class PredicateFungus(Fungus):
    """Constant-rate decay of only the rows matching ``predicate``.

    ``predicate`` receives the row's attribute dict (no ``t``/``f``).
    This is the "what to decay" axis: age the error logs, keep the
    audit trail.
    """

    def __init__(
        self,
        predicate: Callable[[dict[str, Any]], bool],
        rate: float,
        name: str = "predicate",
    ) -> None:
        if not (0.0 < rate <= 1.0):
            raise DecayError(f"rate must be in (0, 1], got {rate}")
        self.predicate = predicate
        self.rate = rate
        self.name = name

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        matching = [
            rid
            for rid in table.live_positive_rows()
            if self.predicate(table.attributes_of(rid))
        ]
        if matching:
            self._account(table.decay_many(matching, self.rate, self.name), report)
        return report


class CompositeFungus(Fungus):
    """Run several fungi in sequence within one cycle."""

    def __init__(self, fungi: list[Fungus]) -> None:
        if not fungi:
            raise DecayError("CompositeFungus needs at least one fungus")
        self.fungi = list(fungi)
        self.name = "+".join(f.name for f in fungi)

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        merged: DecayReport | None = None
        for fungus in self.fungi:
            report = fungus.cycle(table, rng)
            merged = report if merged is None else merged.merge(report)
        assert merged is not None
        merged.fungus = self.name
        return merged

    def reset(self) -> None:
        for fungus in self.fungi:
            fungus.reset()

    def on_evicted(self, rid: int) -> None:
        for fungus in self.fungi:
            fungus.on_evicted(rid)

    def on_compacted(self, remap: Mapping[int, int]) -> None:
        for fungus in self.fungi:
            fungus.on_compacted(remap)
