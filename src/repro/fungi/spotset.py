"""SpotSet: rot spots as sorted disjoint rid intervals.

The paper's EGI fungus produces rot *spots* — contiguous insertion
ranges whose freshness melts away together. Tracking membership as a
``set[int]`` makes every cycle O(infected): each member is probed for
neighbours even though only the spot *edges* can grow. A
:class:`SpotSet` stores the same membership as sorted disjoint
inclusive ``[lo, hi]`` intervals instead, so

* spreading is O(#spots) endpoint extension,
* the decay step is one batch mutator call per interval, and
* liveness maintenance intersects intervals with the storage table's
  live runs instead of filtering members one by one.

Invariants (checked by the test suite, relied on everywhere):

* spans are sorted ascending and pairwise disjoint;
* no two spans are rid-adjacent (``end + 1 < next start``) — adjacency
  merges on :meth:`add`;
* every rid inside a span is a member; there is no partial occupancy.

A span may cover rids that died since the last sync — callers refresh
with :meth:`replace` (from ``Table.live_runs``) at the top of each
cycle, exactly where the scalar fungi filtered their member sets.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, Mapping


class SpotSet:
    """Sorted disjoint inclusive ``[lo, hi]`` rid intervals."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, spans: Iterable[tuple[int, int]] = ()) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        for lo, hi in spans:
            self.add_span(lo, hi)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total member count across all spans."""
        return sum(hi - lo + 1 for lo, hi in zip(self._starts, self._ends))

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __repr__(self) -> str:
        return f"SpotSet({self.spans()!r})"

    def spans(self) -> list[tuple[int, int]]:
        """The intervals, ascending: ``[(lo, hi), ...]`` inclusive."""
        return list(zip(self._starts, self._ends))

    def members(self) -> Iterator[int]:
        """Every member rid, ascending."""
        for lo, hi in zip(self._starts, self._ends):
            yield from range(lo, hi + 1)

    def covers(self, rid: int) -> bool:
        """True when ``rid`` is a member of some span."""
        i = bisect_right(self._starts, rid) - 1
        return i >= 0 and rid <= self._ends[i]

    def covers_span(self, lo: int, hi: int) -> bool:
        """True when one existing span contains all of ``[lo, hi]``.

        The steady-state fast path for the rot dirty-map: re-marking
        rids inside an already-dirty span is a no-op, detectable in
        O(log spans) without touching the batch itself.
        """
        i = bisect_right(self._starts, lo) - 1
        return i >= 0 and hi <= self._ends[i]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, rid: int) -> bool:
        """Add one rid; merges with rid-adjacent spans. False if present."""
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, rid) - 1
        if i >= 0 and rid <= ends[i]:
            return False
        joins_left = i >= 0 and ends[i] == rid - 1
        joins_right = i + 1 < len(starts) and starts[i + 1] == rid + 1
        if joins_left and joins_right:
            ends[i] = ends[i + 1]
            del starts[i + 1]
            del ends[i + 1]
        elif joins_left:
            ends[i] = rid
        elif joins_right:
            starts[i + 1] = rid
        else:
            starts.insert(i + 1, rid)
            ends.insert(i + 1, rid)
        return True

    def add_span(self, lo: int, hi: int) -> None:
        """Add the inclusive range ``[lo, hi]`` (merging as needed)."""
        self.add_runs(((lo, hi),))

    def add_runs(self, runs: Iterable[tuple[int, int]]) -> None:
        """Bulk-add inclusive ``(lo, hi)`` runs in one sort-merge sweep.

        Runs may arrive unsorted and may overlap each other or existing
        spans; cost is O((spans + runs) log(spans + runs)) rather than
        the O(members) a per-rid :meth:`add` loop would pay. This is the
        path the storage table's rot dirty-map takes on every batch
        freshness write.
        """
        pairs = list(zip(self._starts, self._ends))
        for lo, hi in runs:
            if lo > hi:
                raise ValueError(f"invalid span [{lo}, {hi}]")
            pairs.append((lo, hi))
        pairs.sort()
        starts: list[int] = []
        ends: list[int] = []
        for lo, hi in pairs:
            if starts and lo <= ends[-1] + 1:
                if hi > ends[-1]:
                    ends[-1] = hi
                continue
            starts.append(lo)
            ends.append(hi)
        self._starts = starts
        self._ends = ends

    def remove(self, rid: int) -> bool:
        """Remove one rid, splitting its span; False if not a member."""
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, rid) - 1
        if i < 0 or rid > ends[i]:
            return False
        lo, hi = starts[i], ends[i]
        if lo == hi:
            del starts[i]
            del ends[i]
        elif rid == lo:
            starts[i] = rid + 1
        elif rid == hi:
            ends[i] = rid - 1
        else:
            ends[i] = rid - 1
            starts.insert(i + 1, rid + 1)
            ends.insert(i + 1, hi)
        return True

    def clear(self) -> None:
        """Forget all spans."""
        self._starts.clear()
        self._ends.clear()

    def replace(self, spans: Iterable[tuple[int, int]]) -> None:
        """Replace the whole structure with pre-sorted disjoint spans.

        The liveness-sync fast path: ``Table.live_runs`` already emits
        sorted disjoint non-adjacent runs, so no per-rid merging is
        needed. Falls back to :meth:`add_span` when an input span
        touches its predecessor (defensive, O(members) only then).
        """
        starts: list[int] = []
        ends: list[int] = []
        for lo, hi in spans:
            if lo > hi:
                raise ValueError(f"invalid span [{lo}, {hi}]")
            if starts and lo <= ends[-1] + 1:
                ends[-1] = max(ends[-1], hi)
                continue
            starts.append(lo)
            ends.append(hi)
        self._starts = starts
        self._ends = ends

    def remap(self, remap: Mapping[int, int]) -> None:
        """Translate members through a compaction remap.

        Members missing from ``remap`` died before compaction and are
        dropped. Compaction preserves relative order and only closes
        gaps, so surviving members regroup into (possibly fewer,
        possibly merged) contiguous spans — rebuilt here in one
        ascending sweep.
        """
        new_ids = sorted(
            remap[rid] for rid in self.members() if rid in remap
        )
        runs: list[tuple[int, int]] = []
        for rid in new_ids:
            if runs and rid == runs[-1][1] + 1:
                runs[-1] = (runs[-1][0], rid)
            else:
                runs.append((rid, rid))
        self.replace(runs)
