"""Linear decay: every tuple loses a constant amount per cycle."""

from __future__ import annotations

import random

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError


class LinearDecayFungus(Fungus):
    """Uniform decay of ``rate`` freshness per cycle for every tuple.

    A tuple therefore lives exactly ``ceil(1/rate)`` cycles — the
    whole relation is a conveyor belt to the drain.
    """

    name = "linear"

    def __init__(self, rate: float) -> None:
        if not (0.0 < rate <= 1.0):
            raise DecayError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        for rid in list(table.live_rows()):
            if table.freshness(rid) > 0.0:
                self._decay(table, rid, self.rate, report)
        return report
