"""Linear decay: every tuple loses a constant amount per cycle."""

from __future__ import annotations

import random

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError


class LinearDecayFungus(Fungus):
    """Uniform decay of ``rate`` freshness per cycle for every tuple.

    A tuple therefore lives exactly ``ceil(1/rate)`` cycles — the
    whole relation is a conveyor belt to the drain.
    """

    name = "linear"

    def __init__(self, rate: float) -> None:
        if not (0.0 < rate <= 1.0):
            raise DecayError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        rids = table.live_positive_rows()
        if len(rids):
            self._account(table.decay_many(rids, self.rate, self.name), report)
        return report
