"""Exponential decay: freshness halves every ``half_life`` cycles.

Unlike linear decay this never reaches zero by itself, so an
``evict_below`` floor says when a tuple is *effectively* dead — the
knob that turns an asymptote back into Law 1's "completely
disappeared".
"""

from __future__ import annotations

import random

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError


class ExponentialDecayFungus(Fungus):
    """Half-life decay with an eviction floor."""

    name = "exponential"

    def __init__(self, half_life: float, evict_below: float = 0.01) -> None:
        if half_life <= 0:
            raise DecayError(f"half_life must be positive, got {half_life}")
        if not (0.0 <= evict_below < 1.0):
            raise DecayError(f"evict_below must be in [0, 1), got {evict_below}")
        self.half_life = half_life
        self.evict_below = evict_below
        self.factor = 0.5 ** (1.0 / half_life)

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        for rid in list(table.live_rows()):
            current = table.freshness(rid)
            if current <= 0.0:
                continue
            new = current * self.factor
            if new < self.evict_below:
                new = 0.0
            self._decay(table, rid, current - new, report)
        return report
