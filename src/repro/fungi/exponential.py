"""Exponential decay: freshness halves every ``half_life`` cycles.

Unlike linear decay this never reaches zero by itself, so an
``evict_below`` floor says when a tuple is *effectively* dead — the
knob that turns an asymptote back into Law 1's "completely
disappeared".
"""

from __future__ import annotations

import random

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.storage.vector import numpy


class ExponentialDecayFungus(Fungus):
    """Half-life decay with an eviction floor."""

    name = "exponential"

    def __init__(self, half_life: float, evict_below: float = 0.01) -> None:
        if half_life <= 0:
            raise DecayError(f"half_life must be positive, got {half_life}")
        if not (0.0 <= evict_below < 1.0):
            raise DecayError(f"evict_below must be in [0, 1), got {evict_below}")
        self.half_life = half_life
        self.evict_below = evict_below
        self.factor = 0.5 ** (1.0 / half_life)

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)
        rids = table.live_positive_rows()
        if len(rids) == 0:
            return report
        old = table.freshness_of_many(rids)
        # both branches compute current - (current - current*factor) —
        # the exact float dance the scalar path performed — so the
        # written freshness is bit-identical either way
        if table.supports_kernels:
            new = old * self.factor
            new = numpy.where(new < self.evict_below, 0.0, new)
            targets = old - (old - new)
        else:
            targets = []
            for current in old:
                new_value = current * self.factor
                if new_value < self.evict_below:
                    new_value = 0.0
                targets.append(current - (current - new_value))
        self._account(table.set_freshness_many(rids, targets, self.name), report)
        return report
