"""Blue Cheese fungus: bounded, accelerating rot spots.

The paper likens EGI's effect to Blue Cheese, "where portions of the
cheese turn into its rotting equivalent over time. It remains edible
for a long time though." This fungus makes the analogy literal and
explores a different corner of the design space than EGI:

* at most ``max_spots`` rot spots exist at a time (a cheese has a
  few veins, not one everywhere);
* each spot is an explicit contiguous region that grows by one tuple
  per cycle on each side;
* rot *accelerates* with spot age: members lose
  ``base_rate × (1 + acceleration × spot_age)`` per cycle, so young
  veins are mild and old veins aggressive — the "remains edible for a
  long time" shape.

Each vein keeps its membership in its own
:class:`~repro.fungi.spotset.SpotSet` (a vein can fragment around
evicted interiors), so growth touches only span endpoints and the
accelerating decay is one batch mutator call per span.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError
from repro.fungi.spotset import SpotSet


@dataclass
class _Spot:
    """One rot vein: its member intervals and its age in cycles."""

    members: SpotSet = field(default_factory=SpotSet)
    age: int = 0


class BlueCheeseFungus(Fungus):
    """A few explicit rot veins that grow and accelerate."""

    name = "blue-cheese"

    def __init__(
        self,
        max_spots: int = 3,
        base_rate: float = 0.05,
        acceleration: float = 0.25,
        age_bias: int = 8,
    ) -> None:
        if max_spots < 1:
            raise DecayError(f"max_spots must be >= 1, got {max_spots}")
        if not (0.0 < base_rate <= 1.0):
            raise DecayError(f"base_rate must be in (0, 1], got {base_rate}")
        if acceleration < 0:
            raise DecayError(f"acceleration must be >= 0, got {acceleration}")
        if age_bias < 1:
            raise DecayError(f"age_bias must be >= 1, got {age_bias}")
        self.max_spots = max_spots
        self.base_rate = base_rate
        self.acceleration = acceleration
        self.age_bias = age_bias
        self._spots: list[_Spot] = []

    @property
    def spots(self) -> list[frozenset[int]]:
        """Member sets of the active spots."""
        return [frozenset(s.members.members()) for s in self._spots]

    def reset(self) -> None:
        self._spots.clear()

    def on_evicted(self, rid: int) -> None:
        for spot in self._spots:
            spot.members.remove(rid)

    def on_compacted(self, remap: Mapping[int, int]) -> None:
        for spot in self._spots:
            spot.members.remap(remap)

    def _covered_anywhere(self, rid: int) -> bool:
        return any(spot.members.covers(rid) for spot in self._spots)

    # ------------------------------------------------------------------

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        report = DecayReport(self.name, table.clock.now)

        # spots whose members all rotted away are finished veins (with
        # no tombstones anywhere there is nothing stale to trim)
        if table.storage.tombstones:
            for spot in self._spots:
                spot.members.replace(
                    run
                    for lo, hi in spot.members.spans()
                    for run in table.storage.live_runs(lo, hi)
                )
            self._spots = [s for s in self._spots if s.members or s.age == 0]

        # seed a new vein if below budget (age-biased, like EGI)
        if len(self._spots) < self.max_spots:
            seed = self._select_seed(table, rng)
            if seed is not None:
                self._spots.append(_Spot(members=SpotSet([(seed, seed)])))
                table.mark_infected(seed, self.name)
                report.seeded += 1

        for spot in self._spots:
            if not spot.members:
                continue
            # grow one tuple outward on each side of the vein
            spans = spot.members.spans()
            left_edge = spans[0][0]
            right_edge = spans[-1][1]
            prev_rid = table.storage.prev_live(left_edge)
            next_rid = table.storage.next_live(right_edge)
            for frontier, edge in ((prev_rid, left_edge), (next_rid, right_edge)):
                if frontier is not None and not self._covered_anywhere(frontier):
                    spot.members.add(frontier)
                    table.mark_infected(
                        frontier, self.name, origin="spread", source=edge
                    )
                    report.spread += 1
            # accelerating decay of all members — one kernel call per span
            rate = min(1.0, self.base_rate * (1.0 + self.acceleration * spot.age))
            for lo, hi in spot.members.spans():
                rids = table.positive_rows_in(lo, hi)
                if len(rids):
                    self._account(table.decay_many(rids, rate, self.name), report)
            spot.age += 1
        return report

    def _select_seed(self, table: DecayingTable, rng: random.Random) -> int | None:
        sample = [
            rid
            for rid in table.sample_live(rng, self.age_bias)
            if not self._covered_anywhere(rid)
        ]
        if not sample:
            return None
        return min(sample)
