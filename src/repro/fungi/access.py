"""Access-refresh fungus: queried data stays fresh.

The paper hints that owners "taking care" of their data stop it from
rotting, and that data should be inspected "once before removal".
This extension wraps any inner fungus and *boosts* the freshness of
rows that queries touched since the last cycle — so a hot working set
survives while untouched history rots on schedule.

The FungusDB feeds accesses in via :meth:`note_access` after every
query over the table.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.core.fungus import DecayReport, Fungus
from repro.core.table import DecayingTable
from repro.errors import DecayError


class AccessRefreshFungus(Fungus):
    """Wrap ``inner``; rows accessed since the last cycle gain freshness."""

    def __init__(self, inner: Fungus, boost: float = 0.3, max_freshness: float = 1.0) -> None:
        if not (0.0 < boost <= 1.0):
            raise DecayError(f"boost must be in (0, 1], got {boost}")
        if not (0.0 < max_freshness <= 1.0):
            raise DecayError(f"max_freshness must be in (0, 1], got {max_freshness}")
        self.inner = inner
        self.boost = boost
        self.max_freshness = max_freshness
        self.name = f"access-refresh({inner.name})"
        self._pending: set[int] = set()
        self.total_refreshed = 0

    def note_access(self, rids: Iterable[int]) -> None:
        """Record that a query read these rows."""
        self._pending.update(rids)

    def reset(self) -> None:
        self._pending.clear()
        self.inner.reset()

    def on_evicted(self, rid: int) -> None:
        self._pending.discard(rid)
        self.inner.on_evicted(rid)

    def on_compacted(self, remap: Mapping[int, int]) -> None:
        self._pending = {remap[rid] for rid in self._pending if rid in remap}
        self.inner.on_compacted(remap)

    def cycle(self, table: DecayingTable, rng: random.Random) -> DecayReport:
        alive = [rid for rid in sorted(self._pending) if table.is_live(rid)]
        if alive:
            selected: list[int] = []
            boosts: list[float] = []
            for rid, current in zip(alive, table.freshness_of_many(alive)):
                boosted = min(self.max_freshness, float(current) + self.boost)
                if boosted > current:
                    selected.append(rid)
                    boosts.append(boosted)
            if selected:
                table.set_freshness_many(selected, boosts, self.name)
                self.total_refreshed += len(selected)
        self._pending.clear()
        report = self.inner.cycle(table, rng)
        return DecayReport(
            fungus=self.name,
            tick=report.tick,
            seeded=report.seeded,
            spread=report.spread,
            decayed=report.decayed,
            freshness_removed=report.freshness_removed,
            newly_exhausted=report.newly_exhausted,
        )
