"""Bounded-queue admission control with explicit backpressure.

The engine worker is a single thread; when clients submit strong
operations faster than it drains them, *something* has to give. This
controller makes the give explicit: at most ``limit`` operations may
be admitted-but-unfinished at once, and the request that would exceed
the bound is answered ``BUSY`` immediately — on the event loop, within
microseconds — instead of being buried in an unbounded queue where it
would time out invisibly.

Two refinements matter for correctness:

* **Admission is a promise.** Once :meth:`try_admit` says yes, the
  operation will run to completion even if the server starts draining
  a moment later — draining only refuses *new* work. The backpressure
  tests hold the server to this: fill the queue, drain, and every
  admitted request still answers.
* **Ticks bypass admission.** Law 1 is the server's own metabolism,
  not client work; a saturated queue must not starve decay, so the
  background ticker submits outside the bound.
"""

from __future__ import annotations


class AdmissionController:
    """Counts in-flight admitted operations against a hard bound."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.in_flight = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.draining = False

    def try_admit(self) -> bool:
        """Admit one operation, or refuse because the queue is full."""
        if self.in_flight >= self.limit:
            self.rejected_total += 1
            return False
        self.in_flight += 1
        self.admitted_total += 1
        return True

    def release(self) -> None:
        """An admitted operation finished (successfully or not)."""
        assert self.in_flight > 0, "release() without a matching try_admit()"
        self.in_flight -= 1

    def start_drain(self) -> None:
        """Refuse new strong operations; in-flight ones run to completion."""
        self.draining = True

    @property
    def idle(self) -> bool:
        return self.in_flight == 0

    def describe(self) -> dict[str, object]:
        """A point-in-time snapshot for the ops plane."""
        return {
            "limit": self.limit,
            "in_flight": self.in_flight,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "draining": self.draining,
        }
