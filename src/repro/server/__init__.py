"""FungusDB over the network: the asyncio front-end.

The paper's fungus-database only pays off when many owners feed and
query it at once. This package puts a validated, access-controlled
network boundary in front of the embedded engine:

* :mod:`repro.server.protocol` — length-prefixed JSON frames;
* :mod:`repro.server.auth` — token-based principals with per-table
  rights and logical-clock expiry;
* :mod:`repro.server.policy` — the plan-time gatekeeper (a statement
  is parsed, planned and Tier-B-analyzed *before* execution; a session
  lacking CONSUME rights on a table is refused without touching data);
* :mod:`repro.server.session` — per-connection session state;
* :mod:`repro.server.admission` — bounded-queue admission control with
  explicit ``BUSY`` backpressure and drain support;
* :mod:`repro.server.snapshot` — tick-boundary snapshots of the numpy
  columns, so read-only queries never block behind a mid-flight decay
  tick and never observe a torn one;
* :mod:`repro.server.server` — :class:`FungusServer`, wiring it all to
  an :mod:`asyncio` TCP listener (``python -m repro.serve``);
* :mod:`repro.server.ops` — the ops plane: the slow-query ring and the
  embedded HTTP listener serving ``/metrics``, ``/healthz``,
  ``/readyz`` and the ``/debug/*`` views;
* :mod:`repro.server.loadgen` — the qps/p50/p99 load generator behind
  ``benchmarks/baselines/BENCH_server.json``, now also the trace
  sampler feeding the per-stage latency entries.

Threading model (the whole design in one paragraph): the event loop
owns connections, framing, auth and admission; a single worker thread
owns the engine. Every mutating or strongly-consistent operation is a
job on that worker, so engine state is still strictly single-writer —
exactly the discipline the storage layer documents. Snapshot reads are
served loop-side from the immutable :class:`~repro.server.snapshot.TickSnapshot`
published at each tick boundary, which is what keeps readers
responsive while Law 1 grinds through a large relation.
"""

from repro.server.auth import AuthError, AuthRegistry, Grant
from repro.server.admission import AdmissionController
from repro.server.client import FungusClient, ServerError
from repro.server.ops import OpsServer, SlowQueryLog
from repro.server.policy import AccessDenied, Gatekeeper
from repro.server.protocol import (
    Code,
    FrameError,
    MAX_FRAME,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.server.server import FungusServer, ServerConfig
from repro.server.session import Session, SessionManager
from repro.server.snapshot import TickSnapshot

__all__ = [
    "AccessDenied",
    "AdmissionController",
    "AuthError",
    "AuthRegistry",
    "Code",
    "FrameError",
    "FungusClient",
    "FungusServer",
    "Gatekeeper",
    "ServerError",
    "Grant",
    "MAX_FRAME",
    "OpsServer",
    "ServerConfig",
    "Session",
    "SessionManager",
    "SlowQueryLog",
    "TickSnapshot",
    "decode_frame",
    "encode_frame",
    "read_frame",
]
