""":class:`FungusServer`: the asyncio front-end over one FungusDB.

Ownership rules, stated once and enforced everywhere:

* The **event loop** owns connections, framing, auth, admission, the
  session table, the metrics registry, and reads against the published
  :class:`~repro.server.snapshot.TickSnapshot`.
* The **worker thread** (a one-thread executor) owns the engine. Every
  strong operation — INSERT, strong SELECT, CONSUME, tick — is a job
  on that thread, so engine state keeps the single-writer discipline
  the storage layer documents. The gatekeeper also runs *inside* the
  job, immediately before execution, so policy is checked against the
  exact catalog state the statement will run on.
* The snapshot crosses from worker to loop by a single attribute
  assignment — atomic under the interpreter — and is immutable after
  publication.

Each connection's frames are handled strictly sequentially, which is
the per-client response-ordering guarantee the concurrency suite
asserts; throughput comes from many connections, not from pipelining
within one.

The worker also appends every strong operation to ``oplog`` in actual
execution order. Replaying that log single-threaded into a fresh
FungusDB with the same seed must reproduce the server's final state
bit-for-bit — the differential oracle the concurrency tests run.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import FungusError
from repro.server.admission import AdmissionController
from repro.server.auth import AuthError, AuthRegistry, Grant
from repro.server.metrics import ServerMetrics
from repro.server.policy import AccessDenied, Gatekeeper
from repro.server.protocol import (
    Code,
    FrameError,
    MAX_FRAME,
    error,
    ok,
    read_frame,
    write_frame,
)
from repro.server.session import Session, SessionManager
from repro.server.snapshot import TickSnapshot

if TYPE_CHECKING:
    from repro.core.db import FungusDB


@dataclass
class ServerConfig:
    """Tunables for one :class:`FungusServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the kernel pick (tests); real deploys set one
    queue_limit: int = 64
    tick_interval: float | None = None  # seconds between background ticks
    max_frame: int = MAX_FRAME
    auth: AuthRegistry | None = None
    #: enable the ``debug_sleep`` op — tests use it to hold the worker
    #: busy and deterministically fill the admission queue
    debug_ops: bool = False


#: ops that require the admin grant
ADMIN_OPS = frozenset({"tick", "drain", "sessions"})


class FungusServer:
    """Serve one :class:`~repro.core.db.FungusDB` over TCP frames."""

    def __init__(self, db: "FungusDB", config: ServerConfig | None = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.sessions = SessionManager()
        self.admission = AdmissionController(self.config.queue_limit)
        self.metrics = ServerMetrics()
        self.gatekeeper = Gatekeeper(db.engine)
        #: every strong op in worker execution order: ("insert", table,
        #: row) | ("query", sql) | ("tick", n) — the replay oracle's input
        self.oplog: list[tuple[Any, ...]] = []
        self.snapshot: TickSnapshot | None = None
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="fungus-engine"
        )
        self._server: asyncio.AbstractServer | None = None
        self._ticker: asyncio.Task[None] | None = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "FungusServer":
        """Bind, publish the initial snapshot, start the background ticker."""
        self.snapshot = await self._run_strong(lambda: TickSnapshot.capture(self.db))
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            backlog=2048,  # the loadgen opens 1k+ connections in one burst
        )
        if self.config.tick_interval is not None:
            self._ticker = asyncio.ensure_future(self._tick_loop())
        return self

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def drain(self) -> int:
        """Refuse new strong ops, wait for admitted ones, return count drained."""
        self.admission.start_drain()
        drained = self.admission.in_flight
        while not self.admission.idle:
            await asyncio.sleep(0.005)
        return drained

    async def stop(self) -> None:
        """Stop ticking, close the listener, finish in-flight work."""
        self._stopping = True
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while not self.admission.idle:
            await asyncio.sleep(0.005)
        self._worker.shutdown(wait=True)

    # ------------------------------------------------------------------
    # the background Law-1 ticker
    # ------------------------------------------------------------------

    async def _tick_loop(self) -> None:
        assert self.config.tick_interval is not None
        while True:
            await asyncio.sleep(self.config.tick_interval)
            await self._run_tick(1)

    async def _run_tick(self, ticks: int) -> float:
        """Advance the clock in the worker and publish the new snapshot.

        Submitted *outside* admission control on purpose: decay is the
        server's metabolism, and a saturated client queue must not be
        able to starve Law 1.
        """
        def job() -> float:
            self.db.tick(ticks)
            self.oplog.append(("tick", ticks))
            self.snapshot = TickSnapshot.capture(self.db)
            return self.db.clock.now

        now = await self._run_strong(job)
        self.metrics.ticks.inc(ticks)
        return now

    async def _run_strong(self, fn: Callable[[], Any]) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._worker, fn)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections.inc()
        session: Session | None = None
        try:
            while True:
                try:
                    payload = await read_frame(reader, self.config.max_frame)
                except FrameError as exc:
                    # a mid-frame failure poisons the stream: answer
                    # once (best effort) and close
                    await self._safe_write(
                        writer, error(exc.code, exc.message)
                    )
                    self.metrics.request("frame", exc.code)
                    return
                if payload is None:
                    return  # clean close between frames
                response, session, keep_open = await self._dispatch(
                    payload, session, writer
                )
                if "id" in payload:
                    response["id"] = payload["id"]
                await self._safe_write(writer, response)
                if not keep_open:
                    return
        finally:
            if session is not None:
                self.sessions.close(session)
                self.metrics.sessions_active.set(self.sessions.active)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _safe_write(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        try:
            await write_frame(writer, payload, self.config.max_frame)
        except FrameError as exc:
            # the response itself won't frame (a strong SELECT whose
            # result outgrows max_frame): the connection still gets a
            # structured error, never an escaped exception
            self.metrics.request("write", exc.code)
            fallback = error(exc.code, exc.message)
            if "id" in payload:
                fallback["id"] = payload["id"]
            try:
                await write_frame(writer, fallback, self.config.max_frame)
            except (FrameError, ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            pass  # peer already gone; the close path cleans up

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self,
        payload: dict[str, Any],
        session: Session | None,
        writer: asyncio.StreamWriter,
    ) -> tuple[dict[str, Any], Session | None, bool]:
        """Handle one frame; returns (response, session, keep_open)."""
        op = payload.get("op")
        if not isinstance(op, str):
            self.metrics.request("?", Code.BAD_REQUEST)
            return error(Code.BAD_REQUEST, "frame needs a string 'op'"), session, True
        try:
            if op == "hello":
                response, session = self._op_hello(payload, session, writer)
            elif op == "ping":
                response = ok(pong=True, tick=self.db.clock.now)
            elif op == "bye":
                self.metrics.request(op, "ok")
                return ok(bye=True), session, False
            else:
                if session is None:
                    raise AuthError(Code.AUTH_REQUIRED, "say hello first")
                if session.grant.expired(self.db.clock.now):
                    raise AuthError(
                        Code.AUTH_EXPIRED,
                        f"token for {session.principal!r} expired at tick "
                        f"{session.grant.expires_at:g}",
                    )
                if op in ADMIN_OPS and not session.grant.admin:
                    raise AccessDenied(
                        Code.DENIED, f"op {op!r} requires the admin grant"
                    )
                session.requests += 1
                response = await self._op(op, payload, session)
        except (AuthError, AccessDenied, FrameError) as exc:
            if session is not None:
                session.errors += 1
            self.metrics.request(op, exc.code)
            return error(exc.code, exc.message), session, True
        except FungusError as exc:
            if session is not None:
                session.errors += 1
            self.metrics.request(op, Code.QUERY_ERROR)
            return error(Code.QUERY_ERROR, str(exc)), session, True
        except Exception as exc:  # the contract: never a raw traceback
            if session is not None:
                session.errors += 1
            self.metrics.request(op, Code.INTERNAL)
            return (
                error(Code.INTERNAL, f"{type(exc).__name__}: {exc}"),
                session,
                True,
            )
        self.metrics.request(op, "ok")
        return response, session, True

    def _op_hello(
        self,
        payload: dict[str, Any],
        previous: Session | None,
        writer: asyncio.StreamWriter,
    ) -> tuple[dict[str, Any], Session]:
        token = payload.get("token")
        if token is not None and not isinstance(token, str):
            raise AuthError(Code.AUTH_FAILED, "token must be a string")
        now = self.db.clock.now
        if self.config.auth is not None:
            grant = self.config.auth.authenticate(token, now)
        else:
            grant = Grant.open_grant()
        if previous is not None:
            # a re-hello replaces the session; close the old one only
            # after the new token authenticates, so a failed re-auth
            # leaves the caller in the session it already had
            self.sessions.close(previous)
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        session = self.sessions.open(grant, peer, now)
        self.metrics.sessions_active.set(self.sessions.active)
        return (
            ok(session=session.id, principal=grant.principal, tick=now),
            session,
        )

    async def _op(
        self, op: str, payload: dict[str, Any], session: Session
    ) -> dict[str, Any]:
        if op == "query":
            return await self._op_query(payload, session)
        if op == "insert":
            return await self._op_insert(payload, session)
        if op == "tick":
            ticks = payload.get("n", 1)
            if not isinstance(ticks, int) or ticks < 1:
                raise FrameError(Code.BAD_REQUEST, f"bad tick count {ticks!r}")
            now = await self._run_tick(ticks)
            return ok(tick=now)
        if op == "stats":
            return await self._admitted(session, self._job_stats(session))
        if op == "metrics":
            return ok(exposition=self.metrics.exposition())
        if op == "sessions":
            return ok(sessions=self.sessions.describe())
        if op == "drain":
            drained = await self.drain()
            return ok(drained=drained)
        if op == "debug_sleep" and self.config.debug_ops:
            seconds = float(payload.get("seconds", 0.05))
            return await self._admitted(session, lambda: _worker_nap(seconds))
        raise FrameError(Code.BAD_REQUEST, f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # the two data-path ops
    # ------------------------------------------------------------------

    async def _op_query(
        self, payload: dict[str, Any], session: Session
    ) -> dict[str, Any]:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise FrameError(Code.BAD_REQUEST, "query needs a non-empty 'sql'")
        consistency = payload.get("consistency", "strong")
        if consistency == "snapshot":
            return self._snapshot_query(sql, session)
        if consistency != "strong":
            raise FrameError(
                Code.BAD_REQUEST, f"unknown consistency {consistency!r}"
            )
        return await self._admitted(session, self._job_query(sql, session))

    def _snapshot_query(self, sql: str, session: Session) -> dict[str, Any]:
        """Serve a read from the published snapshot, loop-side.

        Never touches the worker, so it answers even while a decay tick
        (or a long consume) is mid-flight — the "readers never block"
        half of snapshot-at-tick.
        """
        snapshot = self.snapshot
        assert snapshot is not None, "server not started"
        gatekeeper = Gatekeeper(snapshot.materialized())
        admission = gatekeeper.admit(sql, session.grant)
        if admission.kind != "select":
            raise AccessDenied(
                Code.BAD_REQUEST,
                f"snapshot consistency serves SELECT only, not {admission.kind}",
            )
        result = snapshot.query(admission.statement, sql)
        self.metrics.snapshot_reads.inc()
        return ok(
            columns=list(result.columns),
            rows=[list(row) for row in result.rows],
            tick=snapshot.tick,
            consistency="snapshot",
        )

    def _job_query(
        self, sql: str, session: Session
    ) -> Callable[[], dict[str, Any]]:
        def job() -> dict[str, Any]:
            admission = self.gatekeeper.admit(sql, session.grant)
            engine = self.db.engine
            with self.db.tracer.span(
                "server.request", session=session.id, op=admission.kind
            ):
                engine.current_actor = session.id
                try:
                    # execute the raw SQL, not the parsed statement:
                    # current_sql must carry the text so Law-2 death
                    # provenance records the consuming query verbatim
                    result = self.db.query(sql)
                finally:
                    engine.current_actor = None
            self.oplog.append(("query", sql))
            session.rows_consumed += result.stats.rows_consumed
            return ok(
                columns=list(result.columns),
                rows=[list(row) for row in result.rows],
                consumed=result.stats.rows_consumed,
                tick=self.db.clock.now,
                consistency="strong",
                verdict=admission.verdict,
            )

        return job

    def _op_insert_check(self, payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        table = payload.get("table")
        row = payload.get("row")
        if not isinstance(table, str) or not isinstance(row, dict):
            raise FrameError(
                Code.BAD_REQUEST, "insert needs 'table' (str) and 'row' (object)"
            )
        return table, row

    async def _op_insert(
        self, payload: dict[str, Any], session: Session
    ) -> dict[str, Any]:
        table, row = self._op_insert_check(payload)
        if not session.grant.allows(table, "insert"):
            raise AccessDenied(
                Code.DENIED,
                f"{session.principal!r} lacks 'insert' on table {table!r}",
            )

        def job() -> dict[str, Any]:
            with self.db.tracer.span(
                "server.request", session=session.id, op="insert"
            ):
                rid = self.db.insert(table, row)
            self.oplog.append(("insert", table, dict(row)))
            return ok(rid=rid, tick=self.db.clock.now)

        return await self._admitted(session, job)

    def _job_stats(self, session: Session) -> Callable[[], dict[str, Any]]:
        def job() -> dict[str, Any]:
            stats = self.db.stats()
            return ok(stats=stats)

        return job

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    async def _admitted(
        self, session: Session, job: Callable[[], dict[str, Any]]
    ) -> dict[str, Any]:
        """Run one strong op through admission control.

        The refusals happen *here*, on the loop, before the job ever
        reaches the worker — which is why BUSY comes back in
        microseconds even when the worker is pinned.
        """
        if self.admission.draining:
            self.metrics.reject("draining")
            raise AccessDenied(Code.DRAINING, "server is draining; retry elsewhere")
        if not self.admission.try_admit():
            self.metrics.reject("busy")
            raise AccessDenied(
                Code.BUSY,
                f"admission queue full ({self.admission.limit} in flight); retry",
            )
        self.metrics.queue_depth.set(self.admission.in_flight)
        try:
            return await self._run_strong(job)
        finally:
            self.admission.release()
            self.metrics.queue_depth.set(self.admission.in_flight)


def _worker_nap(seconds: float) -> dict[str, Any]:
    """Hold the engine worker busy (test hook; runs in the worker thread)."""
    time.sleep(min(seconds, 2.0))
    return ok(slept=seconds)
