""":class:`FungusServer`: the asyncio front-end over one FungusDB.

Ownership rules, stated once and enforced everywhere:

* The **event loop** owns connections, framing, auth, admission, the
  session table, the metrics registry, and reads against the published
  :class:`~repro.server.snapshot.TickSnapshot`.
* The **worker thread** (a one-thread executor) owns the engine. Every
  strong operation — INSERT, strong SELECT, CONSUME, tick — is a job
  on that thread, so engine state keeps the single-writer discipline
  the storage layer documents. The gatekeeper also runs *inside* the
  job, immediately before execution, so policy is checked against the
  exact catalog state the statement will run on.
* The snapshot crosses from worker to loop by a single attribute
  assignment — atomic under the interpreter — and is immutable after
  publication.

Each connection's frames are handled strictly sequentially, which is
the per-client response-ordering guarantee the concurrency suite
asserts; throughput comes from many connections, not from pipelining
within one.

The worker also appends every strong operation to ``oplog`` in actual
execution order. Replaying that log single-threaded into a fresh
FungusDB with the same seed must reproduce the server's final state
bit-for-bit — the differential oracle the concurrency tests run.

Every frame is also an observability unit. The loop opens a detached
``server.request`` root span per frame (continuing the client's trace
when the payload carries a valid ``trace`` field), times each stage
into both child spans and the ``repro_server_stage_seconds``
histogram, and distills over-threshold requests into the bounded
slow-query log that ``/debug/slow`` serves. Stage timing always runs;
span recording costs nothing unless ``db.tracer`` is enabled.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import FungusError
from repro.obs.tracing import TraceContext
from repro.server.admission import AdmissionController
from repro.server.auth import AuthError, AuthRegistry, Grant
from repro.server.metrics import ServerMetrics
from repro.server.ops import OpsServer, SlowQueryLog
from repro.server.policy import AccessDenied, Gatekeeper
from repro.server.protocol import (
    Code,
    FrameError,
    MAX_FRAME,
    decode_frame,
    error,
    ok,
    read_frame_body,
    write_frame,
)
from repro.server.session import Session, SessionManager
from repro.server.snapshot import TickSnapshot

if TYPE_CHECKING:
    from repro.core.db import FungusDB


@dataclass
class ServerConfig:
    """Tunables for one :class:`FungusServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the kernel pick (tests); real deploys set one
    queue_limit: int = 64
    tick_interval: float | None = None  # seconds between background ticks
    max_frame: int = MAX_FRAME
    auth: AuthRegistry | None = None
    #: enable the ``debug_sleep`` op — tests use it to hold the worker
    #: busy and deterministically fill the admission queue
    debug_ops: bool = False
    #: bind the HTTP ops listener here (None = no ops plane; 0 = any port)
    ops_port: int | None = None
    #: requests running at least this long land in the slow-query log
    slow_threshold: float = 0.25
    slow_log_size: int = 128


#: ops that require the admin grant ("stats" exposes whole-database
#: shape plus per-statement fingerprints — operator-only information)
ADMIN_OPS = frozenset({"tick", "drain", "sessions", "stats"})

#: histogram stage label → span name, where they differ (the span keeps
#: its ``frame.`` prefix in the engine-wide taxonomy)
_SPAN_NAMES = {"decode": "frame.decode"}


class _Request:
    """Loop-side context for one in-flight frame.

    Carries the request root span, the wall-clock start, the per-stage
    latency ledger, and what the slow-query log will want if this
    request runs long. Stage values are written by whichever side runs
    the stage (loop or worker) but only *read* on the loop after the
    response is written, so no stage entry is ever raced.
    """

    __slots__ = ("span", "started", "op", "sql", "verdict", "trace", "stages")

    def __init__(self, span: Any, started: float) -> None:
        self.span = span
        self.started = started
        self.op = "?"
        self.sql: str | None = None
        self.verdict: str | None = None
        self.trace: str | None = None
        self.stages: dict[str, float] = {}


class FungusServer:
    """Serve one :class:`~repro.core.db.FungusDB` over TCP frames."""

    def __init__(self, db: "FungusDB", config: ServerConfig | None = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.sessions = SessionManager()
        self.admission = AdmissionController(self.config.queue_limit)
        self.metrics = ServerMetrics()
        self.gatekeeper = Gatekeeper(db.engine)
        #: every strong op in worker execution order: ("insert", table,
        #: row) | ("query", sql) | ("tick", n) — the replay oracle's input
        self.oplog: list[tuple[Any, ...]] = []
        self.snapshot: TickSnapshot | None = None
        self.slow_log = SlowQueryLog(
            self.config.slow_threshold, self.config.slow_log_size
        )
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="fungus-engine"
        )
        self._server: asyncio.AbstractServer | None = None
        self._ops: OpsServer | None = None
        self._ticker: asyncio.Task[None] | None = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "FungusServer":
        """Bind, publish the initial snapshot, start the background ticker."""
        # every served statement lands in the fingerprint store, so the
        # admin `stats` op and /debug/queries have something to show
        self.db.enable_querystats()

        def boot() -> TickSnapshot:
            # from here on every strong op runs on this worker thread;
            # an armed race probe must treat it as the database's owner
            # even if the caller seeded tables on the main thread first
            if self.db.race_probe is not None:
                self.db.race_probe.bind()
            return TickSnapshot.capture(self.db)

        self.snapshot = await self._run_strong(boot)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            backlog=2048,  # the loadgen opens 1k+ connections in one burst
        )
        if self.config.ops_port is not None:
            self._ops = OpsServer(self, self.config.host, self.config.ops_port)
            await self._ops.start()
        if self.config.tick_interval is not None:
            self._ticker = asyncio.ensure_future(self._tick_loop())
        return self

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def ops_port(self) -> int:
        assert self._ops is not None, "ops listener not configured"
        return self._ops.port

    @property
    def accepting(self) -> bool:
        """Ready for traffic: not stopping and no drain in progress."""
        return not self._stopping and not self.admission.draining

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def drain(self) -> int:
        """Refuse new strong ops, wait for admitted ones, return count drained."""
        self.admission.start_drain()
        drained = self.admission.in_flight
        while not self.admission.idle:
            await asyncio.sleep(0.005)
        return drained

    async def stop(self) -> None:
        """Stop ticking, close the listener, finish in-flight work."""
        self._stopping = True
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._ops is not None:
            await self._ops.stop()
            self._ops = None
        while not self.admission.idle:
            await asyncio.sleep(0.005)
        self._worker.shutdown(wait=True)

    # ------------------------------------------------------------------
    # the background Law-1 ticker
    # ------------------------------------------------------------------

    async def _tick_loop(self) -> None:
        assert self.config.tick_interval is not None
        interval = self.config.tick_interval
        while True:
            before = time.perf_counter()
            await asyncio.sleep(interval)
            await self._run_tick(1)
            # lag = everything past the nominal interval: sleep
            # overshoot under loop pressure plus the tick's own worker
            # time (which queues behind in-flight strong ops)
            self.metrics.ticker_lag.set(
                max(0.0, time.perf_counter() - before - interval)
            )

    async def _run_tick(self, ticks: int) -> float:
        """Advance the clock in the worker and publish the new snapshot.

        Submitted *outside* admission control on purpose: decay is the
        server's metabolism, and a saturated client queue must not be
        able to starve Law 1.
        """
        def job() -> float:
            self.db.tick(ticks)
            self.oplog.append(("tick", ticks))
            self.snapshot = TickSnapshot.capture(self.db)
            return self.db.clock.now

        now = await self._run_strong(job)
        self.metrics.ticks.inc(ticks)
        return now

    async def _run_strong(self, fn: Callable[[], Any]) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._worker, fn)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections.inc()
        session: Session | None = None
        try:
            while True:
                try:
                    body = await read_frame_body(reader, self.config.max_frame)
                except FrameError as exc:
                    # a mid-frame failure poisons the stream: answer
                    # once (best effort) and close
                    await self._safe_write(
                        writer, error(exc.code, exc.message)
                    )
                    self.metrics.request("frame", exc.code)
                    return
                if body is None:
                    return  # clean close between frames
                session, keep_open = await self._handle_frame(
                    body, session, writer
                )
                if not keep_open:
                    return
        finally:
            if session is not None:
                self.sessions.close(session)
                self.metrics.sessions_active.set(self.sessions.active)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_frame(
        self,
        body: bytes,
        session: Session | None,
        writer: asyncio.StreamWriter,
    ) -> tuple[Session | None, bool]:
        """One frame, instrumented end-to-end under a request root span.

        The root is detached (never on the tracer stack), so any number
        of connections can hold one open concurrently. It closes when
        the ``with`` exits — after the reply is flushed — which is what
        makes every stage span nest inside it.
        """
        with self.db.tracer.root_span("server.request") as root:
            req = _Request(root, time.perf_counter())
            try:
                with self._stage(req, "decode"):
                    payload = decode_frame(body)
            except FrameError as exc:
                # decode failures poison the stream, same as framing
                # failures: answer once and close
                req.op = "frame"
                self.metrics.request("frame", exc.code)
                await self._reply(writer, req, error(exc.code, exc.message))
                self._finish_request(req, session, exc.code)
                return session, False
            context = TraceContext.parse(payload.get("trace"))
            if context is not None:
                # continue the client's trace by annotation: the root
                # stays a local root, the W3C ids ride as attributes
                req.trace = context.trace_id
                root.set(trace=context.trace_id, remote_parent=context.span_id)
            response, session, keep_open = await self._dispatch(
                payload, session, writer, req
            )
            if "id" in payload:
                response["id"] = payload["id"]
            await self._reply(writer, req, response)
            status = "ok" if response.get("ok") else str(response.get("code", "?"))
            self._finish_request(req, session, status)
        return session, keep_open

    @contextlib.contextmanager
    def _stage(self, req: _Request, label: str) -> Iterator[Any]:
        """Time one request stage into ``req.stages`` and a child span."""
        started = time.perf_counter()
        with self.db.tracer.stage_span(
            _SPAN_NAMES.get(label, label), req.span
        ) as span:
            try:
                yield span
            finally:
                req.stages[label] = (
                    req.stages.get(label, 0.0) + time.perf_counter() - started
                )

    async def _reply(
        self, writer: asyncio.StreamWriter, req: _Request, response: dict[str, Any]
    ) -> None:
        with self._stage(req, "reply"):
            await self._safe_write(writer, response)

    def _finish_request(
        self, req: _Request, session: Session | None, status: str
    ) -> None:
        """Fold one finished request into histograms and the slow log."""
        duration = time.perf_counter() - req.started
        for label, seconds in req.stages.items():
            self.metrics.stage(req.op, label, seconds)
        req.span.set(op=req.op, status=status)
        if session is not None:
            req.span.set(session=session.id)
        if duration >= self.slow_log.threshold:
            self.metrics.slow_requests.labels(op=req.op).inc()
            self.slow_log.record(
                op=req.op,
                duration_s=duration,
                session=session.id if session is not None else "?",
                principal=session.principal if session is not None else "?",
                sql=req.sql,
                stages=req.stages,
                verdict=req.verdict,
                trace=req.trace,
                tick=self.db.clock.now,
            )

    async def _safe_write(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        try:
            await write_frame(writer, payload, self.config.max_frame)
        except FrameError as exc:
            # the response itself won't frame (a strong SELECT whose
            # result outgrows max_frame): the connection still gets a
            # structured error, never an escaped exception
            self.metrics.request("write", exc.code)
            fallback = error(exc.code, exc.message)
            if "id" in payload:
                fallback["id"] = payload["id"]
            try:
                await write_frame(writer, fallback, self.config.max_frame)
            except (FrameError, ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            pass  # peer already gone; the close path cleans up

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self,
        payload: dict[str, Any],
        session: Session | None,
        writer: asyncio.StreamWriter,
        req: _Request,
    ) -> tuple[dict[str, Any], Session | None, bool]:
        """Handle one frame; returns (response, session, keep_open)."""
        op = payload.get("op")
        if not isinstance(op, str):
            self.metrics.request("?", Code.BAD_REQUEST)
            return error(Code.BAD_REQUEST, "frame needs a string 'op'"), session, True
        req.op = op
        try:
            if op == "hello":
                response, session = self._op_hello(payload, session, writer)
            elif op == "ping":
                response = ok(pong=True, tick=self.db.clock.now)
            elif op == "bye":
                self.metrics.request(op, "ok")
                return ok(bye=True), session, False
            else:
                if session is None:
                    raise AuthError(Code.AUTH_REQUIRED, "say hello first")
                if session.grant.expired(self.db.clock.now):
                    raise AuthError(
                        Code.AUTH_EXPIRED,
                        f"token for {session.principal!r} expired at tick "
                        f"{session.grant.expires_at:g}",
                    )
                if op in ADMIN_OPS and not session.grant.admin:
                    raise AccessDenied(
                        Code.DENIED, f"op {op!r} requires the admin grant"
                    )
                session.note(op, self.db.clock.now)
                response = await self._op(op, payload, session, req)
        except (AuthError, AccessDenied, FrameError) as exc:
            if session is not None:
                session.errors += 1
            self.metrics.request(op, exc.code)
            return error(exc.code, exc.message), session, True
        except FungusError as exc:
            if session is not None:
                session.errors += 1
            self.metrics.request(op, Code.QUERY_ERROR)
            return error(Code.QUERY_ERROR, str(exc)), session, True
        except Exception as exc:  # the contract: never a raw traceback
            if session is not None:
                session.errors += 1
            self.metrics.request(op, Code.INTERNAL)
            return (
                error(Code.INTERNAL, f"{type(exc).__name__}: {exc}"),
                session,
                True,
            )
        self.metrics.request(op, "ok")
        return response, session, True

    def _op_hello(
        self,
        payload: dict[str, Any],
        previous: Session | None,
        writer: asyncio.StreamWriter,
    ) -> tuple[dict[str, Any], Session]:
        token = payload.get("token")
        if token is not None and not isinstance(token, str):
            raise AuthError(Code.AUTH_FAILED, "token must be a string")
        now = self.db.clock.now
        if self.config.auth is not None:
            grant = self.config.auth.authenticate(token, now)
        else:
            grant = Grant.open_grant()
        if previous is not None:
            # a re-hello replaces the session; close the old one only
            # after the new token authenticates, so a failed re-auth
            # leaves the caller in the session it already had
            self.sessions.close(previous)
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        session = self.sessions.open(grant, peer, now)
        self.metrics.sessions_active.set(self.sessions.active)
        return (
            ok(session=session.id, principal=grant.principal, tick=now),
            session,
        )

    async def _op(
        self, op: str, payload: dict[str, Any], session: Session, req: _Request
    ) -> dict[str, Any]:
        if op == "query":
            return await self._op_query(payload, session, req)
        if op == "insert":
            return await self._op_insert(payload, session, req)
        if op == "tick":
            ticks = payload.get("n", 1)
            if not isinstance(ticks, int) or ticks < 1:
                raise FrameError(Code.BAD_REQUEST, f"bad tick count {ticks!r}")
            now = await self._run_tick(ticks)
            return ok(tick=now)
        if op == "stats":
            return await self._admitted(session, self._job_stats(session), req)
        if op == "metrics":
            return ok(exposition=self.metrics.exposition())
        if op == "sessions":
            return ok(sessions=self.sessions.describe())
        if op == "drain":
            drained = await self.drain()
            return ok(drained=drained)
        if op == "debug_sleep" and self.config.debug_ops:
            seconds = float(payload.get("seconds", 0.05))
            return await self._admitted(session, lambda: _worker_nap(seconds), req)
        raise FrameError(Code.BAD_REQUEST, f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # the two data-path ops
    # ------------------------------------------------------------------

    async def _op_query(
        self, payload: dict[str, Any], session: Session, req: _Request
    ) -> dict[str, Any]:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise FrameError(Code.BAD_REQUEST, "query needs a non-empty 'sql'")
        req.sql = sql
        consistency = payload.get("consistency", "strong")
        if consistency == "snapshot":
            return self._snapshot_query(sql, session, req)
        if consistency != "strong":
            raise FrameError(
                Code.BAD_REQUEST, f"unknown consistency {consistency!r}"
            )
        return await self._admitted(session, self._job_query(sql, session, req), req)

    def _snapshot_query(
        self, sql: str, session: Session, req: _Request
    ) -> dict[str, Any]:
        """Serve a read from the published snapshot, loop-side.

        Never touches the worker, so it answers even while a decay tick
        (or a long consume) is mid-flight — the "readers never block"
        half of snapshot-at-tick.
        """
        snapshot = self.snapshot
        assert snapshot is not None, "server not started"
        with self._stage(req, "policy.analyze"):
            gatekeeper = Gatekeeper(snapshot.materialized())
            admission = gatekeeper.admit(sql, session.grant)
            if admission.kind != "select":
                raise AccessDenied(
                    Code.BAD_REQUEST,
                    f"snapshot consistency serves SELECT only, not {admission.kind}",
                )
        req.verdict = admission.verdict
        with self._stage(req, "snapshot.read") as span:
            result = snapshot.query(admission.statement, sql)
            span.set(tick=snapshot.tick, snapshot_rows=snapshot.rows)
        self.metrics.snapshot_reads.inc()
        return ok(
            columns=list(result.columns),
            rows=[list(row) for row in result.rows],
            tick=snapshot.tick,
            consistency="snapshot",
        )

    def _job_query(
        self, sql: str, session: Session, req: _Request
    ) -> Callable[[], dict[str, Any]]:
        def job() -> dict[str, Any]:
            # worker side: the stack holds the worker.exec anchor the
            # admission wrapper pushed, so this span — and the engine's
            # own query/consume spans under db.query — nest beneath it
            analyze_started = time.perf_counter()
            with self.db.tracer.span("policy.analyze"):
                admission = self.gatekeeper.admit(sql, session.grant)
            req.stages["policy.analyze"] = time.perf_counter() - analyze_started
            req.verdict = admission.verdict
            engine = self.db.engine
            engine.current_actor = _actor(session, req)
            try:
                # execute the raw SQL, not the parsed statement:
                # current_sql must carry the text so Law-2 death
                # provenance records the consuming query verbatim
                result = self.db.query(sql)
            finally:
                engine.current_actor = None
            self.oplog.append(("query", sql))
            session.rows_consumed += result.stats.rows_consumed
            return ok(
                columns=list(result.columns),
                rows=[list(row) for row in result.rows],
                consumed=result.stats.rows_consumed,
                tick=self.db.clock.now,
                consistency="strong",
                verdict=admission.verdict,
            )

        return job

    def _op_insert_check(self, payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        table = payload.get("table")
        row = payload.get("row")
        if not isinstance(table, str) or not isinstance(row, dict):
            raise FrameError(
                Code.BAD_REQUEST, "insert needs 'table' (str) and 'row' (object)"
            )
        return table, row

    async def _op_insert(
        self, payload: dict[str, Any], session: Session, req: _Request
    ) -> dict[str, Any]:
        table, row = self._op_insert_check(payload)
        with self._stage(req, "policy.analyze"):
            if not session.grant.allows(table, "insert"):
                raise AccessDenied(
                    Code.DENIED,
                    f"{session.principal!r} lacks 'insert' on table {table!r}",
                )

        def job() -> dict[str, Any]:
            rid = self.db.insert(table, row)
            self.oplog.append(("insert", table, dict(row)))
            return ok(rid=rid, tick=self.db.clock.now)

        return await self._admitted(session, job, req)

    def _job_stats(self, session: Session) -> Callable[[], dict[str, Any]]:
        def job() -> dict[str, Any]:
            stats = self.db.stats()
            querystats = self.db.querystats
            if querystats is not None:
                stats["querystats"] = querystats.describe()
            return ok(stats=stats)

        return job

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    async def _admitted(
        self, session: Session, job: Callable[[], dict[str, Any]], req: _Request
    ) -> dict[str, Any]:
        """Run one strong op through admission control.

        The refusals happen *here*, on the loop, before the job ever
        reaches the worker — which is why BUSY comes back in
        microseconds even when the worker is pinned.

        The admitted path is also where two cross-thread stages are
        measured: ``admission.wait`` spans enqueue (here, on the loop)
        to worker pickup (the first statement of the wrapped job), and
        ``worker.exec`` anchors onto the tracer stack so the engine's
        own spans nest inside the request.
        """
        if self.admission.draining:
            self.metrics.reject("draining")
            raise AccessDenied(Code.DRAINING, "server is draining; retry elsewhere")
        if not self.admission.try_admit():
            self.metrics.reject("busy")
            raise AccessDenied(
                Code.BUSY,
                f"admission queue full ({self.admission.limit} in flight); retry",
            )
        session.in_flight += 1
        depth = self.admission.in_flight
        self.metrics.queue_depth.set(depth)
        tracer = self.db.tracer
        enqueued_pc = time.perf_counter()
        enqueued_at = tracer.now()

        def admitted_job() -> dict[str, Any]:
            # first statement on the worker: the queue wait is over
            req.stages["admission.wait"] = time.perf_counter() - enqueued_pc
            tracer.record_span(
                "admission.wait", req.span, enqueued_at, tracer.now(), depth=depth
            )
            exec_started = time.perf_counter()
            with tracer.anchor_span("worker.exec", req.span, op=req.op):
                try:
                    return job()
                finally:
                    req.stages["worker.exec"] = time.perf_counter() - exec_started

        try:
            return await self._run_strong(admitted_job)
        finally:
            session.in_flight -= 1
            self.admission.release()
            self.metrics.queue_depth.set(self.admission.in_flight)


def _actor(session: Session, req: _Request) -> str:
    """The forensics attribution string for one strong statement.

    Death-provenance records tag consumed rows ``@<actor>``; when the
    request carried a client trace, the trace-id rides along so a rot
    investigation can jump straight from a dead row to the exact
    distributed trace that killed it.
    """
    if req.trace is None:
        return session.id
    return f"{session.id}#{req.trace}"


def _worker_nap(seconds: float) -> dict[str, Any]:
    """Hold the engine worker busy (test hook; runs in the worker thread)."""
    time.sleep(min(seconds, 2.0))
    return ok(slept=seconds)
