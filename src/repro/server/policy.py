"""The plan-time gatekeeper: policy enforced before execution.

The server never hands raw SQL to the engine. Every statement is
parsed and *planned* first, the tables the plan touches are extracted,
and the session's grant is checked against them — so a session lacking
CONSUME rights on a table is refused before a single row is read, and
a statement that doesn't survive the planner is refused with the
planner's own diagnostic rather than a half-executed mess.

CONSUME statements additionally pass through the Tier-B analyzer
(:meth:`repro.query.executor.QueryEngine.analyze_consume`), reusing
the EXPLAIN layer as the gate: a statement the analyzer proves
*invalid* is refused outright, and one it proves *total* (would eat
the entire extent) requires the admin grant — per-table consume rights
cover partial harvests only. The verdict rides back to the caller in
the refusal, so a denied client learns not just "no" but "the analyzer
proved this consumes all of ``orders``".

DELETE is held to the same total-extent bar: a bare ``DELETE FROM t``
— or one whose WHERE is provably a tautology — removes every live row
just as a total consume does, so it too demands the admin grant; the
per-table ``consume`` right covers partial removals only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import FungusError
from repro.query.ast_nodes import (
    DeleteStmt,
    ExplainStmt,
    InsertStmt,
    SelectStmt,
    Statement,
)
from repro.query.normalize import Truth, classify
from repro.query.parser import parse
from repro.query.planner import JoinPlan, ScanPlan, plan_select
from repro.server.auth import Grant
from repro.server.protocol import Code

if TYPE_CHECKING:
    from repro.query.executor import QueryEngine


class AccessDenied(Exception):
    """The gatekeeper refused a statement; ``code`` names the reason."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Admission:
    """What the gatekeeper decided about one statement."""

    statement: Statement
    kind: str  # "select" | "consume" | "insert" | "delete" | "explain"
    tables: tuple[str, ...]
    verdict: str | None = None  # Tier-B verdict for consume/delete statements
    required: tuple[tuple[str, str], ...] = field(default_factory=tuple)


#: Statement kind → the right demanded on every table it touches.
#: DELETE removes rows just like Law 2 does, so it costs ``consume``.
RIGHT_FOR_KIND = {
    "select": "read",
    "explain": "read",
    "insert": "insert",
    "delete": "consume",
}


class Gatekeeper:
    """Plan-time policy: parse, plan, analyze, *then* decide."""

    def __init__(self, engine: "QueryEngine") -> None:
        self.engine = engine

    def admit(self, sql: str, grant: Grant) -> Admission:
        """Parse/plan ``sql`` and check ``grant``; raise :class:`AccessDenied`.

        Returns the parsed statement so the execution path never
        re-parses — what was admitted is exactly what runs.
        """
        try:
            stmt = parse(sql)
        except FungusError as exc:
            raise AccessDenied(Code.QUERY_ERROR, str(exc)) from exc
        kind = self._kind(stmt)
        tables = self._tables(stmt)
        required = [(table, self._right(kind)) for table in tables]
        if kind == "consume":
            # consume also implies read: the answer set is returned
            required += [(table, "read") for table in tables]
        for table, right in required:
            if not grant.allows(table, right):
                raise AccessDenied(
                    Code.DENIED,
                    f"{grant.principal!r} lacks {right!r} on table {table!r}",
                )
        verdict = None
        if kind == "consume":
            verdict = self._analyze(stmt, grant, tables)
        elif kind == "delete":
            verdict = self._analyze_delete(stmt, grant)
        return Admission(
            statement=stmt,
            kind=kind,
            tables=tables,
            verdict=verdict,
            required=tuple(required),
        )

    # ------------------------------------------------------------------

    def _kind(self, stmt: Statement) -> str:
        if isinstance(stmt, InsertStmt):
            return "insert"
        if isinstance(stmt, DeleteStmt):
            return "delete"
        if isinstance(stmt, ExplainStmt):
            return "explain"
        assert isinstance(stmt, SelectStmt)
        return "consume" if stmt.consume else "select"

    def _right(self, kind: str) -> str:
        return RIGHT_FOR_KIND.get(kind, "consume")

    def _tables(self, stmt: Statement) -> tuple[str, ...]:
        """Every base table the statement touches, via its plan."""
        if isinstance(stmt, InsertStmt):
            return (stmt.table,)
        if isinstance(stmt, DeleteStmt):
            return (stmt.table,)
        if isinstance(stmt, ExplainStmt):
            stmt = stmt.inner
        assert isinstance(stmt, SelectStmt)
        try:
            plan = plan_select(stmt, self.engine.catalog)
        except FungusError as exc:
            raise AccessDenied(Code.QUERY_ERROR, str(exc)) from exc
        source = plan.source
        if isinstance(source, ScanPlan):
            return (source.table_name,)
        assert isinstance(source, JoinPlan)
        return (source.left.table_name, source.right.table_name)

    def _analyze(
        self, stmt: SelectStmt, grant: Grant, tables: tuple[str, ...]
    ) -> str:
        """Tier-B gate: invalid consumes are refused, total ones need admin."""
        report = self.engine.analyze_consume(stmt)
        if report.verdict == "invalid":
            detail = "; ".join(report.errors) if report.errors else "unsatisfiable"
            raise AccessDenied(
                Code.QUERY_ERROR, f"analyzer refused the consume: {detail}"
            )
        if report.verdict == "total" and not grant.admin:
            raise AccessDenied(
                Code.DENIED,
                f"analyzer proved this consumes the entire extent of "
                f"{tables[0]!r} ({report.extent} rows); total consumes "
                f"require the admin grant",
            )
        return report.verdict

    def _analyze_delete(self, stmt: DeleteStmt, grant: Grant) -> str:
        """Total-extent gate for DELETE: wiping a table needs admin.

        ``DELETE FROM t`` with no WHERE — or a WHERE the classifier
        proves always true — removes every live row, the same outcome a
        total consume is gated on, so it is held to the same bar.
        """
        try:
            table = self.engine.catalog.table(stmt.table)
        except FungusError as exc:
            raise AccessDenied(Code.QUERY_ERROR, str(exc)) from exc
        domains = None
        if self.engine.consume_domains is not None:
            domains = self.engine.consume_domains(stmt.table)
        truth = classify(stmt.where, schema=table.schema, domains=domains)
        verdict = {
            Truth.ALWAYS_FALSE: "none",
            Truth.ALWAYS_TRUE: "total",
            Truth.CONTINGENT: "partial",
        }[truth]
        if verdict == "total" and not grant.admin:
            raise AccessDenied(
                Code.DENIED,
                f"this DELETE removes the entire extent of {stmt.table!r} "
                f"({len(table)} rows); total deletes require the admin grant",
            )
        return verdict
