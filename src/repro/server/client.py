"""A small asyncio client for the frame protocol.

Used by the test harness, the load generator, and the interactive
``python -m repro.serve client`` shell. One client is one connection
is one session; requests are sequential per client by construction
(the protocol has no pipelining), which mirrors the server's
per-connection ordering guarantee.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.server.protocol import read_frame, write_frame


class ServerError(Exception):
    """The server answered ``ok: false``; carries the structured code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class FungusClient:
    """One connection to a :class:`~repro.server.server.FungusServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.session: str | None = None
        self.principal: str | None = None

    @classmethod
    async def connect(
        cls, host: str, port: int, token: str | None = None
    ) -> "FungusClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        hello: dict[str, Any] = {"op": "hello"}
        if token is not None:
            hello["token"] = token
        response = await client.request(hello)
        client.session = response["session"]
        client.principal = response["principal"]
        return client

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round trip; raises :class:`ServerError` on ``ok: false``."""
        response = await self.request_raw(payload)
        if not response.get("ok"):
            raise ServerError(response.get("code", "?"), response.get("error", "?"))
        return response

    async def request_raw(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round trip returning the raw response, errors included."""
        await write_frame(self.writer, payload)
        response = await read_frame(self.reader)
        if response is None:
            raise ConnectionError("server closed the connection")
        return response

    async def query(
        self, sql: str, consistency: str = "strong", **fields: Any
    ) -> dict[str, Any]:
        return await self.request(
            {"op": "query", "sql": sql, "consistency": consistency, **fields}
        )

    async def insert(self, table: str, row: dict[str, Any]) -> int:
        response = await self.request({"op": "insert", "table": table, "row": row})
        return int(response["rid"])

    async def tick(self, n: int = 1) -> float:
        response = await self.request({"op": "tick", "n": n})
        return float(response["tick"])

    async def close(self) -> None:
        try:
            await self.request_raw({"op": "bye"})
        except (ConnectionError, OSError):
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
