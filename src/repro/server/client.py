"""A small asyncio client for the frame protocol.

Used by the test harness, the load generator, and the interactive
``python -m repro.serve client`` shell. One client is one connection
is one session; requests are sequential per client by construction
(the protocol has no pipelining), which mirrors the server's
per-connection ordering guarantee.

Tracing: give the client a :class:`~repro.obs.tracing.Tracer` and a
``trace_sample`` rate and it mints a ``client.request`` root span for
the sampled fraction of requests, attaching the W3C-shaped ``trace``
field the server continues. Sampling is deterministic — an error
accumulator, not a coin flip — so a rate of 0.25 traces exactly every
fourth request and replays identically.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.obs.tracing import NULL_TRACER
from repro.server.protocol import read_frame, write_frame


class ServerError(Exception):
    """The server answered ``ok: false``; carries the structured code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class FungusClient:
    """One connection to a :class:`~repro.server.server.FungusServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        tracer: Any = NULL_TRACER,
        trace_sample: float = 1.0,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.session: str | None = None
        self.principal: str | None = None
        self.tracer = tracer
        self.trace_sample = trace_sample
        self._sample_debt = 0.0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        token: str | None = None,
        tracer: Any = NULL_TRACER,
        trace_sample: float = 1.0,
    ) -> "FungusClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, tracer=tracer, trace_sample=trace_sample)
        hello: dict[str, Any] = {"op": "hello"}
        if token is not None:
            hello["token"] = token
        response = await client.request(hello)
        client.session = response["session"]
        client.principal = response["principal"]
        return client

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round trip; raises :class:`ServerError` on ``ok: false``."""
        response = await self.request_raw(payload)
        if not response.get("ok"):
            raise ServerError(response.get("code", "?"), response.get("error", "?"))
        return response

    def _sampled(self) -> bool:
        """Deterministic rate sampling (accumulated debt, no RNG)."""
        if not self.tracer.enabled or self.trace_sample <= 0.0:
            return False
        self._sample_debt += min(self.trace_sample, 1.0)
        if self._sample_debt >= 1.0:
            self._sample_debt -= 1.0
            return True
        return False

    async def request_raw(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round trip returning the raw response, errors included."""
        if self._sampled():
            with self.tracer.root_span(
                "client.request", op=str(payload.get("op", "?"))
            ) as root:
                context = self.tracer.mint_context(root)
                payload = {**payload, "trace": context.to_traceparent()}
                return await self._round_trip(payload)
        return await self._round_trip(payload)

    async def _round_trip(self, payload: dict[str, Any]) -> dict[str, Any]:
        await write_frame(self.writer, payload)
        response = await read_frame(self.reader)
        if response is None:
            raise ConnectionError("server closed the connection")
        return response

    async def query(
        self, sql: str, consistency: str = "strong", **fields: Any
    ) -> dict[str, Any]:
        return await self.request(
            {"op": "query", "sql": sql, "consistency": consistency, **fields}
        )

    async def insert(self, table: str, row: dict[str, Any]) -> int:
        response = await self.request({"op": "insert", "table": table, "row": row})
        return int(response["rid"])

    async def tick(self, n: int = 1) -> float:
        response = await self.request({"op": "tick", "n": n})
        return float(response["tick"])

    async def close(self) -> None:
        try:
            await self.request_raw({"op": "bye"})
        except (ConnectionError, OSError):
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
