"""Length-prefixed JSON frame protocol.

Wire format, in full: every frame is a 4-byte big-endian unsigned
length ``n`` followed by exactly ``n`` bytes of UTF-8 JSON encoding a
single object. Requests carry ``{"op": ..., ...}``; responses carry
``{"ok": true, ...}`` or ``{"ok": false, "code": ..., "error": ...}``.
There is no pipelining within a connection: the server reads one
frame, answers it, then reads the next, which is what gives clients
their per-connection response-ordering guarantee.

Requests may carry an optional ``trace`` field: a W3C-traceparent-
shaped string (``00-<32 hex trace-id>-<16 hex span-id>-01``) minted by
the client's root span. The server parses it tolerantly — a missing or
malformed ``trace`` never fails the request, it just means the server
mints its own root span instead of continuing the client's trace.

The codec is deliberately strict. A frame longer than
:data:`MAX_FRAME` is refused before the payload is read (the header
alone convicts it), a body that is not valid UTF-8 JSON — or is JSON
but not an object — is a ``BAD_FRAME``, and every failure maps to a
structured error code from :class:`Code` so fuzzed garbage produces a
diagnosable response or a clean close, never a traceback.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

#: Hard ceiling on a single frame body, in bytes. Large enough for a
#: several-thousand-row result, small enough that a hostile header
#: cannot make the server buffer gigabytes.
MAX_FRAME = 1 << 20

HEADER = struct.Struct(">I")


class Code:
    """Structured error codes carried in ``{"ok": false, "code": ...}``."""

    BAD_FRAME = "BAD_FRAME"
    OVERSIZED = "OVERSIZED"
    BAD_REQUEST = "BAD_REQUEST"
    AUTH_REQUIRED = "AUTH_REQUIRED"
    AUTH_FAILED = "AUTH_FAILED"
    AUTH_EXPIRED = "AUTH_EXPIRED"
    DENIED = "DENIED"
    BUSY = "BUSY"
    DRAINING = "DRAINING"
    QUERY_ERROR = "QUERY_ERROR"
    INTERNAL = "INTERNAL"


class FrameError(Exception):
    """A frame that cannot be decoded; ``code`` names the refusal."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode_frame(payload: dict[str, Any], max_frame: int = MAX_FRAME) -> bytes:
    """Serialize one payload to its on-wire bytes (header + JSON body)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise FrameError(Code.OVERSIZED, f"frame body {len(body)}B exceeds {max_frame}B")
    return HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """Decode a frame body into a payload object, or raise :class:`FrameError`."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(Code.BAD_FRAME, f"frame body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            Code.BAD_FRAME, f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame_body(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> bytes | None:
    """Read one frame's raw body bytes; ``None`` on clean EOF.

    EOF mid-header or mid-body — the peer hung up inside a frame — is
    a ``BAD_FRAME``, because the stream can no longer be trusted to be
    frame-aligned. The server reads bodies this way so its request
    root span can open before decode and time ``frame.decode`` as a
    stage of its own.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError(
            Code.BAD_FRAME, f"connection closed mid-header ({len(exc.partial)}/4B)"
        ) from exc
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise FrameError(Code.OVERSIZED, f"declared length {length}B exceeds {max_frame}B")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            Code.BAD_FRAME,
            f"connection closed mid-body ({len(exc.partial)}/{length}B)",
        ) from exc


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    body = await read_frame_body(reader, max_frame)
    if body is None:
        return None
    return decode_frame(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: dict[str, Any],
    max_frame: int = MAX_FRAME,
) -> None:
    """Encode and flush one response frame."""
    writer.write(encode_frame(payload, max_frame))
    await writer.drain()


def ok(**fields: Any) -> dict[str, Any]:
    """Build a success response body."""
    return {"ok": True, **fields}


def error(code: str, message: str, **fields: Any) -> dict[str, Any]:
    """Build a structured error response body."""
    return {"ok": False, "code": code, "error": message, **fields}
