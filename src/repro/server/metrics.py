"""Server metric families: the ``repro_server_*`` series.

These live in their *own* :class:`~repro.obs.metrics.MetricsRegistry`,
deliberately separate from the engine's
:class:`~repro.obs.collector.BusCollector` registry: the collector's
series are defined by bus events and checked docstring-to-registry by
the consistency tests, while these are defined by the network front
end and documented in DESIGN.md's "Server metric catalogue" table —
``tests/server/test_metrics_catalogue.py`` holds the two together the
same way.

Catalogue (name · kind · labels):

* ``repro_server_connections_total`` · counter · — lifetime accepted
  connections;
* ``repro_server_sessions_active`` · gauge · — sessions past hello,
  not yet closed;
* ``repro_server_requests_total`` · counter · ``op, status`` — every
  answered frame (``status`` is ``ok`` or the error code);
* ``repro_server_rejected_total`` · counter · ``reason`` — admission
  refusals (``busy``/``draining``);
* ``repro_server_queue_depth`` · gauge · — admitted-but-unfinished
  strong operations right now;
* ``repro_server_ticks_total`` · counter · — background Law-1 ticks
  the server itself drove;
* ``repro_server_snapshot_reads_total`` · counter · — queries served
  from a tick snapshot instead of the worker;
* ``repro_server_stage_seconds`` · histogram · ``op, stage`` — per-op
  request-stage latency (decode, admission.wait, policy.analyze,
  worker.exec, snapshot.read, reply);
* ``repro_server_ticker_lag_seconds`` · gauge · — how far behind its
  interval the background ticker ran on its latest cycle;
* ``repro_server_slow_requests_total`` · counter · ``op`` — requests
  over the slow-query threshold (captured in ``/debug/slow``).
"""

from __future__ import annotations

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry

#: Buckets tuned for request *stages*, not row counts: the fast edge
#: resolves a sub-millisecond decode, the slow edge still brackets a
#: multi-second admission-queue wait under saturation.
STAGE_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class ServerMetrics:
    """The front-end's registry, pre-registered so exposition is stable."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.connections = self.registry.counter(
            "repro_server_connections_total", "lifetime accepted connections"
        )
        self.sessions_active = self.registry.gauge(
            "repro_server_sessions_active", "sessions past hello and still open"
        )
        self.requests = self.registry.counter(
            "repro_server_requests_total",
            "answered frames by operation and outcome",
            labelnames=("op", "status"),
        )
        self.rejected = self.registry.counter(
            "repro_server_rejected_total",
            "admission refusals by reason",
            labelnames=("reason",),
        )
        self.queue_depth = self.registry.gauge(
            "repro_server_queue_depth", "admitted but unfinished strong operations"
        )
        self.ticks = self.registry.counter(
            "repro_server_ticks_total", "background decay ticks driven by the server"
        )
        self.snapshot_reads = self.registry.counter(
            "repro_server_snapshot_reads_total", "queries served from a tick snapshot"
        )
        self.stage_seconds = self.registry.histogram(
            "repro_server_stage_seconds",
            "request-stage latency by operation and stage",
            labelnames=("op", "stage"),
            buckets=STAGE_BUCKETS,
        )
        self.ticker_lag = self.registry.gauge(
            "repro_server_ticker_lag_seconds",
            "background ticker lag behind its interval, latest cycle",
        )
        self.slow_requests = self.registry.counter(
            "repro_server_slow_requests_total",
            "requests over the slow-query threshold",
            labelnames=("op",),
        )

    def request(self, op: str, status: str) -> None:
        self.requests.labels(op=op, status=status).inc()

    def reject(self, reason: str) -> None:
        self.rejected.labels(reason=reason).inc()

    def stage(self, op: str, stage: str, seconds: float) -> None:
        self.stage_seconds.labels(op=op, stage=stage).observe(seconds)

    def exposition(self) -> str:
        """Prometheus text rendering of the server registry."""
        return render_prometheus(self.registry)
