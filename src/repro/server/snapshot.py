"""Snapshot-at-tick: immutable read views over the vector backend.

Law 1 mutates the numpy freshness/time columns in place; a reader that
scanned those arrays while a tick was mid-flight could see half a
relation decayed and half not — a torn read. The server avoids this
without ever blocking readers: at each tick *boundary* the worker
thread captures the live rows of every decaying table into a
:class:`TickSnapshot` (bulk array copies on the vectorized backend, a
plain column walk on the fallback) and publishes it with one atomic
attribute swap. Snapshot reads then run against that frozen capture on
the event loop, while the worker grinds the next tick against the live
arrays — the two never share mutable state.

A capture is cheap (one fancy-index copy per vector column) but
building a queryable catalog is not, so materialization is lazy: the
throwaway :class:`~repro.storage.catalog.Catalog` of plain tables, and
the hook-less :class:`~repro.query.executor.QueryEngine` over it, are
only constructed the first time somebody actually queries the
snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import StorageError
from repro.query.ast_nodes import SelectStmt, Statement
from repro.query.result import ResultSet
from repro.storage.catalog import Catalog
from repro.storage.table import Table

if TYPE_CHECKING:
    from repro.core.db import FungusDB


class _TableCapture:
    """One table's live rows frozen at a tick boundary."""

    __slots__ = ("name", "schema", "columns", "count")

    def __init__(self, name: str, schema: Any, columns: list[list[Any]], count: int) -> None:
        self.name = name
        self.schema = schema
        self.columns = columns  # schema order, live-row order, plain lists
        self.count = count


class TickSnapshot:
    """A frozen, queryable view of the whole database at one tick."""

    def __init__(self, tick: float, captures: dict[str, _TableCapture]) -> None:
        self.tick = tick
        self._captures = captures
        self._engine: Any = None  # lazily built QueryEngine

    @classmethod
    def capture(cls, db: "FungusDB") -> "TickSnapshot":
        """Copy every decaying table's live rows. Worker thread only."""
        captures: dict[str, _TableCapture] = {}
        for name in sorted(db.tables):
            storage = db.tables[name].storage
            rows = storage.live_list()
            columns = [
                _capture_column(storage, column, rows)
                for column in storage.schema.names
            ]
            captures[name] = _TableCapture(
                name, storage.schema, columns, len(rows)
            )
        return cls(tick=db.clock.now, captures=captures)

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(self._captures)

    @property
    def rows(self) -> int:
        """Total live rows captured, across all tables (span attribute)."""
        return sum(capture.count for capture in self._captures.values())

    def extent(self, name: str) -> int:
        return self._captures[name].count

    def query(self, statement: Statement, sql: str) -> ResultSet:
        """Run one read-only statement against the frozen capture.

        The statement has already passed the gatekeeper; this guard is
        the snapshot defending itself — a consume executed here would
        silently eat copies instead of real rows.
        """
        if not isinstance(statement, SelectStmt) or statement.consume:
            raise StorageError(
                f"snapshot reads are SELECT-only; {sql!r} must run at "
                f"strong consistency"
            )
        return self.materialized().execute(statement)

    # ------------------------------------------------------------------

    def materialized(self) -> Any:
        """Build (once) the throwaway catalog + engine over the capture."""
        if self._engine is None:
            from repro.query.executor import QueryEngine

            catalog = Catalog()
            for capture in self._captures.values():
                # plain list-backed tables: the snapshot is read-only, so
                # the vector kernels would buy nothing
                table = Table(capture.schema, name=capture.name, kernels=False)
                for values in zip(*capture.columns):
                    table.append(values)
                catalog.register(table)
            self._engine = QueryEngine(catalog)
        return self._engine


def _capture_column(storage: Table, column: str, rows: list[int]) -> list[Any]:
    """Copy one column's live values, fast path through the array view."""
    try:
        arr = storage.column_array(column)
    except StorageError:
        return storage.column_values(column)
    if not rows:
        return []
    from repro.storage.vector import numpy

    return arr[numpy.asarray(rows, dtype=numpy.intp)].tolist()
