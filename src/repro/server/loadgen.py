"""Load generator: qps and tail latency at 1k+ concurrent connections.

Spins up an in-process :class:`~repro.server.server.FungusServer` (or
targets a remote one), opens ``connections`` client sessions, and has
each run a closed loop of the benchmark mix — mostly snapshot reads,
a slice of inserts, strong reads and consumes — for ``duration``
seconds, timing every round trip with ``perf_counter``.

The result is written as ``BENCH_server.json`` in the exact payload
shape :mod:`repro.bench.snapshots` produces, so ``repro.bench
regress`` gates the server's p50 the same way it gates the kernel
benchmarks; p95/p99/qps/connections ride along as extra keys the
comparator ignores.

Wall-clock timing is the *point* here (we are measuring a network
server), which is why this module lives under the server package —
outside the lint catalogue's no-wall-clock jurisdiction — and why the
clients use ``time.perf_counter`` directly rather than the logical
clock everything engine-side answers to.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.snapshots import SNAPSHOT_VERSION, quantile
from repro.core.db import FungusDB
from repro.fungi import LinearDecayFungus
from repro.server.client import FungusClient, ServerError
from repro.server.server import FungusServer, ServerConfig
from repro.storage.schema import Schema


@dataclass
class LoadgenConfig:
    connections: int = 1000
    duration: float = 10.0
    tick_interval: float = 0.25
    queue_limit: int = 256
    #: per-100-request mix; the remainder is snapshot reads
    inserts_per_100: int = 20
    strong_per_100: int = 10
    consumes_per_100: int = 2
    seed_rows: int = 500
    #: presented to a remote server at hello; in-process runs are open
    token: str | None = None


@dataclass
class LoadgenReport:
    connections: int
    duration_s: float
    requests: int
    errors: int
    busy: int
    qps: float
    p50_s: float
    p95_s: float
    p99_s: float
    ticks: float
    latencies: list[float] = field(repr=False, default_factory=list)

    def bench_entries(self) -> list[dict[str, Any]]:
        """Snapshot entries in the shape ``repro.bench regress`` reads."""
        base = {
            "rounds": self.requests,
            "connections": self.connections,
            "qps": self.qps,
            "errors": self.errors,
            "busy": self.busy,
        }
        return [
            {
                "name": "test_server_request_latency",
                "fullname": "bench_server.py::test_server_request_latency",
                "min_s": min(self.latencies) if self.latencies else 0.0,
                "mean_s": (
                    sum(self.latencies) / len(self.latencies)
                    if self.latencies
                    else 0.0
                ),
                "p50_s": self.p50_s,
                "p95_s": self.p95_s,
                "p99_s": self.p99_s,
                **base,
            }
        ]

    def write_snapshot(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": SNAPSHOT_VERSION,
            "suite": "server",
            "benchmarks": self.bench_entries(),
        }
        path = directory / "BENCH_server.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path


def _raise_fd_limit(connections: int) -> None:
    """An in-process run needs ~2 fds per connection; ask for headroom."""
    try:
        import resource
    except ImportError:
        return
    want = max(connections * 3 + 256, 4096)
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= want:
        return
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(want, hard), hard))
    except (ValueError, OSError):
        pass  # keep whatever we have; connect errors will be counted


def _seed_db(config: LoadgenConfig) -> FungusDB:
    db = FungusDB(seed=1729)
    db.create_table(
        "readings",
        Schema.of(sensor="int", temp="float"),
        fungus=LinearDecayFungus(rate=0.01),
    )
    for i in range(config.seed_rows):
        db.insert("readings", {"sensor": i % 32, "temp": 15.0 + (i % 200) / 10.0})
    return db


async def _client_loop(
    host: str,
    port: int,
    index: int,
    config: LoadgenConfig,
    deadline: float,
    out: dict[str, Any],
) -> None:
    try:
        client = await FungusClient.connect(host, port, token=config.token)
    except (ConnectionError, OSError, ServerError):
        # ServerError here means the hello was refused (bad/missing
        # token): count it instead of crashing the whole run
        out["errors"] += 1
        return
    mix_insert = config.inserts_per_100
    mix_strong = mix_insert + config.strong_per_100
    mix_consume = mix_strong + config.consumes_per_100
    n = index  # stagger the mix phase across clients
    try:
        while time.perf_counter() < deadline:
            slot = n % 100
            n += 1
            start = time.perf_counter()
            try:
                if slot < mix_insert:
                    await client.insert(
                        "readings", {"sensor": n % 32, "temp": 20.0 + (n % 100) / 9.0}
                    )
                elif slot < mix_strong:
                    await client.query(
                        f"SELECT count(*) FROM readings WHERE sensor = {n % 32}"
                    )
                elif slot < mix_consume:
                    await client.query(
                        f"CONSUME SELECT sensor FROM readings "
                        f"WHERE f < 0.02 AND sensor = {n % 32}"
                    )
                else:
                    await client.query(
                        f"SELECT count(*) FROM readings WHERE sensor = {n % 32}",
                        consistency="snapshot",
                    )
            except ServerError as exc:
                if exc.code == "BUSY":
                    out["busy"] += 1
                else:
                    out["errors"] += 1
                continue
            out["latencies"].append(time.perf_counter() - start)
    except (ConnectionError, OSError):
        out["errors"] += 1
    finally:
        try:
            await client.close()
        except (ConnectionError, OSError):
            pass


async def run_loadgen(
    config: LoadgenConfig,
    host: str | None = None,
    port: int | None = None,
) -> LoadgenReport:
    """Run the benchmark; in-process server unless ``host`` is given."""
    _raise_fd_limit(config.connections)
    server: FungusServer | None = None
    if host is None:
        db = _seed_db(config)
        server = FungusServer(
            db,
            ServerConfig(
                queue_limit=config.queue_limit,
                tick_interval=config.tick_interval,
            ),
        )
        await server.start()
        host, port = server.config.host, server.port
    assert port is not None
    out: dict[str, Any] = {"latencies": [], "errors": 0, "busy": 0}
    started = time.perf_counter()
    deadline = started + config.duration
    try:
        await asyncio.gather(
            *(
                _client_loop(host, port, i, config, deadline, out)
                for i in range(config.connections)
            )
        )
    finally:
        elapsed = time.perf_counter() - started
        ticks = server.db.clock.now if server is not None else -1.0
        if server is not None:
            await server.stop()
    latencies = out["latencies"]
    return LoadgenReport(
        connections=config.connections,
        duration_s=elapsed,
        requests=len(latencies),
        errors=out["errors"],
        busy=out["busy"],
        qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
        p50_s=quantile(latencies, 0.50) if latencies else 0.0,
        p95_s=quantile(latencies, 0.95) if latencies else 0.0,
        p99_s=quantile(latencies, 0.99) if latencies else 0.0,
        ticks=ticks,
        latencies=latencies,
    )
