"""Load generator: qps and tail latency at 1k+ concurrent connections.

Spins up an in-process :class:`~repro.server.server.FungusServer` (or
targets a remote one), opens ``connections`` client sessions, and has
each run a closed loop of the benchmark mix — mostly snapshot reads,
a slice of inserts, strong reads and consumes — for ``duration``
seconds, timing every round trip with ``perf_counter``.

The result is written as ``BENCH_server.json`` in the exact payload
shape :mod:`repro.bench.snapshots` produces, so ``repro.bench
regress`` gates the server's p50 the same way it gates the kernel
benchmarks; p95/p99/qps/connections ride along as extra keys the
comparator ignores.

Wall-clock timing is the *point* here (we are measuring a network
server), which is why this module lives under the server package —
outside the lint catalogue's no-wall-clock jurisdiction — and why the
clients use ``time.perf_counter`` directly rather than the logical
clock everything engine-side answers to.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.snapshots import SNAPSHOT_VERSION, quantile
from repro.core.db import FungusDB
from repro.fungi import LinearDecayFungus
from repro.obs.export import parse_prometheus
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.server.client import FungusClient, ServerError
from repro.server.server import FungusServer, ServerConfig
from repro.storage.schema import Schema

#: server stage-span names → the stage label used in bench entries
#: (mirrors the server's histogram labels)
STAGE_SPANS = {
    "frame.decode": "decode",
    "admission.wait": "admission.wait",
    "policy.analyze": "policy.analyze",
    "worker.exec": "worker.exec",
    "snapshot.read": "snapshot.read",
    "reply": "reply",
}


@dataclass
class LoadgenConfig:
    connections: int = 1000
    duration: float = 10.0
    tick_interval: float = 0.25
    queue_limit: int = 256
    #: per-100-request mix; the remainder is snapshot reads
    inserts_per_100: int = 20
    strong_per_100: int = 10
    consumes_per_100: int = 2
    seed_rows: int = 500
    #: presented to a remote server at hello; in-process runs are open
    token: str | None = None
    #: trace the run (in-process only): clients mint sampled roots, the
    #: server continues them, and per-stage quantiles land in the report
    trace: bool = False
    #: fraction of client requests that mint a trace (deterministic)
    trace_sample: float = 0.05
    #: start the ops listener and scrape /metrics mid-run through the
    #: strict parse_prometheus oracle (in-process only)
    scrape_ops: bool = False
    #: arm the runtime thread-sanitizer probe on the in-process server's
    #: database (record mode: the run finishes, violations fail it)
    race_probe: bool = False


@dataclass
class LoadgenReport:
    connections: int
    duration_s: float
    requests: int
    errors: int
    busy: int
    qps: float
    p50_s: float
    p95_s: float
    p99_s: float
    ticks: float
    latencies: list[float] = field(repr=False, default_factory=list)
    #: stage label → {count, min_s, mean_s, p50_s, p95_s, p99_s}, from
    #: the traced run's server stage spans (empty when tracing is off)
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    #: every retained span, export shape (empty when tracing is off)
    trace_spans: list[dict[str, Any]] = field(repr=False, default_factory=list)
    #: samples parsed from the mid-run /metrics scrape (-1 = no scrape)
    scraped_samples: int = -1
    #: statement fingerprints reported by the mid-run /debug/queries
    #: scrape (-1 = no scrape)
    scraped_fingerprints: int = -1
    #: cross-thread mutations the race probe observed (-1 = probe off)
    race_violations: int = -1

    def bench_entries(self) -> list[dict[str, Any]]:
        """Snapshot entries in the shape ``repro.bench regress`` reads."""
        base = {
            "rounds": self.requests,
            "connections": self.connections,
            "qps": self.qps,
            "errors": self.errors,
            "busy": self.busy,
        }
        entries = [
            {
                "name": "test_server_request_latency",
                "fullname": "bench_server.py::test_server_request_latency",
                "min_s": min(self.latencies) if self.latencies else 0.0,
                "mean_s": (
                    sum(self.latencies) / len(self.latencies)
                    if self.latencies
                    else 0.0
                ),
                "p50_s": self.p50_s,
                "p95_s": self.p95_s,
                "p99_s": self.p99_s,
                **base,
            }
        ]
        for stage, stats in sorted(self.stages.items()):
            slug = stage.replace(".", "_")
            name = f"test_server_stage_{slug}"
            entries.append(
                {
                    "name": name,
                    "fullname": f"bench_server.py::{name}",
                    "rounds": int(stats["count"]),
                    "min_s": stats["min_s"],
                    "mean_s": stats["mean_s"],
                    "p50_s": stats["p50_s"],
                    "p95_s": stats["p95_s"],
                    "p99_s": stats["p99_s"],
                }
            )
        return entries

    def write_trace(self, path: str | Path) -> int:
        """Write the retained spans as JSONL; returns spans written.

        Only *complete* traces are written: the tracer's ring may have
        evicted a parent whose child survived, and a dangling parent
        reference would (rightly) fail ``validate_spans``.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        spans = _complete_traces(self.trace_spans)
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                json.dump(span, fh, separators=(",", ":"), default=str)
                fh.write("\n")
        return len(spans)

    def write_snapshot(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": SNAPSHOT_VERSION,
            "suite": "server",
            "benchmarks": self.bench_entries(),
        }
        path = directory / "BENCH_server.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path


def _complete_traces(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Drop traces with evicted parents; keep the rest, input order."""
    members: dict[Any, list[dict[str, Any]]] = {}
    ids: dict[Any, set[Any]] = {}
    for span in spans:
        members.setdefault(span["trace_id"], []).append(span)
        ids.setdefault(span["trace_id"], set()).add(span["span_id"])
    whole = {
        trace_id
        for trace_id, group in members.items()
        if all(s["parent_id"] is None or s["parent_id"] in ids[trace_id] for s in group)
    }
    return [span for span in spans if span["trace_id"] in whole]


def _stage_quantiles(spans: list[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """Per-stage latency stats from the server's stage spans."""
    durations: dict[str, list[float]] = {}
    for span in spans:
        stage = STAGE_SPANS.get(span["name"])
        if stage is not None:
            durations.setdefault(stage, []).append(float(span["duration"]))
    return {
        stage: {
            "count": float(len(values)),
            "min_s": min(values),
            "mean_s": sum(values) / len(values),
            "p50_s": quantile(values, 0.50),
            "p95_s": quantile(values, 0.95),
            "p99_s": quantile(values, 0.99),
        }
        for stage, values in durations.items()
    }


async def _ops_get(host: str, port: int, path: str) -> str:
    """GET ``path`` from the ops listener; returns the decoded body."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b" ", 2)[1:2]
    if status != [b"200"]:
        raise ConnectionError(f"{path} answered {head.splitlines()[0]!r}")
    return body.decode("utf-8")


async def _scrape_metrics(host: str, port: int) -> int:
    """GET /metrics; returns parsed sample count.

    Raises if the exposition fails the strict ``parse_prometheus``
    oracle — a mid-run scrape that does not parse is a bug, not a
    degraded datapoint.
    """
    return len(parse_prometheus(await _ops_get(host, port, "/metrics")))


async def _scrape_queries(host: str, port: int) -> int:
    """GET /debug/queries; returns the tracked fingerprint count.

    Raises if the store is absent or the payload shape is off — the
    loadgen mix runs four statement shapes, so a mid-run scrape that
    sees no fingerprints means the stats plumbing is broken.
    """
    payload = json.loads(await _ops_get(host, port, "/debug/queries"))
    if not payload.get("enabled"):
        raise ConnectionError("/debug/queries reports the store disabled")
    fingerprints = payload["fingerprints"]
    if fingerprints != len(payload["queries"]):
        raise ConnectionError(
            "/debug/queries fingerprint count disagrees with its rows"
        )
    return int(fingerprints)


def _raise_fd_limit(connections: int) -> None:
    """An in-process run needs ~2 fds per connection; ask for headroom."""
    try:
        import resource
    except ImportError:
        return
    want = max(connections * 3 + 256, 4096)
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= want:
        return
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(want, hard), hard))
    except (ValueError, OSError):
        pass  # keep whatever we have; connect errors will be counted


def _seed_db(config: LoadgenConfig) -> FungusDB:
    db = FungusDB(seed=1729)
    db.create_table(
        "readings",
        Schema.of(sensor="int", temp="float"),
        fungus=LinearDecayFungus(rate=0.01),
    )
    for i in range(config.seed_rows):
        db.insert("readings", {"sensor": i % 32, "temp": 15.0 + (i % 200) / 10.0})
    return db


async def _client_loop(
    host: str,
    port: int,
    index: int,
    config: LoadgenConfig,
    deadline: float,
    out: dict[str, Any],
    tracer: Any = NULL_TRACER,
) -> None:
    try:
        client = await FungusClient.connect(
            host,
            port,
            token=config.token,
            tracer=tracer,
            trace_sample=config.trace_sample,
        )
    except (ConnectionError, OSError, ServerError):
        # ServerError here means the hello was refused (bad/missing
        # token): count it instead of crashing the whole run
        out["errors"] += 1
        return
    mix_insert = config.inserts_per_100
    mix_strong = mix_insert + config.strong_per_100
    mix_consume = mix_strong + config.consumes_per_100
    n = index  # stagger the mix phase across clients
    try:
        while time.perf_counter() < deadline:
            slot = n % 100
            n += 1
            start = time.perf_counter()
            try:
                if slot < mix_insert:
                    await client.insert(
                        "readings", {"sensor": n % 32, "temp": 20.0 + (n % 100) / 9.0}
                    )
                elif slot < mix_strong:
                    await client.query(
                        f"SELECT count(*) FROM readings WHERE sensor = {n % 32}"
                    )
                elif slot < mix_consume:
                    await client.query(
                        f"CONSUME SELECT sensor FROM readings "
                        f"WHERE f < 0.02 AND sensor = {n % 32}"
                    )
                else:
                    await client.query(
                        f"SELECT count(*) FROM readings WHERE sensor = {n % 32}",
                        consistency="snapshot",
                    )
            except ServerError as exc:
                if exc.code == "BUSY":
                    out["busy"] += 1
                else:
                    out["errors"] += 1
                continue
            out["latencies"].append(time.perf_counter() - start)
    except (ConnectionError, OSError):
        out["errors"] += 1
    finally:
        try:
            await client.close()
        except (ConnectionError, OSError):
            pass


async def run_loadgen(
    config: LoadgenConfig,
    host: str | None = None,
    port: int | None = None,
) -> LoadgenReport:
    """Run the benchmark; in-process server unless ``host`` is given."""
    _raise_fd_limit(config.connections)
    server: FungusServer | None = None
    tracer: Any = NULL_TRACER
    if host is None:
        db = _seed_db(config)
        if config.race_probe:
            # record mode: a violation mid-benchmark must not abort the
            # run; the report carries the count and the CLI fails on it
            db.enable_race_probe(mode="record")
        if config.trace:
            # in-memory ring only, no exporter: span export must never
            # add file I/O to the event loop mid-benchmark; the JSONL
            # is written synchronously after the run by write_trace
            tracer = Tracer(max_finished=500_000)
            db.tracer = tracer
        server = FungusServer(
            db,
            ServerConfig(
                queue_limit=config.queue_limit,
                tick_interval=config.tick_interval,
                ops_port=0 if config.scrape_ops else None,
            ),
        )
        await server.start()
        host, port = server.config.host, server.port
    assert port is not None
    out: dict[str, Any] = {"latencies": [], "errors": 0, "busy": 0}
    started = time.perf_counter()
    deadline = started + config.duration
    scrape: asyncio.Task[tuple[int, int]] | None = None
    if server is not None and config.scrape_ops:
        scrape = asyncio.ensure_future(
            _delayed_scrape(server.config.host, server.ops_port, config.duration / 2)
        )
    try:
        await asyncio.gather(
            *(
                _client_loop(host, port, i, config, deadline, out, tracer)
                for i in range(config.connections)
            )
        )
    finally:
        elapsed = time.perf_counter() - started
        ticks = server.db.clock.now if server is not None else -1.0
        violations = -1
        if server is not None and server.db.race_probe is not None:
            violations = len(server.db.race_probe.violations)
        scraped, fingerprints = -1, -1
        if scrape is not None:
            scraped, fingerprints = await scrape
        if server is not None:
            await server.stop()
    latencies = out["latencies"]
    trace_spans = tracer.to_dicts() if tracer.enabled else []
    return LoadgenReport(
        connections=config.connections,
        duration_s=elapsed,
        requests=len(latencies),
        errors=out["errors"],
        busy=out["busy"],
        qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
        p50_s=quantile(latencies, 0.50) if latencies else 0.0,
        p95_s=quantile(latencies, 0.95) if latencies else 0.0,
        p99_s=quantile(latencies, 0.99) if latencies else 0.0,
        ticks=ticks,
        latencies=latencies,
        stages=_stage_quantiles(trace_spans),
        trace_spans=trace_spans,
        scraped_samples=scraped,
        scraped_fingerprints=fingerprints,
        race_violations=violations,
    )


async def _delayed_scrape(host: str, port: int, delay: float) -> tuple[int, int]:
    """Scrape /metrics and /debug/queries once, mid-run."""
    await asyncio.sleep(delay)
    return await _scrape_metrics(host, port), await _scrape_queries(host, port)
