"""The ops plane: slow-query log and the ``/metrics`` HTTP listener.

Two pieces, both deliberately tiny:

:class:`SlowQueryLog`
    A bounded ring of the most recent requests that ran longer than a
    configurable threshold. Each entry keeps what an operator needs to
    act — the SQL, the principal, the per-stage latency breakdown, and
    the EXPLAIN CONSUME verdict — rather than the raw request, in the
    paper's cook-don't-hoard spirit: the distilled record is retained,
    the short-lived raw event is not.

:class:`OpsServer`
    An aiohttp-free HTTP/1.0 listener living inside
    :class:`~repro.server.server.FungusServer`, serving:

    * ``GET /metrics`` — Prometheus text exposition of the
      ``repro_server_*`` registry (round-trips through the strict
      :func:`~repro.obs.export.parse_prometheus` oracle);
    * ``GET /healthz`` — liveness (200 while the process serves);
    * ``GET /readyz`` — readiness, drain-aware: 503 once a drain has
      begun so load balancers stop routing here;
    * ``GET /debug/sessions`` — the live session table (per-op
      counters, last activity, in-flight requests), JSON;
    * ``GET /debug/slow`` — the slow-query ring, JSON, newest first;
    * ``GET /debug/queries`` — the query-statistics store's
      per-fingerprint aggregates (``pg_stat_statements`` over HTTP),
      JSON, most-called first.

    Everything it serves is loop-owned state — the registry, the
    session table, the slow ring — so no handler ever touches the
    engine worker; scraping ``/metrics`` cannot perturb the very
    latency it reports.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.server.server import FungusServer


class SlowQueryLog:
    """Bounded ring of distilled slow-request records, newest first."""

    def __init__(self, threshold: float, size: int = 128) -> None:
        self.threshold = threshold
        self._ring: deque[dict[str, Any]] = deque(maxlen=max(1, size))
        self.total = 0

    def record(
        self,
        *,
        op: str,
        duration_s: float,
        session: str,
        principal: str,
        sql: str | None,
        stages: dict[str, float],
        verdict: str | None,
        trace: str | None,
        tick: float,
    ) -> None:
        """Retain one over-threshold request (already measured)."""
        self.total += 1
        self._ring.append(
            {
                "op": op,
                "duration_s": round(duration_s, 6),
                "session": session,
                "principal": principal,
                "sql": sql,
                "stages": {name: round(s, 6) for name, s in stages.items()},
                "verdict": verdict,
                "trace": trace,
                "tick": tick,
            }
        )

    def entries(self) -> list[dict[str, Any]]:
        """Retained records, most recent first."""
        return list(reversed(self._ring))


_REASONS = {200: "OK", 404: "Not Found", 405: "Method Not Allowed", 503: "Service Unavailable"}


class OpsServer:
    """The HTTP ops listener; owns nothing, reads the server's state."""

    def __init__(self, server: "FungusServer", host: str, port: int) -> None:
        self._fungus = server
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            # drain headers up to the blank line; none of them matter
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                await self._respond(writer, 405, "text/plain", "method not allowed\n")
                return
            await self._route(writer, path)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, writer: asyncio.StreamWriter, path: str) -> None:
        fungus = self._fungus
        if path == "/metrics":
            await self._respond(
                writer,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                fungus.metrics.exposition(),
            )
        elif path == "/healthz":
            await self._respond(writer, 200, "text/plain", "ok\n")
        elif path == "/readyz":
            if fungus.accepting:
                await self._respond(writer, 200, "text/plain", "ready\n")
            else:
                await self._respond(writer, 503, "text/plain", "draining\n")
        elif path == "/debug/sessions":
            await self._respond_json(
                writer,
                {
                    "sessions": fungus.sessions.describe(),
                    "admission": fungus.admission.describe(),
                },
            )
        elif path == "/debug/slow":
            await self._respond_json(
                writer,
                {
                    "threshold_s": fungus.slow_log.threshold,
                    "total": fungus.slow_log.total,
                    "entries": fungus.slow_log.entries(),
                },
            )
        elif path == "/debug/queries":
            querystats = fungus.db.querystats
            if querystats is None:
                await self._respond_json(
                    writer, {"enabled": False, "fingerprints": 0, "queries": []}
                )
            else:
                # describe() snapshots under the store's lock, so the
                # worker thread mutating mid-scrape is harmless
                payload = querystats.describe()
                payload["enabled"] = True
                await self._respond_json(writer, payload)
        else:
            await self._respond(writer, 404, "text/plain", "not found\n")

    async def _respond_json(self, writer: asyncio.StreamWriter, payload: Any) -> None:
        await self._respond(
            writer, 200, "application/json", json.dumps(payload, sort_keys=True)
        )

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, ctype: str, body: str
    ) -> None:
        data = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {_REASONS[status]}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()
