"""Per-connection session state.

A :class:`Session` is born when a connection completes the ``hello``
handshake and dies with the connection. It carries the resolved
:class:`~repro.server.auth.Grant`, a short stable id (``s1``, ``s2``,
...) that forensics death-provenance records use to attribute consumes
to a network principal, and per-session counters that the ``sessions``
admin op reports.

Session ids are sequential rather than random on purpose: the op-log
replay oracle needs runs to be reproducible byte-for-byte, and a uuid
in the attribution string would differ across replays of the same
seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.auth import Grant


@dataclass
class Session:
    """One authenticated connection's state."""

    id: str
    grant: Grant
    peer: str = "?"
    connected_at: float = 0.0  # logical tick at hello
    requests: int = 0
    rows_consumed: int = 0
    errors: int = 0
    closed: bool = False
    ops: dict[str, int] = field(default_factory=dict)
    last_activity: float = 0.0  # logical tick of the latest request
    in_flight: int = 0  # requests admitted but not yet answered

    @property
    def principal(self) -> str:
        return self.grant.principal

    def note(self, op: str, now: float) -> None:
        """Count one request against this session's per-op ledger."""
        self.requests += 1
        self.ops[op] = self.ops.get(op, 0) + 1
        self.last_activity = now

    def describe(self) -> dict[str, object]:
        return {
            "id": self.id,
            "principal": self.principal,
            "peer": self.peer,
            "connected_at": self.connected_at,
            "requests": self.requests,
            "rows_consumed": self.rows_consumed,
            "errors": self.errors,
            "ops": dict(sorted(self.ops.items())),
            "last_activity": self.last_activity,
            "in_flight": self.in_flight,
        }


class SessionManager:
    """Issues sequential session ids and tracks the live set."""

    def __init__(self) -> None:
        self._next = 0
        self._live: dict[str, Session] = {}
        self.total_opened = 0

    def open(self, grant: Grant, peer: str, now: float) -> Session:
        self._next += 1
        session = Session(
            id=f"s{self._next}", grant=grant, peer=peer, connected_at=now
        )
        self._live[session.id] = session
        self.total_opened += 1
        return session

    def close(self, session: Session) -> None:
        session.closed = True
        self._live.pop(session.id, None)

    @property
    def active(self) -> int:
        return len(self._live)

    def describe(self) -> list[dict[str, object]]:
        return [
            self._live[sid].describe() for sid in sorted(self._live, key=_session_key)
        ]


def _session_key(sid: str) -> int:
    return int(sid[1:])
