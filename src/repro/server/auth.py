"""Token-based principals with per-table rights and logical expiry.

A :class:`Grant` names a principal, the tables it may touch and with
which rights (``read``, ``insert``, ``consume``), and — optionally — a
logical-clock tick after which the token stops working. Expiry is
measured on the *decay clock*, not wall time, for the same reason the
rest of the tree bans ``time.time()``: the database's notion of "when"
is the tick, and an auth decision that consulted a different clock
would be unreplayable.

The registry is deliberately small: tokens map to grants, grants are
checked at use time (so a token that expires mid-session loses its
rights on the next request, not at some future reconnect), and a
server constructed without a registry runs open — every connection
gets the anonymous all-rights grant, which is the embedded-engine
behaviour the rest of the test-suite expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The rights a grant can hold on a table.
RIGHTS = ("read", "insert", "consume")

#: Table name that stands for "every table" in a rights map.
WILDCARD = "*"


class AuthError(Exception):
    """Authentication failed; ``code`` is a :class:`~repro.server.protocol.Code`."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Grant:
    """What one token is allowed to do, and until when.

    ``rights`` maps table name (or ``"*"``) to a frozenset of right
    names. ``expires_at`` is a logical tick: the grant is dead once
    ``clock.now >= expires_at``. ``admin`` short-circuits every check,
    including the elevated right needed for total-consume statements.
    """

    principal: str
    rights: dict[str, frozenset[str]] = field(default_factory=dict)
    admin: bool = False
    expires_at: float | None = None

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at

    def allows(self, table: str, right: str) -> bool:
        if self.admin:
            return True
        for scope in (table, WILDCARD):
            if right in self.rights.get(scope, frozenset()):
                return True
        return False

    @classmethod
    def open_grant(cls, principal: str = "anonymous") -> "Grant":
        """The all-rights grant used when no registry is configured."""
        return cls(principal=principal, rights={WILDCARD: frozenset(RIGHTS)}, admin=True)

    @classmethod
    def of(
        cls,
        principal: str,
        *,
        admin: bool = False,
        expires_at: float | None = None,
        **table_rights: str,
    ) -> "Grant":
        """Convenience builder: ``Grant.of("ana", orders="read,consume")``.

        Table names that are not valid keyword identifiers (or the
        wildcard) can be added to ``rights`` directly.
        """
        rights = {
            table: frozenset(r.strip() for r in spec.split(",") if r.strip())
            for table, spec in table_rights.items()
        }
        for table, granted in rights.items():
            unknown = granted - set(RIGHTS)
            if unknown:
                raise ValueError(f"unknown rights {sorted(unknown)} for table {table!r}")
        return cls(principal=principal, rights=rights, admin=admin, expires_at=expires_at)


class AuthRegistry:
    """Token → :class:`Grant` lookup with logical-tick expiry."""

    def __init__(self) -> None:
        self._grants: dict[str, Grant] = {}

    def issue(self, token: str, grant: Grant) -> Grant:
        self._grants[token] = grant
        return grant

    def revoke(self, token: str) -> None:
        self._grants.pop(token, None)

    def authenticate(self, token: str | None, now: float) -> Grant:
        """Resolve a token or raise :class:`AuthError` with the precise code."""
        from repro.server.protocol import Code

        if token is None:
            raise AuthError(Code.AUTH_REQUIRED, "this server requires a token")
        grant = self._grants.get(token)
        if grant is None:
            raise AuthError(Code.AUTH_FAILED, "unknown token")
        if grant.expired(now):
            raise AuthError(
                Code.AUTH_EXPIRED,
                f"token for {grant.principal!r} expired at tick {grant.expires_at:g}",
            )
        return grant

    def __len__(self) -> int:
        return len(self._grants)
