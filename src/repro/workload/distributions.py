"""Seeded value distributions for workload generation."""

from __future__ import annotations

import bisect
import math
import random
from typing import Sequence, TypeVar

from repro.errors import WorkloadError

T = TypeVar("T")


class UniformInts:
    """Uniform integers in ``[low, high]``."""

    def __init__(self, low: int, high: int, seed: int = 0) -> None:
        if high < low:
            raise WorkloadError(f"empty range [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = random.Random(seed)

    def sample(self) -> int:
        """One draw."""
        return self._rng.randint(self.low, self.high)


class ZipfInts:
    """Zipf-distributed ranks ``1..n`` with exponent ``s``.

    Sampled by inverse CDF over the precomputed harmonic weights —
    exact, and fast enough for the table sizes the experiments use.
    """

    def __init__(self, n: int, s: float = 1.1, seed: int = 0) -> None:
        if n <= 0:
            raise WorkloadError(f"need n > 0, got {n}")
        if s <= 0:
            raise WorkloadError(f"need s > 0, got {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (k ** s) for k in range(1, n + 1)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self) -> int:
        """One draw in ``[1, n]``; rank 1 is the most popular."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u) + 1


class GaussianFloats:
    """Normal floats with optional clamping."""

    def __init__(
        self,
        mean: float = 0.0,
        stddev: float = 1.0,
        low: float | None = None,
        high: float | None = None,
        seed: int = 0,
    ) -> None:
        if stddev <= 0:
            raise WorkloadError(f"stddev must be positive, got {stddev}")
        if low is not None and high is not None and low > high:
            raise WorkloadError(f"bad clamp range [{low}, {high}]")
        self.mean = mean
        self.stddev = stddev
        self.low = low
        self.high = high
        self._rng = random.Random(seed)

    def sample(self) -> float:
        """One draw, clamped if bounds were given."""
        value = self._rng.gauss(self.mean, self.stddev)
        if self.low is not None:
            value = max(value, self.low)
        if self.high is not None:
            value = min(value, self.high)
        return value


class Categorical:
    """Weighted choice over a fixed set of categories."""

    def __init__(self, items: Sequence[T], weights: Sequence[float] | None = None, seed: int = 0) -> None:
        if not items:
            raise WorkloadError("need at least one category")
        if weights is not None:
            if len(weights) != len(items):
                raise WorkloadError(
                    f"{len(weights)} weights for {len(items)} items"
                )
            if any(w < 0 for w in weights) or not math.isfinite(sum(weights)) or sum(weights) <= 0:
                raise WorkloadError(f"bad weights {list(weights)}")
        self.items = list(items)
        self.weights = list(weights) if weights is not None else None
        self._rng = random.Random(seed)

    def sample(self) -> T:
        """One draw."""
        if self.weights is None:
            return self._rng.choice(self.items)
        return self._rng.choices(self.items, weights=self.weights, k=1)[0]
