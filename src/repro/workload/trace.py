"""Workload traces: record a run once, replay it anywhere.

A trace is a JSONL file of events in tick order::

    {"tick": 0, "kind": "insert", "table": "readings", "row": {...}}
    {"tick": 0, "kind": "query", "sql": "SELECT ..."}
    {"tick": 0, "kind": "advance"}

:class:`TraceRecorder` captures what a driver does against a FungusDB;
:func:`replay_trace` re-executes a trace against a fresh database.
This decouples workload *generation* from workload *execution* — the
same trace can drive a fungus table and a baseline, or be shipped as a
reproducibility artifact next to an experiment.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro.core.db import FungusDB
from repro.errors import WorkloadError

TRACE_VERSION = 1


class TraceRecorder:
    """Buffers trace events, then writes them as one atomic JSONL file."""

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = [
            {"kind": "header", "trace_version": TRACE_VERSION}
        ]
        self._tick = 0

    def insert(self, table: str, row: Mapping[str, Any]) -> None:
        """Record one insertion at the current tick."""
        self._events.append(
            {"tick": self._tick, "kind": "insert", "table": table, "row": dict(row)}
        )

    def query(self, sql: str) -> None:
        """Record one SQL statement at the current tick."""
        self._events.append({"tick": self._tick, "kind": "query", "sql": sql})

    def advance(self, ticks: int = 1) -> None:
        """Record clock advancement."""
        if ticks < 0:
            raise WorkloadError(f"cannot advance {ticks} ticks")
        for _ in range(ticks):
            self._events.append({"tick": self._tick, "kind": "advance"})
            self._tick += 1

    @property
    def events(self) -> int:
        """Number of recorded events (header excluded)."""
        return len(self._events) - 1

    def save(self, path: str | Path) -> int:
        """Write the trace; returns the number of events written."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event) + "\n")
        os.replace(tmp, path)
        return self.events


class RecordingDB:
    """A thin FungusDB wrapper that records everything it forwards."""

    def __init__(self, db: FungusDB, recorder: TraceRecorder | None = None) -> None:
        self.db = db
        self.recorder = recorder if recorder is not None else TraceRecorder()

    def insert(self, table: str, row: Mapping[str, Any]) -> int:
        self.recorder.insert(table, row)
        return self.db.insert(table, row)

    def insert_many(self, table: str, rows) -> None:
        for row in rows:
            self.insert(table, row)

    def query(self, sql: str):
        self.recorder.query(sql)
        return self.db.query(sql)

    def tick(self, ticks: int = 1) -> None:
        self.recorder.advance(ticks)
        self.db.tick(ticks)


def replay_trace(path: str | Path, db: FungusDB) -> dict[str, int]:
    """Re-execute a trace against ``db``; returns event counts by kind.

    The database must already contain the tables the trace references
    (schemas and fungi are the experiment's configuration, not part of
    the workload).
    """
    path = Path(path)
    counts = {"insert": 0, "query": 0, "advance": 0}
    try:
        with open(path, encoding="utf-8") as fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(f"trace {path} has a corrupt header: {exc}") from exc
            if not isinstance(header, dict) or header.get("kind") != "header":
                raise WorkloadError(f"trace {path} does not start with a header")
            if header.get("trace_version") != TRACE_VERSION:
                raise WorkloadError(
                    f"trace {path} has version {header.get('trace_version')!r}, "
                    f"expected {TRACE_VERSION}"
                )
            for lineno, line in enumerate(fh, start=2):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise WorkloadError(f"trace {path}:{lineno} is corrupt: {exc}") from exc
                kind = event.get("kind")
                if kind == "insert":
                    db.insert(event["table"], event["row"])
                elif kind == "query":
                    db.query(event["sql"])
                elif kind == "advance":
                    db.tick(1)
                else:
                    raise WorkloadError(f"trace {path}:{lineno}: unknown kind {kind!r}")
                counts[kind] += 1
    except OSError as exc:
        raise WorkloadError(f"cannot read trace {path}: {exc}") from exc
    return counts
