"""Synthetic workloads: the "Big Data" the paper gestures at.

All generators are deterministic under a seed, so every experiment is
reproducible run-to-run. The package covers:

* :mod:`~repro.workload.distributions` — seeded Zipf/uniform/Gaussian
  value pickers.
* :mod:`~repro.workload.arrival` — arrival processes per decay-clock
  tick: constant, Poisson, bursty, and the exponential-doubling
  "chessboard" process from the paper's fable.
* :mod:`~repro.workload.generators` — domain record generators
  (sensor readings, web log entries, market ticks).
* :mod:`~repro.workload.queries` — query workloads over a decaying
  table (point, range, aggregate, consuming).
* :mod:`~repro.workload.replay` — drives a FungusDB tick-by-tick from
  an arrival process + record generator.
"""

from repro.workload.distributions import UniformInts, ZipfInts, GaussianFloats, Categorical
from repro.workload.arrival import (
    ArrivalProcess,
    BurstyArrivals,
    ChessboardArrivals,
    ConstantArrivals,
    PoissonArrivals,
)
from repro.workload.generators import (
    MarketTickGenerator,
    RecordGenerator,
    SensorGenerator,
    WebLogGenerator,
)
from repro.workload.queries import QueryWorkload
from repro.workload.replay import ReplayDriver, ReplayStats
from repro.workload.trace import RecordingDB, TraceRecorder, replay_trace

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "Categorical",
    "ChessboardArrivals",
    "ConstantArrivals",
    "GaussianFloats",
    "MarketTickGenerator",
    "PoissonArrivals",
    "QueryWorkload",
    "RecordGenerator",
    "RecordingDB",
    "ReplayDriver",
    "ReplayStats",
    "SensorGenerator",
    "TraceRecorder",
    "UniformInts",
    "WebLogGenerator",
    "ZipfInts",
    "replay_trace",
]
