"""Query workloads over a decaying table.

Generates a seeded stream of SQL strings in four flavours — point
lookups, time-range scans, aggregates, and consuming queries — with a
configurable mix. The F3/T4 experiments replay these against a
FungusDB and against baselines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError


@dataclass(frozen=True)
class QueryMix:
    """Relative weights of the four query flavours."""

    point: float = 0.4
    time_range: float = 0.3
    aggregate: float = 0.2
    consume: float = 0.1

    def __post_init__(self) -> None:
        weights = (self.point, self.time_range, self.aggregate, self.consume)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise WorkloadError(f"bad query mix {weights}")


class QueryWorkload:
    """Seeded generator of SQL over one table.

    ``key_column``/``key_values`` drive point lookups;
    ``value_column`` drives aggregates; time ranges are drawn over
    ``[0, horizon]`` with span ``range_fraction × horizon``.
    """

    def __init__(
        self,
        table: str,
        key_column: str,
        key_values: list[str],
        value_column: str,
        time_column: str = "t",
        horizon: float = 100.0,
        range_fraction: float = 0.2,
        mix: QueryMix | None = None,
        seed: int = 0,
    ) -> None:
        if not key_values:
            raise WorkloadError("need at least one key value")
        if horizon <= 0 or not (0 < range_fraction <= 1):
            raise WorkloadError(
                f"bad horizon {horizon} or range_fraction {range_fraction}"
            )
        self.table = table
        self.key_column = key_column
        self.key_values = list(key_values)
        self.value_column = value_column
        self.time_column = time_column
        self.horizon = horizon
        self.range_fraction = range_fraction
        self.mix = mix if mix is not None else QueryMix()
        self._rng = random.Random(seed)

    def _flavour(self) -> str:
        m = self.mix
        return self._rng.choices(
            ["point", "time_range", "aggregate", "consume"],
            weights=[m.point, m.time_range, m.aggregate, m.consume],
            k=1,
        )[0]

    def next_query(self) -> str:
        """One SQL statement."""
        flavour = self._flavour()
        if flavour == "point":
            key = self._rng.choice(self.key_values)
            return (
                f"SELECT * FROM {self.table} "
                f"WHERE {self.key_column} = '{key}'"
            )
        if flavour == "time_range":
            lo, hi = self._time_range()
            return (
                f"SELECT * FROM {self.table} "
                f"WHERE {self.time_column} BETWEEN {lo:.4f} AND {hi:.4f}"
            )
        if flavour == "aggregate":
            return (
                f"SELECT {self.key_column}, count(*) AS n, avg({self.value_column}) AS mean "
                f"FROM {self.table} GROUP BY {self.key_column}"
            )
        lo, hi = self._time_range()
        return (
            f"CONSUME SELECT * FROM {self.table} "
            f"WHERE {self.time_column} BETWEEN {lo:.4f} AND {hi:.4f}"
        )

    def _time_range(self) -> tuple[float, float]:
        span = self.horizon * self.range_fraction
        lo = self._rng.uniform(0.0, max(self.horizon - span, 0.0))
        return lo, lo + span

    def queries(self, count: int) -> Iterator[str]:
        """A finite stream of ``count`` statements."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        for _ in range(count):
            yield self.next_query()
