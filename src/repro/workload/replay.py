"""Replay driver: arrival process × record generator → FungusDB ticks.

The standard experiment loop: at each tick, insert
``arrivals.count_at(tick)`` records from the generator, then advance
the decay clock (which runs the fungus). Probes registered with
:meth:`ReplayDriver.probe_each_tick` sample whatever series the
experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.db import FungusDB
from repro.errors import WorkloadError
from repro.workload.arrival import ArrivalProcess
from repro.workload.generators import RecordGenerator


@dataclass
class ReplayStats:
    """What a replay run did, plus any per-tick probe series."""

    ticks: int = 0
    inserted: int = 0
    series: dict[str, list[Any]] = field(default_factory=dict)

    def record(self, name: str, value: Any) -> None:
        """Append one sample to a named series."""
        self.series.setdefault(name, []).append(value)


class ReplayDriver:
    """Drives one table of a FungusDB from a synthetic workload."""

    def __init__(
        self,
        db: FungusDB,
        table: str,
        arrivals: ArrivalProcess,
        generator: RecordGenerator,
    ) -> None:
        if table not in db.tables:
            raise WorkloadError(f"table {table!r} does not exist in the database")
        self.db = db
        self.table = table
        self.arrivals = arrivals
        self.generator = generator
        self._probes: list[Callable[[int, FungusDB, ReplayStats], None]] = []

    def probe_each_tick(self, probe: Callable[[int, FungusDB, ReplayStats], None]) -> None:
        """Register ``probe(tick, db, stats)`` to run after every tick."""
        self._probes.append(probe)

    def run(self, ticks: int) -> ReplayStats:
        """Insert-then-tick for ``ticks`` ticks; returns stats + series."""
        if ticks < 0:
            raise WorkloadError(f"ticks must be >= 0, got {ticks}")
        stats = ReplayStats()
        for tick in range(ticks):
            count = self.arrivals.count_at(tick)
            if count:
                rows = [self.generator.generate(tick) for _ in range(count)]
                self.db.insert_many(self.table, rows)
                stats.inserted += count
            self.db.tick(1)
            stats.ticks += 1
            for probe in self._probes:
                probe(tick, self.db, stats)
        return stats
