"""Arrival processes: how many tuples arrive per decay-clock tick.

The paper's motivation is an arrival process: "Every 1.5 year we double
the amount of data" — the chessboard fable. :class:`ChessboardArrivals`
models exactly that; the others are the standard shapes experiments
sweep over.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Protocol

from repro.errors import WorkloadError


class ArrivalProcess(Protocol):
    """Protocol: ``count_at(tick)`` tuples arrive at each tick."""

    def count_at(self, tick: int) -> int:
        """Number of arrivals at ``tick`` (deterministic per instance)."""


class ConstantArrivals:
    """Exactly ``rate`` arrivals every tick."""

    def __init__(self, rate: int) -> None:
        if rate < 0:
            raise WorkloadError(f"rate must be non-negative, got {rate}")
        self.rate = rate

    def count_at(self, tick: int) -> int:
        return self.rate


class PoissonArrivals:
    """Poisson(λ) arrivals per tick, deterministic per (seed, tick)."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate < 0:
            raise WorkloadError(f"rate must be non-negative, got {rate}")
        self.rate = rate
        self.seed = seed

    def count_at(self, tick: int) -> int:
        rng = random.Random(self.seed * 1_000_003 + tick)
        # Knuth's algorithm; fine for the modest rates experiments use
        limit = math.exp(-self.rate)
        count = 0
        product = rng.random()
        while product > limit:
            count += 1
            product *= rng.random()
        return count


class BurstyArrivals:
    """Baseline rate with periodic multiplicative bursts.

    Every ``period`` ticks, ``burst_length`` consecutive ticks carry
    ``burst_factor`` times the base rate — the "flash crowd" shape that
    makes cliff-retention baselines look good or bad depending on phase.
    """

    def __init__(
        self, base_rate: int, period: int, burst_factor: float = 10.0, burst_length: int = 1
    ) -> None:
        if base_rate < 0 or period <= 0 or burst_factor < 1 or burst_length < 0:
            raise WorkloadError(
                f"bad burst parameters: base={base_rate} period={period} "
                f"factor={burst_factor} length={burst_length}"
            )
        self.base_rate = base_rate
        self.period = period
        self.burst_factor = burst_factor
        self.burst_length = burst_length

    def count_at(self, tick: int) -> int:
        if tick % self.period < self.burst_length:
            return int(self.base_rate * self.burst_factor)
        return self.base_rate


class ChessboardArrivals:
    """The fable: arrivals double every ``doubling_period`` ticks.

    Square ``k`` of the board holds ``2^k`` grains; here tick ``t`` is
    on square ``t // doubling_period`` and receives
    ``initial * 2^square`` arrivals, capped so the simulation stays on
    a laptop (the cap itself is the paper's point — you *can't* keep
    filling squares).
    """

    def __init__(
        self, initial: int = 1, doubling_period: int = 1, cap: int = 1_000_000
    ) -> None:
        if initial <= 0 or doubling_period <= 0 or cap <= 0:
            raise WorkloadError(
                f"bad chessboard parameters: initial={initial} "
                f"period={doubling_period} cap={cap}"
            )
        self.initial = initial
        self.doubling_period = doubling_period
        self.cap = cap

    def count_at(self, tick: int) -> int:
        square = tick // self.doubling_period
        if square >= 63:
            return self.cap
        return min(self.initial * (2 ** square), self.cap)


def cumulative_arrivals(process: ArrivalProcess, ticks: int) -> Iterator[int]:
    """Running total of arrivals over ``ticks`` ticks (tick 0 first)."""
    total = 0
    for tick in range(ticks):
        total += process.count_at(tick)
        yield total
