"""Domain record generators.

Each generator produces dict rows matching its published schema; the
replay driver stamps the time column. Three domains cover the
motivating workloads of the intro (sensor pipelines, web logs, market
data) — enough variety to exercise numeric, categorical and skewed
columns.
"""

from __future__ import annotations

import random
from typing import Any, Protocol

from repro.storage.schema import ColumnDef, DataType, Schema
from repro.workload.distributions import Categorical, GaussianFloats, ZipfInts


class RecordGenerator(Protocol):
    """Protocol: a schema plus a ``generate(tick)`` row factory."""

    schema: Schema

    def generate(self, tick: int) -> dict[str, Any]:
        """One record for insertion at ``tick`` (time column excluded)."""


class SensorGenerator:
    """IoT-style sensor readings: sensor id, temperature, battery."""

    def __init__(self, num_sensors: int = 50, seed: int = 0) -> None:
        self.schema = Schema(
            [
                ColumnDef("sensor", DataType.STR),
                ColumnDef("temp", DataType.FLOAT),
                ColumnDef("battery", DataType.FLOAT),
            ]
        )
        self.num_sensors = num_sensors
        self._rng = random.Random(seed)
        self._temps = GaussianFloats(mean=20.0, stddev=6.0, low=-20.0, high=60.0, seed=seed + 1)
        self._battery: dict[str, float] = {}

    def generate(self, tick: int) -> dict[str, Any]:
        sensor = f"s{self._rng.randrange(self.num_sensors):03d}"
        battery = self._battery.get(sensor, 100.0)
        battery = max(0.0, battery - self._rng.random() * 0.05)
        self._battery[sensor] = battery
        return {
            "sensor": sensor,
            "temp": self._temps.sample(),
            "battery": battery,
        }


class WebLogGenerator:
    """Web access log entries: url (Zipf-skewed), status, latency, user."""

    _STATUSES = (200, 200, 200, 200, 304, 404, 500)

    def __init__(self, num_urls: int = 200, num_users: int = 500, seed: int = 0) -> None:
        self.schema = Schema(
            [
                ColumnDef("url", DataType.STR),
                ColumnDef("status", DataType.INT),
                ColumnDef("latency_ms", DataType.FLOAT),
                ColumnDef("user", DataType.STR),
            ]
        )
        self._urls = ZipfInts(num_urls, s=1.2, seed=seed)
        self._users = ZipfInts(num_users, s=1.05, seed=seed + 1)
        self._rng = random.Random(seed + 2)
        self._latency = GaussianFloats(mean=120.0, stddev=80.0, low=1.0, seed=seed + 3)

    def generate(self, tick: int) -> dict[str, Any]:
        return {
            "url": f"/page/{self._urls.sample()}",
            "status": self._rng.choice(self._STATUSES),
            "latency_ms": self._latency.sample(),
            "user": f"u{self._users.sample()}",
        }


class MarketTickGenerator:
    """Market ticks: symbol, price (random walk per symbol), volume."""

    def __init__(self, symbols: tuple[str, ...] = ("AAA", "BBB", "CCC", "DDD"), seed: int = 0) -> None:
        self.schema = Schema(
            [
                ColumnDef("symbol", DataType.STR),
                ColumnDef("price", DataType.FLOAT),
                ColumnDef("volume", DataType.INT),
            ]
        )
        self._symbols = Categorical(list(symbols), seed=seed)
        self._rng = random.Random(seed + 1)
        self._prices: dict[str, float] = {s: 100.0 for s in symbols}

    def generate(self, tick: int) -> dict[str, Any]:
        symbol = self._symbols.sample()
        price = self._prices[symbol] * (1.0 + self._rng.gauss(0.0, 0.004))
        price = max(price, 0.01)
        self._prices[symbol] = price
        return {
            "symbol": symbol,
            "price": price,
            "volume": self._rng.randint(1, 1000),
        }
