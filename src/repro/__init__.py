"""repro — a reproduction of "Big Data Space Fungus" (Kersten, CIDR 2015).

A relational database in which data rots by natural law:

* **Law 1 (decay)** — every relation ``R(t, f, A1..An)`` carries
  per-tuple freshness; a periodic decay clock applies a *data fungus*
  that lowers freshness until tuples disappear.
* **Law 2 (consume)** — ``CONSUME SELECT`` replaces the extent of R by
  ``R − σ_P(R)``: answered data leaves the table, distilled into
  bounded summaries.

Public API highlights (see subpackages for the full surface)::

    from repro import FungusDB, Schema, EGIFungus

    db = FungusDB(seed=7)
    db.create_table("logs", Schema.of(url="str", status="int"),
                    fungus=EGIFungus(seeds_per_cycle=2, decay_rate=0.25))
    db.insert("logs", {"url": "/home", "status": 200})
    db.tick(5)
    db.query("SELECT count(*) FROM logs WHERE f > 0.5")
    db.query("CONSUME SELECT url FROM logs WHERE status = 500")
"""

from repro.errors import FungusError
from repro.storage.schema import ColumnDef, DataType, Schema
from repro.storage.rowset import RowSet
from repro.core.clock import DecayClock
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.db import FungusDB
from repro.core.distill import Distiller, SummaryStore
from repro.core.vault import SummaryVault
from repro.core.freshness import FreshnessBand, band_of
from repro.core.fungus import DecayReport, Fungus
from repro.core.health import HealthReport, measure_health
from repro.core.policy import DecayPolicy, EvictionMode
from repro.core.table import DecayingTable
from repro.fungi import (
    AccessRefreshFungus,
    BlueCheeseFungus,
    CompositeFungus,
    EGIFungus,
    ExponentialDecayFungus,
    LinearDecayFungus,
    NullFungus,
    PredicateFungus,
    RetentionFungus,
    SigmoidDecayFungus,
)
from repro.query.executor import QueryEngine
from repro.query.result import ResultSet
from repro.sketch.summary import SummaryConfig, TableSummary

__version__ = "1.0.0"

__all__ = [
    "AccessRefreshFungus",
    "BlueCheeseFungus",
    "ColumnDef",
    "CompositeFungus",
    "DataType",
    "DecayClock",
    "DecayPolicy",
    "DecayReport",
    "DecayingTable",
    "Distiller",
    "EGIFungus",
    "EvictionMode",
    "ExponentialDecayFungus",
    "FreshnessBand",
    "Fungus",
    "FungusDB",
    "FungusError",
    "HealthReport",
    "LinearDecayFungus",
    "NullFungus",
    "PredicateFungus",
    "QueryEngine",
    "ResultSet",
    "RetentionFungus",
    "RowSet",
    "Schema",
    "SigmoidDecayFungus",
    "SummaryConfig",
    "SummaryStore",
    "SummaryVault",
    "TableSummary",
    "band_of",
    "load_checkpoint",
    "measure_health",
    "save_checkpoint",
]
