"""The one-call observability facade for a FungusDB.

:class:`Telemetry` bundles the three obs subsystems and wires them
into a live database::

    db = FungusDB(seed=7)
    tel = db.enable_telemetry(tracing=True, trace_path="run.jsonl")
    ... workload ...
    print(tel.exposition())          # Prometheus text format
    spans = tel.tracer.to_dicts()    # the causal timeline

Wiring performed on attach:

* a :class:`~repro.obs.collector.BusCollector` subscribes to the
  database's event bus and keeps the metrics registry current;
* when tracing is requested, a live :class:`~repro.obs.tracing.Tracer`
  replaces the :data:`~repro.obs.tracing.NULL_TRACER` on the database,
  its decay clock, and its query engine (one shared tracer, so spans
  nest correctly across layers);
* :meth:`exposition` additionally folds the hot-path
  :data:`~repro.obs.profile.PROFILER` counters into the registry so
  one scrape carries everything.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.collector import BusCollector
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PROFILER
from repro.obs.tracing import NULL_TRACER, JsonlTraceExporter, Tracer


class Telemetry:
    """Metrics + tracing + profiling attached to one FungusDB."""

    def __init__(
        self,
        db: Any,
        tracing: bool = False,
        trace_path: str | Path | None = None,
        rate_tau: float = 10.0,
        sample_every: int = 1,
        profile: bool = False,
    ) -> None:
        self.db = db
        self.registry = MetricsRegistry()
        self.collector = BusCollector(
            self.registry, rate_tau=rate_tau, sample_every=sample_every
        ).attach(db)
        exporter = JsonlTraceExporter(trace_path) if trace_path else None
        if tracing or exporter is not None:
            self.tracer: Any = Tracer(exporter=exporter)
        else:
            self.tracer = NULL_TRACER
        # the db's tracer property fans out to clock, engine and tables
        db.tracer = self.tracer
        if profile:
            PROFILER.enable()
        self._owns_profiler = profile

    @property
    def tracing_enabled(self) -> bool:
        """True when a live tracer is wired in."""
        return self.tracer.enabled

    def exposition(self) -> str:
        """Prometheus text exposition of every metric, gauges refreshed."""
        self.collector.sample_all()
        self._export_profiler()
        return render_prometheus(self.registry)

    def _export_profiler(self) -> None:
        snapshot = PROFILER.snapshot()
        if not snapshot:
            return
        calls = self.registry.gauge(
            "repro_hotpath_calls", "Hot-path profiler: calls per site.", ("site",)
        )
        rows = self.registry.gauge(
            "repro_hotpath_rows", "Hot-path profiler: rows touched per site.", ("site",)
        )
        seconds = self.registry.gauge(
            "repro_hotpath_seconds", "Hot-path profiler: seconds per site.", ("site",)
        )
        for site, stats in snapshot.items():
            calls.labels(site=site).set(stats.calls)
            rows.labels(site=site).set(stats.rows)
            seconds.labels(site=site).set(stats.seconds)

    def close(self) -> None:
        """Detach from the bus, un-wire the tracer, close the exporter."""
        self.collector.detach()
        self.tracer.close()
        self.db.tracer = NULL_TRACER
        if self._owns_profiler:
            PROFILER.disable()
        if self.db is not None and getattr(self.db, "telemetry", None) is self:
            self.db.telemetry = None
