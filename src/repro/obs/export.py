"""Prometheus text exposition (version 0.0.4) for a metrics registry.

:func:`render_prometheus` turns a
:class:`~repro.obs.metrics.MetricsRegistry` into the classic
``# HELP`` / ``# TYPE`` / sample-line text format::

    # HELP repro_evictions_total Tuples evicted, by table and reason.
    # TYPE repro_evictions_total counter
    repro_evictions_total{table="logs",reason="decay"} 42

EWMA rates are exposed as gauges (a rate *is* a gauge); histograms
expand into cumulative ``_bucket{le=...}`` lines plus ``_sum`` and
``_count``. :func:`parse_prometheus` is the matching strict reader the
tests and CI use to prove the output round-trips.
"""

from __future__ import annotations

import math
import re

from repro.errors import ObsError
from repro.obs.metrics import EWMARate, Histogram, MetricsRegistry

_EXPOSED_TYPE = {"counter": "counter", "gauge": "gauge", "histogram": "histogram", "ewma": "gauge"}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full exposition for every family in ``registry``."""
    lines: list[str] = []
    for family in registry.families():
        if family.help_text:
            lines.append(f"# HELP {family.name} {_escape_help(family.help_text)}")
        lines.append(f"# TYPE {family.name} {_EXPOSED_TYPE[family.kind]}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    le = "+Inf" if bound == math.inf else _format_value(bound)
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{family.name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_labels_text(labels)} {child.count}")
            elif isinstance(child, EWMARate):
                lines.append(
                    f"{family.name}{_labels_text(labels)} {_format_value(child.value)}"
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(labels)} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# strict reader (round-trip validation)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)
_HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$")

SampleKey = tuple[str, tuple[tuple[str, str], ...]]


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> dict[SampleKey, float]:
    """Parse an exposition back into ``{(name, labels): value}``.

    Raises :class:`ObsError` on any line that is not a valid HELP,
    TYPE, comment, or sample line — the tests use this as the format
    validity oracle. Also enforces that every sample's base name was
    announced by a preceding ``# TYPE`` line.
    """
    samples: dict[SampleKey, float] = {}
    declared_types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _TYPE_RE.match(line):
                match = _TYPE_RE.match(line)
                declared_types[match.group(1)] = match.group(2)
                continue
            if _HELP_RE.match(line) or line.startswith("# "):
                continue
            raise ObsError(f"line {lineno}: malformed comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ObsError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels_text = match.group("labels") or ""
        labels: list[tuple[str, str]] = []
        if labels_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(labels_text):
                labels.append((pair.group(1), pair.group(2)))
                consumed = pair.end()
            rest = labels_text[consumed:].strip().strip(",")
            if rest:
                raise ObsError(f"line {lineno}: malformed labels {labels_text!r}")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared_types and base not in declared_types:
            raise ObsError(f"line {lineno}: sample {name!r} has no # TYPE line")
        try:
            value = _parse_value(match.group("value"))
        except ValueError as exc:
            raise ObsError(f"line {lineno}: bad value {match.group('value')!r}") from exc
        key = (name, tuple(labels))
        if key in samples:
            raise ObsError(f"line {lineno}: duplicate sample {name}{dict(labels)}")
        samples[key] = value
    return samples


def sample_value(
    samples: dict[SampleKey, float], name: str, **labels: object
) -> float:
    """Look up one parsed sample by name and exact label set."""
    wanted = {k: str(v) for k, v in labels.items()}
    for (sample_name, sample_labels), value in samples.items():
        if sample_name == name and dict(sample_labels) == wanted:
            return value
    raise ObsError(f"no sample {name!r} with labels {labels}")
