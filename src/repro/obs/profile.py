"""Hot-path profiling hooks, zero-overhead when disabled.

The decay core's hottest loops (EGI seed/spread cycles, predicate
scans over the row space) carry a guarded call into this module::

    if PROFILER.enabled:
        PROFILER.record("egi.cycle", rows=n, seconds=elapsed)

When disabled — the default — the cost at each site is exactly one
attribute load and a falsy branch; no objects are allocated and no
clock is read. ``benchmarks/bench_t3_overhead.py`` holds that claim to
< 5% ingest overhead.

This module is imported by the *storage* layer, the bottom of the
dependency stack, so it must stay stdlib-only: no imports from
anywhere else in :mod:`repro`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class SiteStats:
    """Accumulated cost of one instrumented call site."""

    calls: int = 0
    rows: int = 0
    seconds: float = 0.0

    def describe(self) -> str:
        per_call = self.seconds / self.calls * 1e6 if self.calls else 0.0
        return (
            f"calls={self.calls} rows={self.rows} "
            f"total={self.seconds * 1000:.3f}ms ({per_call:.1f}us/call)"
        )


class HotPathProfiler:
    """A process-wide accumulator keyed by call-site name.

    Sites are free-form dotted strings (``"egi.spread"``,
    ``"table.scan"``). The profiler is deliberately not thread-safe:
    the whole library assumes a single-threaded driver.
    """

    __slots__ = ("enabled", "_sites")

    #: Clock used by instrumented sites; exposed so call sites and the
    #: profiler always agree on the time base.
    time = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self.enabled = False
        self._sites: dict[str, SiteStats] = {}

    def enable(self) -> None:
        """Start accumulating at every instrumented site."""
        self.enabled = True

    def disable(self) -> None:
        """Stop accumulating (already-collected stats are kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all accumulated stats (the enabled flag is untouched)."""
        self._sites.clear()

    def record(self, site: str, rows: int = 0, seconds: float = 0.0) -> None:
        """Add one observation for ``site``.

        Call sites guard this behind ``if PROFILER.enabled`` — calling
        it while disabled still records (useful in tests).
        """
        stats = self._sites.get(site)
        if stats is None:
            stats = self._sites[site] = SiteStats()
        stats.calls += 1
        stats.rows += rows
        stats.seconds += seconds

    def snapshot(self) -> dict[str, SiteStats]:
        """A copy of the per-site stats, keyed by site name."""
        return {
            site: SiteStats(s.calls, s.rows, s.seconds)
            for site, s in sorted(self._sites.items())
        }

    def describe(self) -> str:
        """Human-readable per-site cost table (empty string if none)."""
        return "\n".join(
            f"{site}: {stats.describe()}" for site, stats in sorted(self._sites.items())
        )


#: The process-wide profiler every instrumented hot path checks.
PROFILER = HotPathProfiler()
