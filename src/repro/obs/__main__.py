"""``python -m repro.obs`` — observability utilities.

Subcommands:

``check-trace <file.jsonl>...``
    Parse each JSONL trace and validate span-tree integrity (unique
    ids, parents present and properly ordered, child intervals nested
    within their parent). CI runs this over the traces the simulation
    sweep records; exit status 1 means at least one trace is broken.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ObsError
from repro.obs.tracing import read_trace, validate_spans


def check_trace(paths: list[str]) -> int:
    failures = 0
    for path in paths:
        try:
            spans = read_trace(path)
        except ObsError as exc:
            print(f"{path}: UNREADABLE — {exc}")
            failures += 1
            continue
        problems = validate_spans(spans)
        if not spans:
            problems = ["trace contains no spans"]
        if problems:
            failures += 1
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            traces = len({span["trace_id"] for span in spans})
            print(f"{path}: ok ({len(spans)} spans, {traces} traces)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="FungusDB observability utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "check-trace", help="validate JSONL trace files (span-tree integrity)"
    )
    check.add_argument("paths", nargs="+", metavar="FILE")
    args = parser.parse_args(argv)
    if args.command == "check-trace":
        return check_trace(args.paths)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
