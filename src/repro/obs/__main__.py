"""``python -m repro.obs`` — observability utilities.

Subcommands:

``check-trace <file.jsonl>...``
    Parse each JSONL trace and validate span-tree integrity (unique
    ids, parents present and properly ordered, child intervals nested
    within their parent). CI runs this over the traces the simulation
    sweep records; exit status 1 means at least one trace is broken.

``why <checkpoint-dir-or-forensics.json> <table> <ref>``
    Offline death provenance: load the forensics state a checkpoint
    persisted and print the ASCII infection-lineage tree for one
    tuple. ``ref`` is a forensic id by default (stable across
    restores); ``--rid`` switches to the save-time live-row ordinal.

``alerts <checkpoint-dir-or-forensics.json>``
    Print the persisted rot-rate alert rules and transition log, and
    (``--spots``) the reconstructed rot spots per table.

``queries <checkpoint-dir-or-querystats.json>``
    Print the query-statistics store a checkpoint persisted — the
    offline twin of the server's ``/debug/queries`` endpoint. ``--by``
    reranks by ``calls``/``rows``/``seconds``; ``--top`` bounds the
    listing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ObsError
from repro.obs.tracing import read_trace, validate_spans


def check_trace(paths: list[str]) -> int:
    failures = 0
    for path in paths:
        try:
            spans = read_trace(path)
        except ObsError as exc:
            print(f"{path}: UNREADABLE — {exc}")
            failures += 1
            continue
        problems = validate_spans(spans)
        if not spans:
            problems = ["trace contains no spans"]
        if problems:
            failures += 1
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            traces = len({span["trace_id"] for span in spans})
            print(f"{path}: ok ({len(spans)} spans, {traces} traces)")
    return 1 if failures else 0


def _load_forensics_state(path: str):
    """``(store, rules)`` from a forensics.json or a checkpoint dir."""
    from repro.obs.forensics.store import LineageStore

    target = Path(path)
    if target.is_dir():
        target = target / "forensics.json"
    try:
        with open(target, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ObsError(f"cannot read forensics state {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"corrupt forensics state {target}: {exc}") from exc
    store, _ = LineageStore.from_dict(data["store"], bind_lives=True)
    return store, list(data.get("rules", ()))


def why(path: str, table: str, ref: int, by_rid: bool = False) -> int:
    from repro.obs.forensics.render import render_chain

    try:
        store, _ = _load_forensics_state(path)
    except ObsError as exc:
        print(exc, file=sys.stderr)
        return 1
    chain = store.why(table, ref, by_fid=not by_rid)
    if chain is None:
        kind = "rid" if by_rid else "fid"
        have = ", ".join(store.tables()) or "(no tables)"
        print(
            f"no forensic record for {table!r} {kind} {ref} — tables: {have}",
            file=sys.stderr,
        )
        return 1
    print(render_chain(chain, ref, by_fid=not by_rid))
    return 0


def alerts(path: str, spots: bool = False) -> int:
    from repro.obs.forensics.render import render_alert_log, render_spots

    try:
        store, rules = _load_forensics_state(path)
    except ObsError as exc:
        print(exc, file=sys.stderr)
        return 1
    if rules:
        print(f"{len(rules)} rule(s) armed:")
        for rule in rules:
            print(f"  {rule}")
    else:
        print("no alert rules armed")
    print(render_alert_log(store.alert_log))
    if spots:
        for table in store.tables():
            print(render_spots(table, store.spots(table)))
    return 0


def queries(path: str, by: str = "seconds", top: int = 20) -> int:
    from repro.obs.querystats import QueryStatsStore, render_queries

    target = Path(path)
    if target.is_dir():
        target = target / "querystats.json"
    try:
        with open(target, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        print(f"cannot read query stats {target}: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"corrupt query stats {target}: {exc}", file=sys.stderr)
        return 1
    store = QueryStatsStore.from_dict(data)
    for line in render_queries(store.top(top, by=by)):
        print(line)
    if store.evicted_total:
        print(f"({store.evicted_total} cold fingerprints evicted)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="FungusDB observability utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "check-trace", help="validate JSONL trace files (span-tree integrity)"
    )
    check.add_argument("paths", nargs="+", metavar="FILE")
    why_parser = sub.add_parser(
        "why", help="print one tuple's infection lineage from saved forensics"
    )
    why_parser.add_argument(
        "path", metavar="CHECKPOINT", help="checkpoint directory or forensics.json"
    )
    why_parser.add_argument("table", help="table name")
    why_parser.add_argument("ref", type=int, help="forensic id (or rid with --rid)")
    why_parser.add_argument(
        "--rid",
        action="store_true",
        help="treat REF as the save-time live-row ordinal instead of a fid",
    )
    alerts_parser = sub.add_parser(
        "alerts", help="print saved alert rules, transition log, and rot spots"
    )
    alerts_parser.add_argument(
        "path", metavar="CHECKPOINT", help="checkpoint directory or forensics.json"
    )
    alerts_parser.add_argument(
        "--spots", action="store_true", help="also reconstruct rot spots per table"
    )
    queries_parser = sub.add_parser(
        "queries", help="print the saved query-statistics store (plan-vs-actual)"
    )
    queries_parser.add_argument(
        "path", metavar="CHECKPOINT", help="checkpoint directory or querystats.json"
    )
    queries_parser.add_argument(
        "--by",
        choices=("seconds", "calls", "rows"),
        default="seconds",
        help="ranking column (default: seconds)",
    )
    queries_parser.add_argument(
        "--top", type=int, default=20, help="rows to print (default: 20)"
    )
    args = parser.parse_args(argv)
    if args.command == "check-trace":
        return check_trace(args.paths)
    if args.command == "why":
        return why(args.path, args.table, args.ref, by_rid=args.rid)
    if args.command == "alerts":
        return alerts(args.path, spots=args.spots)
    if args.command == "queries":
        return queries(args.path, by=args.by, top=args.top)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
