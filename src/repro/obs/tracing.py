"""Span tracing with parent/child links and a JSONL exporter.

A :class:`Tracer` hands out :class:`Span` context managers; nesting is
tracked on an explicit stack (the embedded engine is single-threaded
by design), so a ``tick`` span opened by :meth:`FungusDB.tick` becomes
the parent of the ``clock.advance`` and ``policy.cycle`` spans opened
inside it. Span ids are sequential per tracer (allocated off an atomic
counter, so the server's loop + worker threads never collide), which
keeps traces deterministic and diffable across runs.

The server adds a second parentage mode: **explicit-parent spans**.
A request crosses the event loop and the engine worker, where stack
discipline cannot hold, so the request root (:meth:`Tracer.root_span`)
and its stage children (:meth:`Tracer.stage_span`) never touch the
stack. :meth:`Tracer.anchor_span` is the bridge back: an
explicit-parent span that *does* push onto the stack, used by the
worker thread so the engine's own stack-based ``query``/``tick`` spans
nest under the request's ``worker.exec`` stage.
:meth:`Tracer.record_span` records an already-measured interval in one
call (the admission queue wait, which starts on the loop and ends on
the worker, closes this way).

The span taxonomy instrumented across the codebase:

========================  =====================================================
``tick``                  one decay cycle (:meth:`FungusDB.tick`)
``clock.advance``         one clock tick's subscriber fan-out
``policy.cycle``          one table's fungus cycle + collection
``query``                 one SQL statement end-to-end
``consume``               the Law-2 removal phase of a consuming query
``checkpoint.save``       one checkpoint write
``checkpoint.restore``    one checkpoint load (rows re-inserted)
``sim.op``                one simulator schedule step (fault steps included)
``table.compact``         one tombstone-reclaim pass on a decaying table
``client.request``        one client round trip (root; mints the trace field)
``server.request``        one network frame end-to-end (root, event loop)
``frame.decode``          frame body → payload object
``admission.wait``        enqueue → worker pickup (queue time)
``policy.analyze``        the gatekeeper's parse/plan/Tier-B pass
``worker.exec``           the engine job on the worker thread
``snapshot.read``         a loop-side read from the tick snapshot
``reply``                 response framing + flush
========================  =====================================================

Trace context crosses the wire as a W3C-traceparent-shaped string
(:class:`TraceContext`): ``00-<32 hex trace-id>-<16 hex span-id>-01``.
:meth:`TraceContext.parse` is deliberately tolerant — anything
malformed yields ``None`` and the server minting its own root, never
an error on the request path.

The disabled path is :data:`NULL_TRACER`: every instrumented call site
costs one attribute lookup, a no-op ``span()`` call returning a shared
singleton, and two no-op ``__enter__``/``__exit__`` calls — measured
at < 5% ingest overhead by ``benchmarks/bench_t3_overhead.py``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ObsError


_HEX = frozenset("0123456789abcdef")


class TraceContext:
    """W3C-traceparent-shaped trace context carried in frame payloads."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id  # 32 lowercase hex chars
        self.span_id = span_id    # 16 lowercase hex chars

    def to_traceparent(self) -> str:
        """The wire form: ``00-<trace-id>-<parent-span-id>-01``."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def parse(cls, value: Any) -> "TraceContext | None":
        """Parse a ``trace`` field; ``None`` for anything malformed.

        Tolerant on purpose: a garbage trace field must never refuse a
        request, it just loses its client linkage and the server mints
        a fresh root span instead.
        """
        if not isinstance(value, str):
            return None
        parts = value.split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
            return None
        if len(flags) != 2 or version == "ff":
            return None
        for piece in (version, trace_id, span_id, flags):
            if not set(piece) <= _HEX:
                return None
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __repr__(self) -> str:
        return f"TraceContext({self.to_traceparent()!r})"


class Span:
    """One timed operation, opened with ``with tracer.span(...) as s:``."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "attrs",
        "attached",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
        attached: bool = True,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.attached = attached
        self.start: float = 0.0
        self.end: float | None = None
        self.status = "ok"

    def set(self, **attrs: Any) -> None:
        """Attach attributes (rows touched, table name, ...)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.start = self._tracer._time()
        if self.attached:
            self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._time()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._close(self)
        return False

    def to_dict(self) -> dict[str, Any]:
        """The JSONL wire form of a finished span."""
        end = self.end if self.end is not None else self.start
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": end,
            "duration": end - self.start,
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"status={self.status})"
        )


class _NullSpan:
    """Shared no-op span: the whole disabled-tracing fast path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer every instrumented object starts with."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """A shared no-op span; nothing is recorded."""
        return _NULL_SPAN

    def root_span(self, name: str, **attrs: Any) -> _NullSpan:
        """A shared no-op span; nothing is recorded."""
        return _NULL_SPAN

    def stage_span(self, name: str, parent: Any, **attrs: Any) -> _NullSpan:
        """A shared no-op span; nothing is recorded."""
        return _NULL_SPAN

    def anchor_span(self, name: str, parent: Any, **attrs: Any) -> _NullSpan:
        """A shared no-op span; nothing is recorded."""
        return _NULL_SPAN

    def record_span(
        self, name: str, parent: Any, start: float, end: float, **attrs: Any
    ) -> _NullSpan:
        """Dropped; nothing is recorded."""
        return _NULL_SPAN

    def now(self) -> float:
        """A fixed zero clock; record_span intervals are dropped anyway."""
        return 0.0

    def close(self) -> None:
        pass


#: Process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans onto an in-memory ring and an optional exporter."""

    enabled = True

    def __init__(
        self,
        exporter: "JsonlTraceExporter | None" = None,
        max_finished: int = 100_000,
        time_fn=time.perf_counter,
    ) -> None:
        self.exporter = exporter
        self.finished: deque[Span] = deque(maxlen=max_finished)
        self._stack: list[Span] = []
        self._time = time_fn
        # next() on itertools.count is a single bytecode step, so the
        # server's event loop and engine worker can both allocate ids
        # without a lock and without ever colliding.
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def now(self) -> float:
        """The tracer's clock, for :meth:`record_span` intervals."""
        return self._time()

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span, child of the innermost open span (if any)."""
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = next(self._trace_ids)
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(self, name, trace_id, next(self._span_ids), parent_id, attrs)

    def root_span(self, name: str, **attrs: Any) -> Span:
        """A new trace root that ignores (and never touches) the stack.

        This is the request-root constructor for concurrent callers:
        many root spans can be open at once on the event loop without
        interfering with each other or with the engine's stack.
        """
        return Span(
            self, name, next(self._trace_ids), next(self._span_ids), None, attrs,
            attached=False,
        )

    def stage_span(self, name: str, parent: Span, **attrs: Any) -> Span:
        """A child of ``parent`` that never touches the stack."""
        return Span(
            self, name, parent.trace_id, next(self._span_ids), parent.span_id,
            attrs, attached=False,
        )

    def anchor_span(self, name: str, parent: Span, **attrs: Any) -> Span:
        """A child of ``parent`` that *does* join the stack.

        The worker thread opens its ``worker.exec`` stage this way so
        the engine's stack-based spans (``query``, ``tick``, ...) nest
        under the request. Only safe where stack discipline holds —
        i.e. on the single engine worker, never on the event loop.
        """
        return Span(
            self, name, parent.trace_id, next(self._span_ids), parent.span_id,
            attrs, attached=True,
        )

    def record_span(
        self, name: str, parent: Span, start: float, end: float, **attrs: Any
    ) -> Span:
        """Record an already-measured interval as a finished child span.

        For intervals that cross threads (the admission queue wait
        starts on the event loop and ends at worker pickup): both ends
        sample :meth:`now`, then whichever side finishes calls this.
        """
        span = Span(
            self, name, parent.trace_id, next(self._span_ids), parent.span_id,
            attrs, attached=False,
        )
        span.start = float(start)
        span.end = float(end) if end >= start else float(start)
        self.finished.append(span)
        if self.exporter is not None:
            self.exporter.export(span.to_dict())
        return span

    def mint_context(self, span: Span) -> TraceContext:
        """The wire-shaped trace context for ``span`` (hex-widened ids)."""
        return TraceContext(
            trace_id=f"{span.trace_id:032x}", span_id=f"{span.span_id:016x}"
        )

    def _close(self, span: Span) -> None:
        if span.attached:
            # tolerate out-of-order exits (an inner span leaked by an
            # exception path) by unwinding down to the closing span
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
        self.finished.append(span)
        if self.exporter is not None:
            self.exporter.export(span.to_dict())

    def to_dicts(self) -> list[dict[str, Any]]:
        """All retained finished spans as dicts, in completion order."""
        return [span.to_dict() for span in self.finished]

    def close(self) -> None:
        """Flush and close the exporter (if any)."""
        if self.exporter is not None:
            self.exporter.close()


class JsonlTraceExporter:
    """Streams finished spans to a JSONL file, one span per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None
        # the server exports from both the event loop and the engine
        # worker thread; serialise writes so lines never interleave
        self._lock = threading.Lock()
        self.spans_written = 0

    def export(self, span_dict: dict[str, Any]) -> None:
        """Append one span record."""
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "w", encoding="utf-8")
            json.dump(span_dict, self._fh, separators=(",", ":"), default=str)
            self._fh.write("\n")
            self.spans_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# ----------------------------------------------------------------------
# round-trip: read a JSONL trace back and check span-tree validity
# ----------------------------------------------------------------------

_REQUIRED_KEYS = ("name", "trace_id", "span_id", "parent_id", "start", "end")


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file; raises :class:`ObsError` if malformed."""
    spans = []
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ObsError(f"{path}:{lineno}: bad JSON: {exc}") from exc
                if not isinstance(record, dict):
                    raise ObsError(f"{path}:{lineno}: span record is not an object")
                spans.append(record)
    except OSError as exc:
        raise ObsError(f"cannot read trace {path}: {exc}") from exc
    return spans


def validate_spans(spans: Iterable[dict[str, Any]]) -> list[str]:
    """Structural problems with a span list (empty list = valid).

    Checks: required keys present, span ids unique, every parent
    exists in the same trace and was opened before its child, and
    child intervals nest inside their parent's interval.
    """
    problems: list[str] = []
    by_id: dict[int, dict[str, Any]] = {}
    spans = list(spans)
    for i, span in enumerate(spans):
        missing = [key for key in _REQUIRED_KEYS if key not in span]
        if missing:
            problems.append(f"span #{i} missing keys {missing}")
            continue
        sid = span["span_id"]
        if sid in by_id:
            problems.append(f"duplicate span_id {sid}")
            continue
        by_id[sid] = span
        if span["end"] < span["start"]:
            problems.append(f"span {sid} ({span['name']!r}) ends before it starts")
    eps = 1e-6
    for span in spans:
        parent_id = span.get("parent_id")
        if parent_id is None or "span_id" not in span:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"span {span['span_id']} ({span['name']!r}) has unknown "
                f"parent {parent_id}"
            )
            continue
        if parent["trace_id"] != span["trace_id"]:
            problems.append(
                f"span {span['span_id']} crosses traces: parent trace "
                f"{parent['trace_id']}, own trace {span['trace_id']}"
            )
        if parent_id >= span["span_id"]:
            problems.append(
                f"span {span['span_id']} opened before its parent {parent_id}"
            )
        if span["start"] < parent["start"] - eps or span["end"] > parent["end"] + eps:
            problems.append(
                f"span {span['span_id']} ({span['name']!r}) interval "
                f"[{span['start']}, {span['end']}] escapes parent "
                f"{parent_id} [{parent['start']}, {parent['end']}]"
            )
    return problems


def validate_trace(path: str | Path) -> list[str]:
    """Read ``path`` and validate it; parse errors become problems."""
    try:
        spans = read_trace(path)
    except ObsError as exc:
        return [str(exc)]
    if not spans:
        return [f"{path}: trace is empty"]
    return validate_spans(spans)
