"""The event-bus → metrics bridge.

A :class:`BusCollector` subscribes to every decay-core event type on a
:class:`~repro.core.db.FungusDB`'s bus and keeps a
:class:`~repro.obs.metrics.MetricsRegistry` current: lifetime totals
per table (inserts, infections, decay events, evictions by reason,
consume volume, summaries), time-decayed EWMA rates on the logical
clock (evictions and consumed tuples per tick), and gauges sampled on
every ``TickCompleted`` (extent, exhausted, pinned, tombstone ratio,
freshness-band occupancy).

Checkpoint restores replay one ``TupleInserted`` per surviving row;
the ``RestoreCompleted`` event that follows tells the collector how
many of the preceding inserts were replays, and the collector
compensates so ``repro_inserts_total`` counts genuinely new tuples
only (the restored volume is accounted under
``repro_restored_rows_total`` instead).

The full metric catalogue (all names prefixed ``repro_``):

==================================  ==========  ===========================
``repro_inserts_total``             counter     table
``repro_restored_rows_total``       counter     table
``repro_infections_total``          counter     table, fungus
``repro_decay_events_total``        counter     table, fungus
``repro_freshness_removed_total``   counter     table, fungus
``repro_freshness_restored_total``  counter     table, fungus
``repro_evictions_total``           counter     table, reason
``repro_consumed_tuples_total``     counter     table
``repro_consume_analyzed_total``    counter     table, verdict
``repro_summaries_total``           counter     table, reason
``repro_summarised_rows_total``     counter     table
``repro_ticks_total``               counter     table
``repro_tick_evicted``              histogram   table
``repro_eviction_rate``             ewma        table
``repro_consume_rate``              ewma        table
``repro_extent``                    gauge       table
``repro_exhausted``                 gauge       table
``repro_pinned``                    gauge       table
``repro_tombstone_ratio``           gauge       table
``repro_band_occupancy``            gauge       table, band
``repro_deaths_total``              counter     table, cause
``repro_alerts_fired_total``        counter     table, rule
``repro_alert_active``              gauge       table, rule
``repro_query_calls_total``         counter     kind
``repro_query_rows_total``          counter     kind
``repro_query_seconds``             histogram   kind
``repro_query_fingerprints``        gauge       kind
``repro_query_evicted_total``       counter     kind
==================================  ==========  ===========================

The deaths counter and the alert pair are fed by the forensics layer
(when enabled on the same database): deaths count closed biographies
by resolved forensic cause, and the alert gauge is 1 while a rot-rate
alert rule fires.

The ``repro_query_*`` families are fed by the query-statistics store
(``FungusDB.enable_querystats``) via :class:`QueryExecuted` events:
per statement kind (``select``/``consume``/``insert``/``delete``),
call and result-row totals, a latency histogram, the number of
distinct statement fingerprints currently tracked, and how many cold
fingerprints the bounded store has evicted.
"""

from __future__ import annotations

from typing import Any

from repro.core.events import (
    AlertFired,
    AlertResolved,
    ConsumeAnalyzed,
    DeathRecorded,
    QueryExecuted,
    RestoreCompleted,
    SummaryCreated,
    TickCompleted,
    TupleConsumed,
    TupleDecayed,
    TupleDecayedBatch,
    TupleEvicted,
    TupleInfected,
    TupleInserted,
)
from repro.core.freshness import FreshnessBand, band_of
from repro.obs.metrics import MetricsRegistry


class BusCollector:
    """Feeds a metrics registry from one database's event bus."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        rate_tau: float = 10.0,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            sample_every = 1
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        self._db: Any = None
        self._subscriptions: list[tuple[type, Any]] = []
        self._ticks_seen: dict[str, int] = {}

        r = self.registry
        self.inserts = r.counter(
            "repro_inserts_total", "Tuples inserted (restores excluded).", ("table",)
        )
        self.restored = r.counter(
            "repro_restored_rows_total",
            "Rows re-inserted by checkpoint restores.",
            ("table",),
        )
        self.infections = r.counter(
            "repro_infections_total",
            "Fungus seed/spread infections.",
            ("table", "fungus"),
        )
        self.decay_events = r.counter(
            "repro_decay_events_total",
            "Freshness-lowering decay events.",
            ("table", "fungus"),
        )
        self.freshness_removed = r.counter(
            "repro_freshness_removed_total",
            "Total freshness mass removed by decay.",
            ("table", "fungus"),
        )
        self.freshness_restored = r.counter(
            "repro_freshness_restored_total",
            "Total freshness mass restored (access refresh, manual).",
            ("table", "fungus"),
        )
        self.evictions = r.counter(
            "repro_evictions_total",
            "Tuples evicted, by table and reason.",
            ("table", "reason"),
        )
        self.consumed = r.counter(
            "repro_consumed_tuples_total",
            "Tuples carried away by CONSUME SELECT (Law 2).",
            ("table",),
        )
        self.consume_analyzed = r.counter(
            "repro_consume_analyzed_total",
            "Tier-B static analyses of consume statements, by verdict.",
            ("table", "verdict"),
        )
        self.summaries = r.counter(
            "repro_summaries_total",
            "Summaries distilled, by table and reason.",
            ("table", "reason"),
        )
        self.summarised_rows = r.counter(
            "repro_summarised_rows_total",
            "Rows distilled into summaries before leaving R.",
            ("table",),
        )
        self.ticks = r.counter(
            "repro_ticks_total", "Completed decay cycles.", ("table",)
        )
        self.tick_evicted = r.histogram(
            "repro_tick_evicted",
            "Tuples evicted per completed decay cycle.",
            ("table",),
        )
        self.eviction_rate = r.ewma(
            "repro_eviction_rate",
            "Time-decayed evictions per clock tick.",
            ("table",),
            tau=rate_tau,
        )
        self.consume_rate = r.ewma(
            "repro_consume_rate",
            "Time-decayed consumed tuples per clock tick.",
            ("table",),
            tau=rate_tau,
        )
        self.extent = r.gauge("repro_extent", "Live tuples per table.", ("table",))
        self.exhausted = r.gauge(
            "repro_exhausted", "Exhausted (f == 0) tuples awaiting eviction.", ("table",)
        )
        self.pinned = r.gauge(
            "repro_pinned", "Pinned (decay-immune) tuples.", ("table",)
        )
        self.tombstone_ratio = r.gauge(
            "repro_tombstone_ratio",
            "Tombstoned share of the allocated row space.",
            ("table",),
        )
        self.band_occupancy = r.gauge(
            "repro_band_occupancy",
            "Live tuples per freshness band.",
            ("table", "band"),
        )
        self.deaths = r.counter(
            "repro_deaths_total",
            "Closed tuple biographies, by forensic cause.",
            ("table", "cause"),
        )
        self.alerts_fired = r.counter(
            "repro_alerts_fired_total",
            "Rot-rate alert rule firings.",
            ("table", "rule"),
        )
        self.alert_active = r.gauge(
            "repro_alert_active",
            "1 while a rot-rate alert rule is firing.",
            ("table", "rule"),
        )
        self.query_calls = r.counter(
            "repro_query_calls_total",
            "Executed statements, by statement kind.",
            ("kind",),
        )
        self.query_rows = r.counter(
            "repro_query_rows_total",
            "Result rows returned by executed statements.",
            ("kind",),
        )
        self.query_seconds = r.histogram(
            "repro_query_seconds",
            "Per-statement execution latency in seconds.",
            ("kind",),
        )
        self.query_fingerprints = r.gauge(
            "repro_query_fingerprints",
            "Distinct statement fingerprints currently tracked.",
            ("kind",),
        )
        self.query_evicted = r.counter(
            "repro_query_evicted_total",
            "Cold fingerprints evicted from the bounded statistics store.",
            ("kind",),
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, db: Any) -> "BusCollector":
        """Subscribe to ``db.bus``; gauges sample from ``db.tables``."""
        if self._db is not None:
            raise RuntimeError("collector is already attached")
        self._db = db
        pairs = [
            (TupleInserted, self._on_inserted),
            (TupleInfected, self._on_infected),
            (TupleDecayed, self._on_decayed),
            (TupleDecayedBatch, self._on_decayed_batch),
            (TupleEvicted, self._on_evicted),
            (TupleConsumed, self._on_consumed),
            (ConsumeAnalyzed, self._on_consume_analyzed),
            (SummaryCreated, self._on_summary),
            (TickCompleted, self._on_tick),
            (RestoreCompleted, self._on_restore),
            (QueryExecuted, self._on_query),
            (DeathRecorded, self._on_death),
            (AlertFired, self._on_alert_fired),
            (AlertResolved, self._on_alert_resolved),
        ]
        for event_type, handler in pairs:
            db.bus.subscribe(event_type, handler)
        self._subscriptions = pairs
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus (metrics keep their last values)."""
        if self._db is None:
            return
        for event_type, handler in self._subscriptions:
            self._db.bus.unsubscribe(event_type, handler)
        self._subscriptions = []
        self._db = None

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _on_inserted(self, event: TupleInserted) -> None:
        self.inserts.labels(table=event.table).inc()

    def _on_infected(self, event: TupleInfected) -> None:
        self.infections.labels(table=event.table, fungus=event.fungus).inc()

    def _on_decayed(self, event: TupleDecayed) -> None:
        delta = event.old_freshness - event.new_freshness
        if delta >= 0:
            self.decay_events.labels(table=event.table, fungus=event.fungus).inc()
            self.freshness_removed.labels(table=event.table, fungus=event.fungus).inc(delta)
        else:
            self.freshness_restored.labels(table=event.table, fungus=event.fungus).inc(-delta)

    def _on_decayed_batch(self, event: TupleDecayedBatch) -> None:
        # per-tuple provenance is preserved: a coalesced batch counts
        # exactly as its expansion would have, row by row
        for sub in event.expand():
            self._on_decayed(sub)

    def _on_evicted(self, event: TupleEvicted) -> None:
        self.evictions.labels(table=event.table, reason=event.reason).inc()
        self.eviction_rate.labels(table=event.table).mark(1.0, now=event.tick)

    def _on_consumed(self, event: TupleConsumed) -> None:
        self.consumed.labels(table=event.table).inc()
        self.consume_rate.labels(table=event.table).mark(1.0, now=event.tick)

    def _on_consume_analyzed(self, event: ConsumeAnalyzed) -> None:
        self.consume_analyzed.labels(table=event.table, verdict=event.verdict).inc()

    def _on_summary(self, event: SummaryCreated) -> None:
        self.summaries.labels(table=event.table, reason=event.reason).inc()
        self.summarised_rows.labels(table=event.table).inc(event.rows)

    def _on_tick(self, event: TickCompleted) -> None:
        self.ticks.labels(table=event.table).inc()
        self.tick_evicted.labels(table=event.table).observe(event.evicted)
        seen = self._ticks_seen.get(event.table, 0) + 1
        self._ticks_seen[event.table] = seen
        if seen % self.sample_every == 0:
            self.sample_table(event.table)

    def _on_query(self, event: QueryExecuted) -> None:
        self.query_calls.labels(kind=event.kind).inc()
        self.query_rows.labels(kind=event.kind).inc(event.rows)
        self.query_seconds.labels(kind=event.kind).observe(event.seconds)
        self.query_fingerprints.labels(kind=event.kind).set(event.tracked_for_kind)
        if event.evicted:
            self.query_evicted.labels(kind=event.kind).inc(event.evicted)

    def _on_death(self, event: DeathRecorded) -> None:
        self.deaths.labels(table=event.table, cause=event.cause).inc()

    def _on_alert_fired(self, event: AlertFired) -> None:
        self.alerts_fired.labels(table=event.table, rule=event.rule).inc()
        self.alert_active.labels(table=event.table, rule=event.rule).set(1)

    def _on_alert_resolved(self, event: AlertResolved) -> None:
        self.alert_active.labels(table=event.table, rule=event.rule).set(0)

    def _on_restore(self, event: RestoreCompleted) -> None:
        # the replayed TupleInserted events were counted as new inserts;
        # reclassify them as restored volume now that we know how many
        self.restored.labels(table=event.table).inc(event.rows)
        self.inserts.labels(table=event.table).uncount(event.rows)
        self.sample_table(event.table)

    # ------------------------------------------------------------------
    # gauge sampling
    # ------------------------------------------------------------------

    def sample_table(self, name: str) -> None:
        """Refresh the point-in-time gauges for one table."""
        if self._db is None:
            return
        table = self._db.tables.get(name)
        if table is None:
            return
        self.extent.labels(table=name).set(len(table))
        self.exhausted.labels(table=name).set(len(table.exhausted))
        self.pinned.labels(table=name).set(len(table.pinned))
        allocated = table.storage.allocated
        ratio = table.storage.tombstones / allocated if allocated else 0.0
        self.tombstone_ratio.labels(table=name).set(ratio)
        bands = {band: 0 for band in FreshnessBand}
        for f in table.freshness_values():
            bands[band_of(f)] += 1
        for band, count in bands.items():
            self.band_occupancy.labels(table=name, band=band.value).set(count)

    def sample_all(self) -> None:
        """Refresh the gauges for every table (dashboard refresh path)."""
        if self._db is None:
            return
        for name in list(self._db.tables):
            self.sample_table(name)
