"""The event-bus → lineage-store bridge.

:class:`ForensicsCollector` subscribes to the decay-core events and
keeps a :class:`~repro.obs.forensics.store.LineageStore` current:
births on ``TupleInserted``, infection edges on ``TupleInfected``,
trajectory points on ``TupleDecayed``, consuming-query capture on
``TupleConsumed``, and biography closure on ``TupleEvicted`` — after
which it publishes a :class:`~repro.core.events.DeathRecorded` event
so metrics and dashboards see the resolved forensic cause without
knowing the store exists.

Checkpoint restores replay one ``TupleInserted`` per surviving row,
which would open fresh (wrong) biographies and burn forensic ids for
rows that are not new. :meth:`stage_restore` arms the collector with
the checkpoint's persisted biographies; when ``RestoreCompleted``
announces how many rows were replayed, the collector rebinds those
rows to their saved biographies positionally — a restore produces no
DeathRecords and no fid drift.
"""

from __future__ import annotations

from typing import Any

from repro.core.events import (
    DeathRecorded,
    RestoreCompleted,
    TableCompacted,
    TupleConsumed,
    TupleDecayed,
    TupleDecayedBatch,
    TupleEvicted,
    TupleInfected,
    TupleInserted,
)
from repro.obs.forensics.store import LineageStore


class ForensicsCollector:
    """Feeds a lineage store from one database's event bus."""

    def __init__(self, store: LineageStore) -> None:
        self.store = store
        self._db: Any = None
        self._subscriptions: list[tuple[type, Any]] = []
        self._pending_restore: dict[str, list[dict]] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, db: Any) -> "ForensicsCollector":
        """Subscribe to ``db.bus`` (once)."""
        if self._db is not None:
            raise RuntimeError("forensics collector is already attached")
        self._db = db
        pairs = [
            (TupleInserted, self._on_inserted),
            (TupleInfected, self._on_infected),
            (TupleDecayed, self._on_decayed),
            (TupleDecayedBatch, self._on_decayed_batch),
            (TupleConsumed, self._on_consumed),
            (TupleEvicted, self._on_evicted),
            (TableCompacted, self._on_compacted),
            (RestoreCompleted, self._on_restore),
        ]
        for event_type, handler in pairs:
            db.bus.subscribe(event_type, handler)
        self._subscriptions = pairs
        return self

    def detach(self) -> None:
        """Unsubscribe (the store keeps its records)."""
        if self._db is None:
            return
        for event_type, handler in self._subscriptions:
            self._db.bus.unsubscribe(event_type, handler)
        self._subscriptions = []
        self._db = None

    def stage_restore(self, pending: dict[str, list[dict]]) -> None:
        """Arm the restore rebinding with persisted biography dicts."""
        self._pending_restore.update(pending)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _on_inserted(self, event: TupleInserted) -> None:
        self.store.born(event.table, event.rid, event.tick)

    def _on_infected(self, event: TupleInfected) -> None:
        self.store.infected(
            event.table,
            event.rid,
            event.fungus,
            event.origin,
            event.source,
            event.tick,
        )

    def _on_decayed(self, event: TupleDecayed) -> None:
        self.store.decayed(event.table, event.rid, event.tick, event.new_freshness)

    def _on_decayed_batch(self, event: TupleDecayedBatch) -> None:
        # expansion keeps biographies bit-identical to the scalar path:
        # same per-row trajectory points, same ascending-rid order
        for sub in event.expand():
            self._on_decayed(sub)

    def _on_consumed(self, event: TupleConsumed) -> None:
        self.store.note_consume(event.table, event.rid, event.query)

    def _on_evicted(self, event: TupleEvicted) -> None:
        record = self.store.died(event.table, event.rid, event.reason, event.tick)
        if self._db is not None:
            self._db.bus.publish(
                DeathRecorded(
                    event.table,
                    event.tick,
                    event.rid,
                    record.cause,
                    fungus=record.fungus,
                )
            )

    def _on_compacted(self, event: TableCompacted) -> None:
        self.store.compacted(event.table, dict(event.remap))

    def _on_restore(self, event: RestoreCompleted) -> None:
        pending = self._pending_restore.pop(event.table, None)
        if not pending or not event.rows:
            return
        lives = self.store._lives.get(event.table, {})  # noqa: SLF001
        rids = list(lives)[-event.rows :]
        self.store.rebind_restored(event.table, rids, pending)
